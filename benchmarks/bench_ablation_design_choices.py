"""Extended ablations of the design choices flagged in DESIGN.md §4.

Beyond the paper's Figure 8 (refinement and BO ablations), these benches
isolate four further design decisions:

1. LHS vs independent uniform sampling in profiling (§5.1);
2. the variety factor v_i in the closeness score (Eq. 2);
3. refinement history / in-context learning (phase 2 of Algorithm 2);
4. bad-combination tracking in the predicate search (Algorithm 3's B set).

Each variant runs the Redset_Cost_Medium shape end-to-end; the table shows
time, final distance, and completion per variant.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bo import lhs_configs
from repro.core import BarberConfig, SQLBarber, TemplateProfiler
from repro.core.config import RefinementPhase
from repro.benchsuite import benchmark_by_name, format_table
from repro.datasets import build_database, redset_spec_workload
from repro.workload import SqlTemplate

VARIANTS: dict[str, dict] = {
    "full": {},
    "uniform-profiling": {"profile_sampling": "uniform"},
    "no-variety-factor": {"use_variety_factor": False},
    "no-history": {
        "refinement_phases": (
            RefinementPhase(0.2, 3, 3, use_history=False),
            RefinementPhase(0.1, 5, 5, use_history=False),
        )
    },
    "no-bad-combinations": {"track_bad_combinations": False},
}


def test_design_choice_variants(benchmark, settings, record):
    bench = benchmark_by_name("Redset_Cost_Medium")
    distribution = bench.distribution(
        cost_type="plan_cost", num_queries=settings.queries_for("medium")
    )
    db_name = "imdb" if "imdb" in settings.dbs else settings.dbs[0]
    specs = redset_spec_workload(num_specs=8, seed=2024)

    def run_all():
        rows = []
        for name, overrides in VARIANTS.items():
            db = build_database(db_name)
            config = BarberConfig(seed=0).with_overrides(**overrides)
            barber = SQLBarber(db, config=config)
            result = barber.generate_workload(
                specs, distribution,
                time_budget_seconds=settings.sqlbarber_budget,
            )
            rows.append(
                {
                    "variant": name,
                    "time_s": round(result.elapsed_seconds, 2),
                    "final_distance": round(result.final_distance, 2),
                    "complete": result.complete,
                    "templates": result.num_templates,
                }
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    record(
        "ablation_design_choices.txt",
        format_table(rows, title="Design-choice ablations "
                                 f"(Redset_Cost_Medium on {db_name})"),
    )
    full = next(r for r in rows if r["variant"] == "full")
    assert full["complete"], "the full configuration must converge"
    # Every ablated variant is at best as good as the full system.
    for row in rows:
        assert row["final_distance"] >= full["final_distance"] - 1e-9
    benchmark.extra_info["rows"] = rows


def test_lhs_coverage_vs_uniform(benchmark, record):
    """Microbenchmark: LHS strata coverage beats i.i.d. uniform sampling."""
    db = build_database("tpch")
    profiler = TemplateProfiler(db, BarberConfig(seed=0))
    template = SqlTemplate(
        "t",
        "SELECT * FROM lineitem WHERE l_extendedprice < {p_1} "
        "AND l_quantity > {p_2}",
    )
    space = profiler.build_space(template)
    rng = np.random.default_rng(0)

    def coverage():
        n, strata = 20, 20
        lhs_points = np.array(
            [space.to_unit(c) for c in lhs_configs(space, n, rng)]
        )
        uniform_points = np.array(
            [space.to_unit(c) for c in space.sample_many(n, rng)]
        )

        def strata_hit(points):
            hit = set()
            for dim in range(points.shape[1]):
                codes = np.clip(
                    (points[:, dim] * strata).astype(int), 0, strata - 1
                )
                hit.update((dim, int(c)) for c in codes)
            return len(hit)

        return strata_hit(lhs_points), strata_hit(uniform_points)

    lhs_hit, uniform_hit = benchmark.pedantic(coverage, rounds=1, iterations=1)
    record(
        "ablation_design_choices.txt",
        f"LHS strata coverage: {lhs_hit} vs uniform {uniform_hit} "
        f"(out of {2 * 20} dimension-strata)",
    )
    assert lhs_hit >= uniform_hit  # the §5.1 claim
