"""DML engine benchmark: write-path throughput and the cost of mixing.

Standalone (not a pytest-benchmark figure — run it directly):

    PYTHONPATH=src python benchmarks/bench_dml.py           # full run
    PYTHONPATH=src python benchmarks/bench_dml.py --smoke   # CI smoke

Two measurements:

* **Write throughput** — rows/s for each DML kind against the fuzz
  database's 600-row ``orders`` table, best-of-N on a fresh database per
  repeat (DELETE shrinks the table and INSERT grows it, so reuse would
  skew later repeats).  ``insert`` is a bulk INSERT ... SELECT (one
  statement appending 600 rows), ``insert_single_row`` measures the
  per-statement path with 1-row VALUES statements, ``update`` assigns an
  arithmetic expression to every row, and ``delete`` removes every row.

* **Mixed-vs-select overhead** — the same end-to-end pipeline with and
  without ``workload_mix=(0.5, 0.2, 0.2, 0.1)``.  The mixer swaps
  searched SELECTs for grammar DML costed via EXPLAIN (it never
  executes), so the overhead is grammar rendering plus EXPLAIN — the
  report pins it as ``mixed_overhead_percent`` and both variants must be
  bit-identical across repeats.

Writes ``BENCH_dml.json`` (see ``--output``); metric keys follow the
``perf_gate`` conventions (``*_per_second`` higher-is-better,
``*overhead_percent`` additive).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core import BarberConfig, SQLBarber
from repro.fuzz.runner import build_fuzz_database
from repro.llm import SimulatedLLM
from repro.obs import Telemetry
from repro.workload import CostDistribution, TemplateSpec

SEED = 11
MIX = (0.5, 0.2, 0.2, 0.1)

SPECS = [
    TemplateSpec(spec_id="bench_a", num_joins=1, num_aggregations=1),
    TemplateSpec(spec_id="bench_b", num_joins=0, require_order_by=True),
]
DISTRIBUTION = CostDistribution.uniform(0.0, 200.0, 16, 4)

# order_id is the primary key, which the engine enforces on INSERT — the
# self-join doubling offsets the copied keys past the existing range.
BULK_INSERT = (
    "INSERT INTO orders (order_id, user_id, item_id, amount, status, "
    "order_date) "
    "SELECT s0.order_id + 100000, s0.user_id, s0.item_id, s0.amount, "
    "s0.status, s0.order_date FROM orders AS s0"
)
UPDATE_ALL = "UPDATE orders SET amount = orders.amount + 1.0"
DELETE_ALL = "DELETE FROM orders WHERE orders.amount > -1.0 OR orders.amount IS NULL"


def _timed_rows(db, sql: str) -> tuple[int, float]:
    started = time.perf_counter()
    result = db.execute(sql)
    elapsed = time.perf_counter() - started
    [(rows,)] = result.table.rows()
    return int(rows), elapsed


def bench_kind(kind: str, repeats: int) -> dict:
    """Best-of-N rows/s for one DML kind, fresh database per repeat."""
    best_rate, total_rows = 0.0, 0
    for _ in range(repeats):
        db = build_fuzz_database(0)
        if kind == "insert":
            rows, elapsed = _timed_rows(db, BULK_INSERT)
        elif kind == "insert_single_row":
            base = db.catalog.table("orders").row_count
            started = time.perf_counter()
            count = 100
            for i in range(count):
                db.execute(
                    f"INSERT INTO orders (order_id, user_id, status) "
                    f"VALUES ({base + i}, 0, 'bench')"
                )
            elapsed = time.perf_counter() - started
            rows = count
        elif kind == "update":
            rows, elapsed = _timed_rows(db, UPDATE_ALL)
        elif kind == "delete":
            rows, elapsed = _timed_rows(db, DELETE_ALL)
            assert db.catalog.table("orders").row_count == 0
        else:
            raise ValueError(kind)
        best_rate = max(best_rate, rows / elapsed)
        total_rows = rows
    return {
        "repeats": repeats,
        "rows_per_statement": total_rows if kind != "insert_single_row" else 1,
        "rows_per_second": round(best_rate, 1),
    }


def run_pipeline(mix) -> tuple[float, str, int]:
    db = build_fuzz_database(0)
    barber = SQLBarber(
        db,
        llm=SimulatedLLM(seed=SEED),
        config=BarberConfig(seed=SEED, workload_mix=mix),
    )
    started = time.perf_counter()
    result = barber.generate_workload(SPECS, DISTRIBUTION, telemetry=Telemetry())
    elapsed = time.perf_counter() - started
    dml = sum(
        1
        for q in result.workload.queries
        if (q.template_id or "").startswith("mix_")
    )
    return elapsed, result.fingerprint_json(), dml


def bench_pipeline(mix, repeats: int) -> tuple[dict, int]:
    times, fingerprints, dml = [], set(), 0
    for _ in range(repeats):
        seconds, fingerprint, dml = run_pipeline(mix)
        times.append(seconds)
        fingerprints.add(fingerprint)
    entry = {
        "repeats": repeats,
        "best_seconds": round(min(times), 4),
        "mean_seconds": round(sum(times) / len(times), 4),
        "deterministic": len(fingerprints) == 1,
        "dml_statements": dml,
    }
    return entry, len(fingerprints)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=9,
                        help="runs per measurement (best-of is reported)")
    parser.add_argument("--output", "-o", default="BENCH_dml.json")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI configuration (fast, no thresholds)")
    parser.add_argument("--check", action="store_true",
                        help="fail unless mixing overhead < 25%")
    args = parser.parse_args(argv)
    if args.smoke:
        args.repeats = 3

    # Warm imports, the parser, and the plan cache off the clock.
    warm = build_fuzz_database(0)
    warm.execute(UPDATE_ALL)

    throughput = {
        kind: bench_kind(kind, args.repeats)
        for kind in ("insert", "insert_single_row", "update", "delete")
    }
    select_only, select_variants = bench_pipeline(None, args.repeats)
    mixed, mixed_variants = bench_pipeline(MIX, args.repeats)

    overhead = (
        (mixed["best_seconds"] - select_only["best_seconds"])
        / select_only["best_seconds"] * 100.0
    )
    report = {
        "benchmark": "dml",
        "smoke": args.smoke,
        "throughput": throughput,
        "select_only": select_only,
        "mixed": mixed,
        "mixed_overhead_percent": round(overhead, 2),
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(json.dumps(report, indent=2))

    if select_variants != 1 or mixed_variants != 1:
        print("FAIL: pipeline fingerprints varied across repeats",
              file=sys.stderr)
        return 1
    if mixed["dml_statements"] == 0:
        print("FAIL: the mixed pipeline produced no DML", file=sys.stderr)
        return 1
    if args.check and overhead >= 25.0:
        print(
            f"FAIL: workload mixing overhead {overhead:.2f}% >= 25%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
