"""Fastpath benchmark: EXPLAIN cache and parallel profiling speedups.

Standalone (not a pytest-benchmark figure — run it directly):

    PYTHONPATH=src python benchmarks/bench_fastpath.py            # full run
    PYTHONPATH=src python benchmarks/bench_fastpath.py --smoke    # CI smoke

Measures, on the bundled TPC-H:

* cold EXPLAIN throughput (cache disabled, full parse/bind/plan per call)
  vs cached throughput (same statements repeated, served from the cache);
* batched re-costing throughput (``CompiledTemplate.explain_many`` plan
  replay, cache disabled) vs the cold per-binding loop — the ``vectorized``
  section, gated at >=5x;
* serial vs parallel ``profile_many`` wall-clock (process backend with
  chunked work units, so the planning work actually overlaps under the GIL
  and IPC is amortized across a chunk);
* the cache hit rate of the cached phase.

Writes ``BENCH_fastpath.json`` (see ``--output``).  ``--check`` additionally
enforces the acceptance thresholds (>=5x cached explain, >1.5x parallel
profiling) and exits non-zero when they are missed.  The parallel threshold
is hardware-gated: profiling is pure CPU work, so on a single-core machine
4 processes merely timeshare the core and the "speedup" measures scheduling
overhead, not a fastpath regression — the check is skipped (and marked so
in the JSON) when fewer than 2 CPUs are available.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.bo import lhs_configs
from repro.core import BarberConfig, TemplateProfiler
from repro.datasets import build_tpch
from repro.workload import SqlTemplate

TEMPLATES = [
    SqlTemplate(
        "bench_scan",
        "select l_orderkey from lineitem where l_quantity < {v1}",
    ),
    SqlTemplate(
        "bench_range",
        "select l_orderkey, l_quantity from lineitem "
        "where l_quantity < {v1} and l_discount between {v2} and {v3}",
    ),
    SqlTemplate(
        "bench_price",
        "select o_orderkey from orders where o_totalprice between {v1} and {v2}",
    ),
    SqlTemplate(
        "bench_date",
        "select o_orderkey from orders where o_orderdate < {d1}",
    ),
    SqlTemplate(
        "bench_join",
        "select c_name, o_totalprice from customer c "
        "join orders o on c.c_custkey = o.o_custkey "
        "where o.o_totalprice > {v1} and c.c_acctbal > {v2}",
    ),
    SqlTemplate(
        "bench_join3",
        "select c_name from customer c "
        "join orders o on c.c_custkey = o.o_custkey "
        "join lineitem l on o.o_orderkey = l.l_orderkey "
        "where l.l_quantity > {v1}",
    ),
    SqlTemplate(
        "bench_group",
        "select o_orderdate, count(*), sum(o_totalprice) from orders "
        "where o_totalprice > {v1} group by o_orderdate "
        "order by o_orderdate limit 10",
    ),
    SqlTemplate(
        "bench_having",
        "select l_orderkey, avg(l_extendedprice) from lineitem "
        "where l_quantity > {v1} group by l_orderkey "
        "having avg(l_extendedprice) > {v2}",
    ),
    SqlTemplate(
        "bench_text",
        "select p_partkey from part where p_type like {s1}",
    ),
    SqlTemplate(
        "bench_in",
        "select s_name from supplier where s_nationkey in ({v1}, {v2})",
    ),
    SqlTemplate(
        "bench_negative",
        "select c_name from customer where c_acctbal > {v1} and c_acctbal < {v2}",
    ),
    SqlTemplate(
        "bench_agg",
        "select count(*), max(l_extendedprice) from lineitem "
        "where l_discount < {v1}",
    ),
]


def build_corpus(profiler, per_template: int) -> list[str]:
    """Deterministic instantiated statements, *per_template* per template."""
    corpus: list[str] = []
    for template in TEMPLATES:
        space = profiler.build_space(template)
        rng = np.random.default_rng([7, len(corpus)])
        for values in lhs_configs(space, per_template, rng):
            corpus.append(template.instantiate(values))
    return corpus


def bench_explain(db, corpus: list[str], repeats: int) -> dict:
    """Cold (uncached) vs cached throughput over the same statements."""
    db.set_explain_cache(False)
    started = time.perf_counter()
    for _ in range(repeats):
        for sql in corpus:
            db.explain(sql)
    cold_seconds = time.perf_counter() - started
    cold_calls = repeats * len(corpus)

    db.set_explain_cache(True)
    db.explain_cache.clear()
    for sql in corpus:  # warm pass: one miss per statement
        db.explain(sql)
    started = time.perf_counter()
    for _ in range(repeats):
        for sql in corpus:
            db.explain(sql)
    cached_seconds = time.perf_counter() - started
    cached_calls = repeats * len(corpus)
    stats = db.explain_cache.stats()

    cold_ops = cold_calls / cold_seconds
    cached_ops = cached_calls / cached_seconds
    return {
        "corpus_size": len(corpus),
        "repeats": repeats,
        "cold_seconds": round(cold_seconds, 4),
        "cached_seconds": round(cached_seconds, 4),
        "cold_ops_per_s": round(cold_ops, 1),
        "cached_ops_per_s": round(cached_ops, 1),
        "speedup": round(cached_ops / cold_ops, 2),
        "cache": stats,
    }


def bench_vectorized(db, bindings_per_template: int, repeats: int) -> dict:
    """Batched re-costing (``CompiledTemplate.explain_many``) vs cold loop.

    The vectorization tentpole's profiling bar: re-costing N bindings of a
    compiled template in one batched pass must be >=5x faster than N cold
    parse/bind/plan EXPLAINs.  Both sides run with the EXPLAIN cache
    disabled — the subject is re-costing throughput, not cache hits — and
    the batched results are verified byte-identical to the cold ones
    before any timing is believed (``results_identical``).
    ``replayed_fraction`` reports how much of the corpus took the
    plan-replay fast path rather than the substitution fallback.
    """
    from repro.obs import Telemetry, use_telemetry

    profiler = TemplateProfiler(db, BarberConfig(seed=0))
    db.set_explain_cache(False)
    corpus = []
    for i, template in enumerate(TEMPLATES):
        space = profiler.build_space(template)
        rng = np.random.default_rng([7, i])
        bindings = lhs_configs(space, bindings_per_template, rng)
        compiled = profiler._compiled_for(template)
        if compiled is None:
            continue  # reported via compiled_templates below
        corpus.append((template, compiled, bindings))

    identical = True
    telemetry = Telemetry()
    with use_telemetry(telemetry):
        for template, compiled, bindings in corpus:
            batched = compiled.explain_many(bindings)
            for values, fast in zip(bindings, batched):
                if fast != db.explain(template.instantiate(values)):
                    identical = False
    replayed = telemetry.metrics.total("fastpath.compiled.replayed")
    total_bindings = sum(len(b) for _, _, b in corpus)

    started = time.perf_counter()
    for _ in range(repeats):
        for _template, compiled, bindings in corpus:
            compiled.explain_many(bindings)
    batched_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(repeats):
        for template, _compiled, bindings in corpus:
            for values in bindings:
                db.explain(template.instantiate(values))
    cold_seconds = time.perf_counter() - started
    db.set_explain_cache(True)

    calls = repeats * total_bindings
    batched_ops = calls / batched_seconds
    cold_ops = calls / cold_seconds
    return {
        "templates": len(TEMPLATES),
        "compiled_templates": len(corpus),
        "bindings_per_template": bindings_per_template,
        "repeats": repeats,
        "results_identical": identical,
        "replayed_fraction": round(replayed / max(total_bindings, 1), 3),
        "batched_seconds": round(batched_seconds, 4),
        "cold_seconds": round(cold_seconds, 4),
        "batched_ops_per_s": round(batched_ops, 1),
        "cold_ops_per_s": round(cold_ops, 1),
        "speedup": round(batched_ops / cold_ops, 2),
    }


def bench_profiling(db, samples: int, workers: int, cpus: int) -> dict:
    """Serial vs process-parallel profile_many over the template set.

    Hardware-gated: profiling is pure CPU work, so on fewer than 2 CPUs the
    parallel phase would only measure process timesharing.  The section is
    then marked ``status: "skipped"`` with no speedup number at all (a
    ``0.86`` "speedup" on one core is noise, not a fastpath regression),
    and ``perf_gate`` ignores skipped sections.
    """
    profiler = TemplateProfiler(db, BarberConfig(seed=0))
    profiler.profile_many(TEMPLATES[:2], 2)  # warm compile/import paths
    db.explain_cache.clear()

    started = time.perf_counter()
    serial = profiler.profile_many(TEMPLATES, samples, workers=1)
    serial_seconds = time.perf_counter() - started
    result = {
        "templates": len(TEMPLATES),
        "samples_per_template": samples,
        "workers": workers,
        "backend": "process",
        "serial_seconds": round(serial_seconds, 3),
    }
    if cpus < 2:
        result["status"] = "skipped"
        result["reason"] = (
            f"parallel speedup needs >=2 CPUs (found {cpus}); a single-core "
            "measurement reflects timesharing, not the fastpath"
        )
        return result

    db.explain_cache.clear()
    started = time.perf_counter()
    parallel = profiler.profile_many(
        TEMPLATES, samples, workers=workers, backend="process"
    )
    parallel_seconds = time.perf_counter() - started

    identical = all(
        a.observations == b.observations and a.errors == b.errors
        for a, b in zip(serial, parallel)
    )
    result.update(
        status="measured",
        parallel_seconds=round(parallel_seconds, 3),
        speedup=round(serial_seconds / parallel_seconds, 2),
        results_identical=identical,
    )
    return result


def bench_profile_overhead(db, samples: int) -> dict:
    """Armed vs unarmed operator profiling, on queries that actually execute.

    Uses the ``actual_rows`` cost metric so every sample runs the executor
    (``plan_cost`` never would), isolating what `use_telemetry(profile=True)`
    costs at the operator boundaries.  Both phases run under a live
    Telemetry, so the delta is the profiler alone, not metrics plumbing.
    """
    from repro.obs import Telemetry, use_telemetry

    config = BarberConfig(seed=0)
    subset = TEMPLATES[:6]
    profiler = TemplateProfiler(db, config, cost_metric="actual_rows")
    with use_telemetry(Telemetry()):
        profiler.profile_many(subset, 2)  # warm compile/import paths

    # Alternate armed/unarmed and keep the best of each: on a shared (or
    # single-CPU) machine two long sequential phases pick up background
    # drift that dwarfs the effect being measured.
    repeats = 3
    unarmed_times: list[float] = []
    armed_times: list[float] = []
    snapshot = None
    for _ in range(repeats):
        with use_telemetry(Telemetry()):
            started = time.perf_counter()
            profiler.profile_many(subset, samples)
            unarmed_times.append(time.perf_counter() - started)

        armed = Telemetry(profile=True)
        with use_telemetry(armed):
            started = time.perf_counter()
            profiler.profile_many(subset, samples)
            armed_times.append(time.perf_counter() - started)
        snapshot = armed.profiler.snapshot()

    unarmed_seconds = min(unarmed_times)
    armed_seconds = min(armed_times)
    return {
        "templates": len(subset),
        "samples_per_template": samples,
        "repeats": repeats,
        "unarmed_seconds": round(unarmed_seconds, 4),
        "armed_seconds": round(armed_seconds, 4),
        "overhead_percent": round(
            (armed_seconds / unarmed_seconds - 1.0) * 100.0, 2
        ),
        "profiled_queries": snapshot["queries"],
        "operator_types": len(snapshot["operators"]),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.02,
                        help="TPC-H scale factor (default 0.02)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="passes over the explain corpus per phase")
    parser.add_argument("--bindings", type=int, default=4,
                        help="instantiated statements per template")
    parser.add_argument("--vec-bindings", type=int, default=40,
                        help="bindings per template for the batched "
                             "re-costing (vectorized) phase")
    parser.add_argument("--samples", type=int, default=800,
                        help="profile samples per template")
    parser.add_argument("--profile-samples", type=int, default=40,
                        help="samples per template for the operator-profiler "
                             "overhead phase (executes real queries)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--output", "-o", default="BENCH_fastpath.json")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI configuration (fast, no thresholds)")
    parser.add_argument("--check", action="store_true",
                        help="fail unless speedups meet the acceptance bars "
                             "(>=5x cached explain, >=5x batched re-costing, "
                             ">1.5x parallel profiling, "
                             "<=10% armed-profiler overhead)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.scale, args.repeats, args.bindings = 0.002, 2, 2
        args.samples, args.profile_samples = 8, 6
        args.vec_bindings = 8

    db = build_tpch(scale=args.scale, seed=3)
    profiler = TemplateProfiler(db, BarberConfig(seed=0, use_fastpath=False))
    corpus = build_corpus(profiler, args.bindings)

    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cpus = os.cpu_count() or 1

    explain = bench_explain(db, corpus, args.repeats)
    vectorized = bench_vectorized(db, args.vec_bindings, args.repeats)
    profiling = bench_profiling(db, args.samples, args.workers, cpus)
    profile_overhead = bench_profile_overhead(db, args.profile_samples)
    report = {
        "benchmark": "fastpath",
        "scale": args.scale,
        "smoke": args.smoke,
        "cpus": cpus,
        "explain": explain,
        "vectorized": vectorized,
        "profiling": profiling,
        "profile_overhead": profile_overhead,
    }
    if profiling["status"] == "skipped":
        profiling["parallel_threshold"] = "skipped_single_cpu"
    else:
        profiling["parallel_threshold"] = (
            "met" if profiling["speedup"] > 1.5 else "missed"
        )
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(json.dumps(report, indent=2))

    if profiling["status"] == "measured" and not profiling["results_identical"]:
        print("FAIL: parallel profiles diverged from serial", file=sys.stderr)
        return 1
    if not vectorized["results_identical"]:
        print("FAIL: batched re-costing diverged from cold EXPLAIN",
              file=sys.stderr)
        return 1
    if args.check:
        failures = []
        if explain["speedup"] < 5.0:
            failures.append(
                f"cached explain speedup {explain['speedup']}x < 5x"
            )
        if vectorized["speedup"] < 5.0:
            failures.append(
                f"batched re-costing speedup {vectorized['speedup']}x < 5x"
            )
        if profiling["status"] == "skipped":
            print(f"SKIP: {profiling['reason']}", file=sys.stderr)
        elif profiling["speedup"] <= 1.5:
            failures.append(
                f"parallel profiling speedup {profiling['speedup']}x <= 1.5x"
            )
        if args.smoke:
            # Smoke runs execute too few queries for the overhead ratio to
            # mean anything; only full-scale runs enforce the 10% bar.
            print("SKIP: overhead bar not enforced at smoke scale",
                  file=sys.stderr)
        elif profile_overhead["overhead_percent"] > 10.0:
            failures.append(
                "armed operator-profiler overhead "
                f"{profile_overhead['overhead_percent']}% > 10%"
            )
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
