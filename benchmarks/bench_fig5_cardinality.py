"""Figure 5: performance comparison with cardinality as the target cost.

Six benchmarks (uniform, normal, four Snowset cardinality shapes) x two
databases x five methods.  The pytest-benchmark timing table doubles as the
paper's end-to-end generation-time bars; each run's final Wasserstein
distance is recorded in ``extra_info`` and in the results file.

Paper shape to reproduce: SQLBarber reaches distance ~0 on every panel, one
to three orders of magnitude faster than both baselines, which plateau at a
non-zero distance.
"""

from __future__ import annotations

import pytest

from repro.benchsuite import (
    METHODS,
    cardinality_benchmarks,
    distance_trace_text,
)

PANELS = [(b, db) for b in cardinality_benchmarks() for db in ("tpch", "imdb")]
PANEL_IDS = [f"{b.name}-{db}" for b, db in PANELS]


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("panel", PANELS, ids=PANEL_IDS)
def test_fig5(panel, method, benchmark, runner, settings, record):
    bench, db_name = panel
    if db_name not in settings.dbs:
        pytest.skip(f"database {db_name} disabled via REPRO_BENCH_DBS")
    distribution = bench.distribution(
        cost_type="cardinality",
        num_queries=settings.queries_for(bench.difficulty),
    )

    def run_once():
        return runner.run(
            method,
            db_name,
            distribution,
            benchmark_name=bench.name,
            time_budget_seconds=settings.sqlbarber_budget,
            per_interval_budget_seconds=settings.baseline_budget,
        )

    run = benchmark.pedantic(run_once, rounds=1, iterations=1)
    benchmark.extra_info["final_distance"] = round(run.final_distance, 2)
    benchmark.extra_info["queries"] = run.num_queries
    benchmark.extra_info["complete"] = run.complete
    row = run.summary_row()
    record(
        "fig5_cardinality.txt",
        f"{bench.name:24s} {db_name:5s} {method:24s} "
        f"time={row['time_s']:>8}s distance={row['distance']:>10} "
        f"queries={row['queries']}\n"
        f"  trace: {distance_trace_text(run)}",
    )
    if method == "sqlbarber":
        # The paper's headline: SQLBarber drives the distance to zero.
        assert run.complete, (
            f"SQLBarber failed to satisfy {bench.name} on {db_name}: "
            f"distance={run.final_distance}"
        )
