"""Figure 6: performance comparison with execution plan cost as the target.

Six benchmarks (uniform, normal, Snowset cost x2 shapes, Redset cost x2)
x two databases x five methods, mirroring Figure 5's structure for the
plan-cost target.  Execution-time-derived distributions are targeted through
the optimizer's plan cost estimate, exactly as the paper does (Section 6.1).
"""

from __future__ import annotations

import pytest

from repro.benchsuite import METHODS, cost_benchmarks, distance_trace_text

PANELS = [(b, db) for b in cost_benchmarks() for db in ("tpch", "imdb")]
PANEL_IDS = [f"{b.name}-{db}" for b, db in PANELS]


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("panel", PANELS, ids=PANEL_IDS)
def test_fig6(panel, method, benchmark, runner, settings, record):
    bench, db_name = panel
    if db_name not in settings.dbs:
        pytest.skip(f"database {db_name} disabled via REPRO_BENCH_DBS")
    distribution = bench.distribution(
        cost_type="plan_cost",
        num_queries=settings.queries_for(bench.difficulty),
    )

    def run_once():
        return runner.run(
            method,
            db_name,
            distribution,
            benchmark_name=bench.name,
            time_budget_seconds=settings.sqlbarber_budget,
            per_interval_budget_seconds=settings.baseline_budget,
        )

    run = benchmark.pedantic(run_once, rounds=1, iterations=1)
    benchmark.extra_info["final_distance"] = round(run.final_distance, 2)
    benchmark.extra_info["queries"] = run.num_queries
    benchmark.extra_info["complete"] = run.complete
    row = run.summary_row()
    record(
        "fig6_plan_cost.txt",
        f"{bench.name:24s} {db_name:5s} {method:24s} "
        f"time={row['time_s']:>8}s distance={row['distance']:>10} "
        f"queries={row['queries']}\n"
        f"  trace: {distance_trace_text(run)}",
    )
    if method == "sqlbarber":
        assert run.complete, (
            f"SQLBarber failed to satisfy {bench.name} on {db_name}: "
            f"distance={run.final_distance}"
        )
