"""Figure 7: scalability with the number of queries and of intervals.

Row 1 (7a/7b): Redset_Cost_Hard on IMDB, 10 intervals, #queries swept
(paper: 50/500/5000; scaled here).  Row 2 (7c/7d): same shape, 1000 queries
(scaled), #intervals swept over 5/10/15/20/25.

Paper shape: SQLBarber's time stays flat and its distance stays zero across
both sweeps; the baselines' quality degrades as either axis grows.
"""

from __future__ import annotations

import pytest

from repro.benchsuite import format_table, scale_intervals, scale_queries

QUERY_SWEEP = (20, 60, 180)  # paper: 50 / 500 / 5000
INTERVAL_SWEEP = (5, 10, 15, 20, 25)
METHODS = ("hillclimbing-priority", "learnedsqlgen-priority", "sqlbarber")


def _near_complete(run) -> bool:
    """Distance zero, or a residue under 2% of the empty-workload distance
    (a single marginal interval on a scaled-down substrate)."""
    if run.complete:
        return True
    empty = run.trace[0][1] if run.trace else 0.0
    return empty > 0 and run.final_distance <= 0.02 * empty


def test_fig7ab_scale_queries(benchmark, runner, settings, record):
    def run_sweep():
        return scale_queries(
            runner,
            QUERY_SWEEP,
            db_name="imdb" if "imdb" in settings.dbs else settings.dbs[0],
            methods=METHODS,
            num_intervals=10,
            time_budget_seconds=settings.sqlbarber_budget,
            per_interval_budget_seconds=settings.baseline_budget,
        )

    runs = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        {
            "#queries": run.extra["num_queries_requested"],
            "method": run.method,
            "time_s": round(run.elapsed_seconds, 2),
            "final_distance": round(run.final_distance, 2),
            "generated": run.num_queries,
        }
        for run in runs
    ]
    record(
        "fig7_scalability.txt",
        format_table(rows, title="Figure 7a/7b: scaling with #queries "
                                 "(Redset_Cost_Hard shape)"),
    )
    barber = [r for r in runs if r.method == "sqlbarber"]
    for run in barber:
        assert _near_complete(run), (
            f"SQLBarber must scale with N: {run.benchmark} "
            f"distance={run.final_distance}"
        )
    # Flat scaling: the largest N costs SQLBarber at most ~20x the smallest
    # (the paper shows near-constant minutes across two orders of magnitude).
    times = [r.elapsed_seconds for r in barber]
    assert times[-1] <= max(times[0], 1.0) * 20
    benchmark.extra_info["sqlbarber_times"] = [round(t, 2) for t in times]


def test_fig7cd_scale_intervals(benchmark, runner, settings, record):
    def run_sweep():
        return scale_intervals(
            runner,
            INTERVAL_SWEEP,
            db_name="imdb" if "imdb" in settings.dbs else settings.dbs[0],
            methods=METHODS,
            num_queries=settings.queries_for("medium"),
            time_budget_seconds=settings.sqlbarber_budget,
            per_interval_budget_seconds=settings.baseline_budget,
        )

    runs = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        {
            "#intervals": run.extra["num_intervals_requested"],
            "method": run.method,
            "time_s": round(run.elapsed_seconds, 2),
            "final_distance": round(run.final_distance, 2),
            "generated": run.num_queries,
        }
        for run in runs
    ]
    record(
        "fig7_scalability.txt",
        format_table(rows, title="Figure 7c/7d: scaling with #intervals "
                                 "(Redset_Cost_Hard shape)"),
    )
    barber = [r for r in runs if r.method == "sqlbarber"]
    for run in barber:
        assert _near_complete(run), (
            f"SQLBarber must scale with intervals: {run.benchmark} "
            f"distance={run.final_distance}"
        )
    benchmark.extra_info["sqlbarber_distances"] = [
        round(r.final_distance, 2) for r in barber
    ]
