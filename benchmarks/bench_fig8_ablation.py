"""Figure 8: ablation study.

(a) Rewrite analysis: cumulative spec-correct and syntax-correct template
    counts after each rewrite attempt of Algorithm 1 over the 24-template
    Redset spec workload (paper: 2 spec-correct and 8 syntax-correct
    initially; all 24 correct by attempt 4).
(b) Convergence: full SQLBarber vs No-Refine-Prune (Algorithm 2 disabled)
    vs Naive-Search (random instead of BO) on the Redset cost shape over
    IMDB.  Paper shape: No-Refine-Prune is ~3x slower to converge and
    Naive-Search fails to reach distance zero.
"""

from __future__ import annotations

import pytest

from repro.benchsuite import (
    benchmark_by_name,
    convergence_ablation,
    format_table,
    rewrite_analysis,
)


def test_fig8a_rewrite_analysis(benchmark, settings, record):
    def run_once():
        return rewrite_analysis(
            db_name="imdb" if "imdb" in settings.dbs else settings.dbs[0],
            num_specs=24,
            seed=0,
            max_rewrite_iterations=5,
        )

    analysis = benchmark.pedantic(run_once, rounds=1, iterations=1)
    record(
        "fig8_ablation.txt",
        format_table(
            analysis.rows(),
            title="Figure 8a: cumulative correct templates per rewrite attempt",
        ),
    )
    # Paper shape: few templates correct initially, (almost) all correct by
    # the final attempt.
    assert analysis.specification[0] < analysis.num_templates / 2
    assert analysis.specification[-1] >= analysis.num_templates * 0.9
    assert analysis.syntax[-1] >= analysis.num_templates * 0.9
    assert analysis.syntax[0] >= analysis.specification[0]
    benchmark.extra_info["spec_curve"] = analysis.specification
    benchmark.extra_info["syntax_curve"] = analysis.syntax
    benchmark.extra_info["alignment_accuracy"] = analysis.alignment_accuracy


def test_fig8b_convergence(benchmark, settings, record):
    # The ablated variants need a target hard enough to separate them at
    # reproduction scale: a uniform shape over the full cost range with
    # hard-tier interval granularity (the paper runs Redset_Cost at 1000
    # queries with hour-long budgets, where the same separation emerges).
    from repro.workload import CostDistribution

    distribution = CostDistribution.uniform(
        0, 10_000, settings.queries_for("hard"), 20,
        name="uniform_hard", cost_type="plan_cost",
    )

    def run_once():
        return convergence_ablation(
            "imdb" if "imdb" in settings.dbs else settings.dbs[0],
            distribution,
            seed=0,
            time_budget_seconds=settings.sqlbarber_budget,
        )

    results = benchmark.pedantic(run_once, rounds=1, iterations=1)
    rows = [
        {
            "variant": r.variant,
            "time_s": round(r.elapsed_seconds, 2),
            "final_distance": round(r.final_distance, 2),
            "complete": r.complete,
        }
        for r in results
    ]
    record(
        "fig8_ablation.txt",
        format_table(rows, title="Figure 8b: convergence by variant "
                                 "(IMDB, uniform-hard target)"),
    )
    by_variant = {r.variant: r for r in results}
    full = by_variant["sqlbarber"]
    naive = by_variant["naive-search"]
    no_refine = by_variant["no-refine-prune"]
    assert full.complete, "full SQLBarber must converge"
    # Paper shape: the full system dominates both ablated variants —
    # Naive-Search cannot drive the distance to zero, and disabling
    # refinement leaves cost ranges uncovered (paper: ~3x slower; at our
    # scale it fails outright within the budget).
    assert not naive.complete or naive.elapsed_seconds > full.elapsed_seconds
    assert full.final_distance <= naive.final_distance + 1e-9
    assert full.final_distance <= no_refine.final_distance + 1e-9
    benchmark.extra_info["final_distances"] = {
        v: round(r.final_distance, 2) for v, r in by_variant.items()
    }
