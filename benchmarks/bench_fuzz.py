"""Fuzz throughput benchmark: statements/second per differential oracle.

Standalone (not a pytest-benchmark figure — run it directly):

    PYTHONPATH=src python benchmarks/bench_fuzz.py            # full run
    PYTHONPATH=src python benchmarks/bench_fuzz.py --smoke    # CI smoke

Measures, on the standard fuzz database:

* raw grammar generation throughput (statements/s, no oracles);
* per-oracle checking throughput — each oracle run alone over the same
  statement stream, so the numbers are attributable;
* the full default-oracle campaign throughput (what ``repro fuzz`` does).

Writes ``BENCH_fuzz.json`` (see ``--output``).  These numbers size fuzz
budgets: the nightly budget should target minutes, the PR-gate smoke
seconds.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.fuzz import FuzzGrammar, FuzzRunner, build_fuzz_database
from repro.fuzz.oracles import default_oracles


def bench_generation(seed: int, budget: int) -> dict:
    grammar = FuzzGrammar(build_fuzz_database(seed).catalog, seed=seed)
    started = time.perf_counter()
    statements = grammar.statements(budget)
    elapsed = time.perf_counter() - started
    return {
        "statements": len(statements),
        "seconds": round(elapsed, 4),
        "statements_per_second": round(len(statements) / elapsed, 1),
    }


def bench_oracle(name: str, seed: int, budget: int) -> dict:
    """One oracle alone over a fresh database and the same stream."""
    db = build_fuzz_database(seed)
    oracles = [o for o in default_oracles() if o.name == name]
    runner = FuzzRunner(db=db, seed=seed, oracles=oracles, shrink=False)
    started = time.perf_counter()
    report = runner.run(budget)
    elapsed = time.perf_counter() - started
    stats = report.oracles.get(name, {"checks": 0, "skips": 0, "fails": 0})
    checked = stats["checks"]
    return {
        "checks": checked,
        "skips": stats["skips"],
        "disagreements": stats["fails"],
        "seconds": round(elapsed, 4),
        "statements_per_second": round(budget / elapsed, 1),
        "checks_per_second": round(checked / elapsed, 1) if checked else 0.0,
    }


def bench_full_campaign(seed: int, budget: int) -> dict:
    runner = FuzzRunner(db=build_fuzz_database(seed), seed=seed)
    started = time.perf_counter()
    report = runner.run(budget)
    elapsed = time.perf_counter() - started
    return {
        "statements": report.statements,
        "disagreements": len(report.disagreements),
        "seconds": round(elapsed, 4),
        "statements_per_second": round(report.statements / elapsed, 1),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--budget", type=int, default=300,
        help="statements per measured phase",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny budget for CI: checks the harness, not the numbers",
    )
    parser.add_argument("-o", "--output", default="BENCH_fuzz.json")
    args = parser.parse_args(argv)

    budget = 40 if args.smoke else args.budget
    report: dict = {
        "benchmark": "fuzz",
        "seed": args.seed,
        "budget": budget,
        "smoke": args.smoke,
        "generation": bench_generation(args.seed, budget),
        "oracles": {},
    }
    for oracle in default_oracles():
        report["oracles"][oracle.name] = bench_oracle(
            oracle.name, args.seed, budget
        )
    report["full_campaign"] = bench_full_campaign(args.seed, budget)

    disagreements = report["full_campaign"]["disagreements"] + sum(
        o["disagreements"] for o in report["oracles"].values()
    )
    report["ok"] = disagreements == 0
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(json.dumps(report, indent=2))
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
