"""Governor overhead benchmark: what does resource governance cost when
no limit ever trips?

Standalone (not a pytest-benchmark figure — run it directly):

    PYTHONPATH=src python benchmarks/bench_governor.py           # full run
    PYTHONPATH=src python benchmarks/bench_governor.py --smoke   # CI smoke

Runs the same small end-to-end pipeline (fuzz database, two specs, 16
queries) two ways and compares wall-clock:

* ``off``   — no governor: every limit ``None``, the executor's fast path;
* ``armed`` — generous limits (a 300s deadline, a 1 GiB memory budget, a
  100M row budget) that the workload never approaches, so every operator
  boundary pays the full governed bookkeeping but nothing trips.

Both must produce bit-identical fingerprints — an armed-but-idle governor
must not change content — and ``--check`` enforces the acceptance bar
(armed overhead < 5% over off, measured on best-of-N to shave scheduler
noise).  A third ``quarantine`` phase runs a planted template pool whose
runaway cross join trips tight limits and gets benched; it is reported for
scale but has no threshold, since its cost is dominated by how fast the
governor refuses the cross product (the refusal itself is the feature).

Writes ``BENCH_governor.json`` (see ``--output``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core import BarberConfig, SQLBarber
from repro.fuzz.runner import build_fuzz_database
from repro.llm import SimulatedLLM
from repro.obs import Telemetry
from repro.workload import CostDistribution, SqlTemplate, TemplateSpec

SEED = 11

SPECS = [
    TemplateSpec(spec_id="bench_a", num_joins=1, num_aggregations=1),
    TemplateSpec(spec_id="bench_b", num_joins=0, require_order_by=True),
]
DISTRIBUTION = CostDistribution.uniform(0.0, 200.0, 16, 4)

#: Never-tripped ceilings: far above anything the bench workload touches.
ARMED = dict(
    query_timeout_seconds=300.0,
    memory_budget_mb=1024.0,
    row_budget=100_000_000,
)

#: Tight ceilings for the quarantine phase, on a simulated clock so the
#: phase is deterministic.
TIGHT = dict(
    query_timeout_seconds=2.0,
    governor_cost_per_row_seconds=1e-4,
    memory_budget_mb=8.0,
    row_budget=5_000,
    governor_clock="simulated",
    quarantine_after=2,
)


def _quarantine_pool() -> list[SqlTemplate]:
    return [
        SqlTemplate(
            template_id="bench_users",
            sql="SELECT * FROM users WHERE users.age > {age}",
        ),
        SqlTemplate(
            template_id="bench_orders",
            sql=(
                "SELECT * FROM orders WHERE orders.amount > {amount} "
                "ORDER BY orders.amount"
            ),
        ),
        SqlTemplate(
            template_id="bench_runaway",
            sql="SELECT * FROM users, orders, items WHERE users.age > {age}",
        ),
    ]


def run_once(db, mode: str) -> tuple[float, str, object]:
    """One pipeline run; returns (seconds, fingerprint, result)."""
    knobs = {"off": {}, "armed": ARMED, "quarantine": TIGHT}[mode]
    barber = SQLBarber(
        db,
        llm=SimulatedLLM(seed=SEED),
        config=BarberConfig(seed=SEED, **knobs),
    )
    if mode == "quarantine":
        distribution = CostDistribution.uniform(
            0.0, 700.0, 12, 4, cost_type="actual_rows"
        )
        templates = _quarantine_pool()
    else:
        distribution, templates = DISTRIBUTION, None
    started = time.perf_counter()
    result = barber.generate_workload(
        SPECS, distribution, templates=templates, telemetry=Telemetry()
    )
    return time.perf_counter() - started, result.fingerprint_json(), result


def bench_mode(db, mode: str, repeats: int) -> tuple[dict, set]:
    times, fingerprints, last = [], set(), None
    for _ in range(repeats):
        seconds, fingerprint, last = run_once(db, mode)
        times.append(seconds)
        fingerprints.add(fingerprint)
    entry = {
        "repeats": repeats,
        "best_seconds": round(min(times), 4),
        "mean_seconds": round(sum(times) / len(times), 4),
        "deterministic": len(fingerprints) == 1,
    }
    if mode == "quarantine":
        metrics = last.telemetry.metrics
        entry["quarantined"] = len(last.quarantined)
        entry["strikes"] = int(metrics.total("governor.strikes"))
        entry["complete"] = bool(last.complete)
    return entry, fingerprints


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=9,
                        help="runs per mode (best-of is compared)")
    parser.add_argument("--output", "-o", default="BENCH_governor.json")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI configuration (fast, no thresholds)")
    parser.add_argument("--check", action="store_true",
                        help="fail unless armed overhead < 5% over off")
    args = parser.parse_args(argv)
    if args.smoke:
        args.repeats = 3

    db = build_fuzz_database(0)
    run_once(db, "armed")  # warm imports/caches off the clock

    off, off_fp = bench_mode(db, "off", args.repeats)
    armed, armed_fp = bench_mode(db, "armed", args.repeats)
    quarantine, _ = bench_mode(db, "quarantine", max(args.repeats // 3, 1))

    identical = off_fp == armed_fp and len(off_fp) == 1
    armed_overhead = (
        (armed["best_seconds"] - off["best_seconds"])
        / off["best_seconds"] * 100.0
    )
    report = {
        "benchmark": "governor",
        "smoke": args.smoke,
        "off": off,
        "armed": armed,
        "quarantine": quarantine,
        "fingerprints_identical": identical,
        "armed_overhead_percent": round(armed_overhead, 2),
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(json.dumps(report, indent=2))

    if not identical:
        print(
            "FAIL: an armed-but-idle governor changed the workload",
            file=sys.stderr,
        )
        return 1
    if not quarantine["quarantined"]:
        print(
            "FAIL: the planted runaway cross join escaped quarantine",
            file=sys.stderr,
        )
        return 1
    if args.check and armed_overhead >= 5.0:
        print(
            f"FAIL: fault-free governor overhead {armed_overhead:.2f}% >= 5%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
