"""Resilience overhead benchmark: what does the safety net cost when
nothing goes wrong?

Standalone (not a pytest-benchmark figure — run it directly):

    PYTHONPATH=src python benchmarks/bench_resilience.py           # full run
    PYTHONPATH=src python benchmarks/bench_resilience.py --smoke   # CI smoke

Runs the same small end-to-end pipeline (fuzz database, two specs, 16
queries) three ways and compares wall-clock:

* ``plain`` — bare ``SimulatedLLM``, no wrapper, no checkpoints;
* ``wrapped`` — the same client behind ``ResilientLLMClient`` (retry +
  breaker + budget guard armed, zero faults injected);
* ``checkpointed`` — wrapped *and* saving a checkpoint after every stage
  and every 4 templates.

All three must produce bit-identical fingerprints; ``--check`` additionally
enforces the acceptance bar (wrapped overhead < 5% over plain, measured on
best-of-N to shave scheduler noise).  A fourth ``storm`` phase runs under a
40% transport-fault storm purely to report what recovery costs — it has no
threshold, since its work depends on how many faults the seed draws.

Writes ``BENCH_resilience.json`` (see ``--output``).
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time

from repro.core import BarberConfig, SQLBarber
from repro.fuzz.runner import build_fuzz_database
from repro.llm import SimulatedLLM, TransportFaultModel
from repro.obs import Telemetry
from repro.resilience import ResilientLLMClient, RetryPolicy, SimulatedClock
from repro.workload import CostDistribution, TemplateSpec

SEED = 5

SPECS = [
    TemplateSpec(spec_id="bench_a", num_joins=1, num_aggregations=1),
    TemplateSpec(spec_id="bench_b", num_joins=0, require_order_by=True),
]
DISTRIBUTION = CostDistribution.uniform(0.0, 200.0, 16, 4)


def run_once(db, mode: str, storm=None) -> tuple[float, str, Telemetry]:
    """One pipeline run; returns (seconds, fingerprint, telemetry)."""
    inner = SimulatedLLM(seed=SEED, transport_faults=storm)
    if mode == "plain":
        llm = inner
    else:
        llm = ResilientLLMClient(
            inner,
            retry=RetryPolicy(max_attempts=6, base_delay_seconds=0.01),
            clock=SimulatedClock(),  # backoff costs zero wall-clock
            jitter_seed=SEED + 1,
            max_tokens=10_000_000,  # armed but never tripped
        )
    barber = SQLBarber(db, llm=llm, config=BarberConfig(seed=SEED))
    telemetry = Telemetry()
    workdir = tempfile.mkdtemp(prefix="bench-resilience-") if mode == "checkpointed" else None
    try:
        started = time.perf_counter()
        result = barber.generate_workload(
            SPECS, DISTRIBUTION, telemetry=telemetry, checkpoint_dir=workdir
        )
        seconds = time.perf_counter() - started
    finally:
        if workdir is not None:
            shutil.rmtree(workdir, ignore_errors=True)
    return seconds, result.fingerprint_json(), telemetry


def bench_mode(db, mode: str, repeats: int, storm=None) -> dict:
    times, fingerprints, last_telemetry = [], set(), None
    for _ in range(repeats):
        seconds, fingerprint, last_telemetry = run_once(db, mode, storm=storm)
        times.append(seconds)
        fingerprints.add(fingerprint)
    entry = {
        "repeats": repeats,
        "best_seconds": round(min(times), 4),
        "mean_seconds": round(sum(times) / len(times), 4),
        "deterministic": len(fingerprints) == 1,
    }
    if mode == "checkpointed":
        entry["checkpoint_saves"] = int(
            last_telemetry.metrics.total("checkpoint.saves")
        )
    if storm is not None:
        metrics = last_telemetry.metrics
        entry["faults_injected"] = int(metrics.total("llm.transport.injected"))
        entry["retry_attempts"] = int(metrics.total("llm.retry.attempts"))
        entry["retries_recovered"] = int(metrics.total("llm.retry.recovered"))
    return entry, fingerprints


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=9,
                        help="runs per mode (best-of is compared)")
    parser.add_argument("--output", "-o", default="BENCH_resilience.json")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI configuration (fast, no thresholds)")
    parser.add_argument("--check", action="store_true",
                        help="fail unless wrapped overhead < 5% over plain")
    args = parser.parse_args(argv)
    if args.smoke:
        args.repeats = 3

    db = build_fuzz_database(0)
    run_once(db, "wrapped")  # warm imports/caches off the clock

    plain, plain_fp = bench_mode(db, "plain", args.repeats)
    wrapped, wrapped_fp = bench_mode(db, "wrapped", args.repeats)
    checkpointed, checkpointed_fp = bench_mode(db, "checkpointed", args.repeats)
    storm, _ = bench_mode(
        db, "storm", max(args.repeats // 3, 1),
        storm=TransportFaultModel.storm(0.4),
    )

    identical = plain_fp == wrapped_fp == checkpointed_fp and len(plain_fp) == 1
    wrapped_overhead = (
        (wrapped["best_seconds"] - plain["best_seconds"])
        / plain["best_seconds"] * 100.0
    )
    checkpoint_overhead = (
        (checkpointed["best_seconds"] - plain["best_seconds"])
        / plain["best_seconds"] * 100.0
    )
    report = {
        "benchmark": "resilience",
        "smoke": args.smoke,
        "plain": plain,
        "wrapped": wrapped,
        "checkpointed": checkpointed,
        "storm": storm,
        "fingerprints_identical": identical,
        "wrapped_overhead_percent": round(wrapped_overhead, 2),
        "checkpoint_overhead_percent": round(checkpoint_overhead, 2),
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(json.dumps(report, indent=2))

    if not identical:
        print(
            "FAIL: plain/wrapped/checkpointed fingerprints diverged",
            file=sys.stderr,
        )
        return 1
    if args.check and wrapped_overhead >= 5.0:
        print(
            f"FAIL: fault-free wrapper overhead {wrapped_overhead:.2f}% >= 5%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
