"""Serve-layer load harness: tail latency under concurrent tenants.

Standalone (not a pytest-benchmark figure — run it directly):

    PYTHONPATH=src python benchmarks/bench_serve.py           # full run
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke   # CI smoke

Three measurements against a real :class:`BackgroundServer` (asyncio
listener + worker threads) on an ephemeral port:

* **Submission latency** — HTTP round-trip of ``POST /v1/jobs`` while the
  worker pool is busy; the front door must answer from the admission
  verdict, never from job execution.  Reported as p50/p99 from a
  :class:`~repro.obs.QuantileSketch` (the same sketch the perf reports
  use).
* **End-to-end job latency** — submit → terminal state, polled by each
  tenant thread, plus completed-jobs-per-second throughput for the whole
  storm.
* **Rejection latency** — against a zero-depth queue, every submission is
  a 429; fast explicit refusal is the backpressure contract, so its p99
  is gated too.
* **Durability** — what the write-ahead journal costs and what
  compaction buys: client-observed ``POST /v1/jobs`` latency with the
  journal on vs. off (the full run fails if journaling adds more than
  10% to submission time), plus direct-core recovery time vs. journal
  length and recovery against a compacted store.

Writes ``BENCH_serve.json``; metric keys follow the ``perf_gate``
conventions (``*_seconds`` lower-is-better, ``*_per_second``
higher-is-better, ``*overhead_percent`` compared additively).  The run
fails if any job is lost, any job fails, or any rejection lacks a retry
hint.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time

from repro.obs import QuantileSketch
from repro.serve import (
    BackgroundServer,
    ServeClient,
    ServeConfig,
    ServeCore,
    ServeServer,
    TenantQuota,
)

TENANTS = ("acme", "globex", "initech")


def payload(tenant: str, seed: int) -> dict:
    return {
        "tenant": tenant,
        "seed": seed,
        "specs": [{"num_joins": 1}],
        "queries": 8,
        "intervals": 2,
        "priority": seed % 10,
    }


def start_service(tmp_root: str, workers: int, max_queue_depth: int):
    server = ServeServer(
        ServeCore(
            ServeConfig(
                workers=workers,
                max_queue_depth=max_queue_depth,
                default_quota=TenantQuota(
                    max_concurrent_jobs=workers, max_queued_jobs=max_queue_depth
                ),
                checkpoint_root=tmp_root,
            )
        ),
        port=0,
        worker_poll_seconds=0.005,
    )
    background = BackgroundServer(server)
    return background, background.start()


def run_load(url: str, jobs: int, tenants: int) -> dict:
    """The storm: *tenants* client threads push *jobs* jobs total."""
    submit_sketch = QuantileSketch()
    e2e_sketch = QuantileSketch()
    errors: list[str] = []
    lock = threading.Lock()

    def tenant_loop(index: int) -> None:
        client = ServeClient(url)
        tenant = TENANTS[index % len(TENANTS)]
        for seed in range(index, jobs, tenants):
            body = payload(tenant, seed)
            started = time.perf_counter()
            status, response, _headers = client.submit(body)
            submit_elapsed = time.perf_counter() - started
            if status != 202:
                # Bounded queue under load: honor the hint and retry.
                retry_after = response.get("retry_after_seconds") or 0.05
                time.sleep(min(retry_after, 0.5))
                status, response, _headers = client.submit(body)
                if status != 202:
                    with lock:
                        errors.append(f"submission stuck at {status}")
                    continue
            final = client.wait_for(
                response["job_id"], timeout_seconds=300.0, poll_seconds=0.01
            )
            e2e_elapsed = time.perf_counter() - started
            with lock:
                submit_sketch.observe(submit_elapsed)
                e2e_sketch.observe(e2e_elapsed)
                if final["state"] != "completed":
                    errors.append(
                        f"{final['job_id']} ended {final['state']}: "
                        f"{final.get('error')}"
                    )

    started = time.perf_counter()
    threads = [
        threading.Thread(target=tenant_loop, args=(i,)) for i in range(tenants)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    return {
        "jobs": jobs,
        "tenants": tenants,
        "errors": errors,
        "submit_p50_seconds": round(submit_sketch.quantile(0.5) or 0.0, 5),
        "submit_p99_seconds": round(submit_sketch.quantile(0.99) or 0.0, 5),
        "job_p50_seconds": round(e2e_sketch.quantile(0.5) or 0.0, 4),
        "job_p99_seconds": round(e2e_sketch.quantile(0.99) or 0.0, 4),
        "jobs_per_second": round(e2e_sketch.count / wall, 2),
        "wall_seconds": round(wall, 3),
    }


def run_rejection_storm(tmp_root: str, submissions: int) -> dict:
    """Zero-depth queue: every answer must be a fast, explicit 429."""
    background, url = start_service(tmp_root, workers=1, max_queue_depth=0)
    sketch = QuantileSketch()
    missing_hints = 0
    try:
        client = ServeClient(url)
        for seed in range(submissions):
            started = time.perf_counter()
            status, body, headers = client.submit(payload("storm", seed))
            sketch.observe(time.perf_counter() - started)
            if status != 429:
                missing_hints += 1
            elif "retry-after" not in headers:
                missing_hints += 1
    finally:
        background.drain_and_stop()
    return {
        "submissions": submissions,
        "missing_hints": missing_hints,
        "reject_p50_seconds": round(sketch.quantile(0.5) or 0.0, 5),
        "reject_p99_seconds": round(sketch.quantile(0.99) or 0.0, 5),
    }


def run_durability(tmp_root: str, jobs: int, rounds: int) -> dict:
    """What the journal costs on submission and buys at recovery.

    Submission overhead is measured at the HTTP front door — a real
    server with ``workers=0`` (jobs queue, nothing executes), journaled
    vs. ephemeral — because "submission latency" in a serving system is
    the client-observed POST latency, and that is where the durability
    bar applies.  Recovery and compaction are timed direct-core: they
    happen before the listener is up, so HTTP is not in the path.
    """
    from repro.resilience.clock import SimulatedClock

    def config_for(state_dir: str | None, **overrides) -> ServeConfig:
        settings = dict(
            workers=2,
            max_queue_depth=jobs + 8,
            default_quota=TenantQuota(
                max_concurrent_jobs=jobs + 8, max_queued_jobs=jobs + 8
            ),
            checkpoint_root=tmp_root + "/ckpts",
            state_dir=state_dir,
        )
        settings.update(overrides)
        return ServeConfig(**settings)

    def core_for(config: ServeConfig) -> ServeCore:
        store = ServeCore.open_store(config) if config.state_dir else None
        return ServeCore(config, SimulatedClock(), store)

    def submit_round(state_dir: str | None) -> float:
        """Median POST latency over *jobs* submissions, one server."""
        config = config_for(state_dir, workers=0)
        server = ServeServer(
            ServeCore(config, store=(
                ServeCore.open_store(config) if state_dir else None
            )),
            port=0,
        )
        background = BackgroundServer(server)
        url = background.start()
        sketch = QuantileSketch()
        try:
            client = ServeClient(url)
            bodies = [
                payload(TENANTS[i % len(TENANTS)], i) for i in range(jobs)
            ]
            for body in bodies:
                started = time.perf_counter()
                status, _response, _headers = client.submit(body)
                sketch.observe(time.perf_counter() - started)
                if status != 202:
                    raise RuntimeError(f"benchmark submission got {status}")
        finally:
            background.drain_and_stop()
        return sketch.quantile(0.5) * jobs

    # Interleave the variants and keep each one's best round: the min of
    # per-round medians is the least-noise estimate of the path cost.
    ephemeral, journaled = [], []
    for index in range(rounds):
        ephemeral.append(submit_round(None))
        journaled.append(submit_round(f"{tmp_root}/submit-{index}"))
    overhead = (
        (min(journaled) - min(ephemeral)) / min(ephemeral) * 100.0
    )

    def write_history(count: int, state_dir: str, **overrides) -> None:
        """A full lifecycle per job: submitted, claimed, finished."""
        core = core_for(config_for(state_dir, **overrides))
        for index in range(count):
            core.submit(payload(TENANTS[index % len(TENANTS)], index))
            job = core.claim("bench-worker")
            core.finish(
                job,
                {
                    "result": {"fingerprint": "0" * 64, "queries": 1},
                    "tokens": 10,
                    "dollars": 0.001,
                },
            )
        core.close()

    def timed_recovery(state_dir: str, **overrides) -> tuple[float, dict]:
        config = config_for(state_dir, **overrides)
        started = time.perf_counter()
        core = ServeCore.recover(config)
        elapsed = time.perf_counter() - started
        recovery = core.recovery
        core.close()
        return elapsed, recovery

    # Recovery time vs. journal length: pure replay, no compaction.
    quarter = max(jobs // 4, 1)
    write_history(quarter, f"{tmp_root}/replay-quarter",
                  compact_after_segments=0)
    write_history(jobs, f"{tmp_root}/replay-full", compact_after_segments=0)
    quarter_seconds, _ = timed_recovery(
        f"{tmp_root}/replay-quarter", compact_after_segments=0
    )
    full_seconds, full_recovery = timed_recovery(
        f"{tmp_root}/replay-full", compact_after_segments=0
    )

    # The same history with compaction armed: sealed segments fold into
    # one snapshot (one state entry per job instead of three records).
    compact_overrides = dict(
        segment_max_records=max(jobs // 8, 16), compact_after_segments=2
    )
    write_history(jobs, f"{tmp_root}/compacted", **compact_overrides)
    compacted_seconds, compacted_recovery = timed_recovery(
        f"{tmp_root}/compacted", **compact_overrides
    )

    return {
        "jobs": jobs,
        "rounds": rounds,
        "submit_ephemeral_seconds": round(min(ephemeral), 5),
        "submit_journaled_seconds": round(min(journaled), 5),
        "journal_overhead_percent": round(overhead, 2),
        "recovery_quarter_seconds": round(quarter_seconds, 5),
        "recovery_full_seconds": round(full_seconds, 5),
        "recovery_records_per_second": round(
            full_recovery["records_replayed"] / max(full_seconds, 1e-9), 1
        ),
        "recovery_compacted_seconds": round(compacted_seconds, 5),
        "compacted_records_replayed": compacted_recovery["records_replayed"],
        "compacted_snapshot_loaded": compacted_recovery["snapshot_loaded"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=24,
                        help="total jobs across all tenant threads")
    parser.add_argument("--tenants", type=int, default=3,
                        help="concurrent client threads")
    parser.add_argument("--workers", type=int, default=4,
                        help="service worker threads")
    parser.add_argument("--rejections", type=int, default=50,
                        help="submissions in the queue-full storm")
    parser.add_argument("--durability-jobs", type=int, default=1200,
                        help="submissions per round in the durability section")
    parser.add_argument("--output", "-o", default="BENCH_serve.json")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI configuration (fast, no thresholds)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.jobs, args.tenants, args.workers, args.rejections = 6, 2, 2, 10
        args.durability_jobs = 150

    import tempfile

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp_root:
        background, url = start_service(
            tmp_root + "/load", args.workers, max_queue_depth=args.jobs
        )
        try:
            # Warm the pipeline (imports, parser, plan cache) off the clock.
            warm_client = ServeClient(url)
            _, warm, _ = warm_client.submit(payload("warmup", 999))
            warm_client.wait_for(warm["job_id"], timeout_seconds=120.0)

            load = run_load(url, jobs=args.jobs, tenants=args.tenants)
            core = background.server.core
            lost = core.audit_lost_jobs()
        finally:
            background.drain_and_stop()
        rejection = run_rejection_storm(tmp_root + "/reject", args.rejections)
        durability = run_durability(
            tmp_root + "/durable",
            jobs=args.durability_jobs,
            rounds=2 if args.smoke else 3,
        )

    report = {
        "benchmark": "serve",
        "smoke": args.smoke,
        "workers": args.workers,
        "load": {k: v for k, v in load.items() if k != "errors"},
        "rejection": rejection,
        "durability": durability,
        "lost_jobs": lost,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(json.dumps(report, indent=2))

    if load["errors"]:
        print(f"FAIL: {load['errors']}", file=sys.stderr)
        return 1
    if lost:
        print(f"FAIL: lost jobs {lost}", file=sys.stderr)
        return 1
    if rejection["missing_hints"]:
        print(
            f"FAIL: {rejection['missing_hints']} rejection(s) were not "
            f"explicit 429s with Retry-After",
            file=sys.stderr,
        )
        return 1
    if not args.smoke and durability["journal_overhead_percent"] > 10.0:
        print(
            f"FAIL: journaled submission overhead "
            f"{durability['journal_overhead_percent']}% exceeds the 10% bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
