"""Table 1: the benchmark inventory.

Regenerates the overview of the ten released benchmarks — their source,
cost type, query count, and interval count — and materializes every target
distribution to verify the shapes are well-formed.
"""

from repro.benchsuite import TABLE1_BENCHMARKS, histogram_text, table1_overview


def test_table1_overview(benchmark, record):
    def build():
        text = table1_overview()
        histograms = []
        for bench in TABLE1_BENCHMARKS:
            distribution = bench.distribution()
            assert distribution.total_queries == bench.num_queries
            assert distribution.num_intervals == bench.num_intervals
            histograms.append(histogram_text(distribution))
        return text, histograms

    text, histograms = benchmark.pedantic(build, rounds=1, iterations=1)
    record("table1_overview.txt", text)
    record("table1_overview.txt", "\n\n".join(histograms))
    benchmark.extra_info["num_benchmarks"] = len(TABLE1_BENCHMARKS)
