"""Table 2: SQLBarber token usage and monetary cost on IMDB.

Runs SQLBarber end-to-end on uniform, Redset_Cost_Medium, and
Redset_Cost_Hard and reports LLM tokens, number of SQL templates, and USD
cost at o3-mini pricing.  Paper shape: tens of templates and a cost well
under a few dollars per benchmark, with harder benchmarks producing more
templates (the system adapts template generation to the target shape).
"""

from __future__ import annotations

import pytest

from repro.benchsuite import benchmark_by_name, cost_study, format_table

BENCHMARK_NAMES = ("uniform", "Redset_Cost_Medium", "Redset_Cost_Hard")


def test_table2_cost_study(benchmark, settings, record):
    benchmarks = [benchmark_by_name(name) for name in BENCHMARK_NAMES]

    def run_once():
        return cost_study(
            benchmarks,
            db_name="imdb" if "imdb" in settings.dbs else settings.dbs[0],
            num_queries=settings.queries_for("medium"),
            num_specs=10,
            seed=0,
            time_budget_seconds=settings.sqlbarber_budget,
        )

    rows = benchmark.pedantic(run_once, rounds=1, iterations=1)
    record(
        "table2_cost.txt",
        format_table(
            [row.as_dict() for row in rows],
            title="Table 2: SQLBarber token usage and cost on IMDB",
        ),
    )
    for row in rows:
        assert row.tokens_thousands > 0
        assert row.num_templates >= 10
        assert row.cost_usd < 2.0  # the paper's bound: under two dollars
    # The paper observes more templates on its harder benchmarks.  At our
    # scaled-down query counts the template-hungry benchmark is instead the
    # uniform one (it demands coverage of the entire cost range, while the
    # fleet shapes concentrate mass where seed templates already live) — a
    # documented deviation (EXPERIMENTS.md).  What must hold is the claim
    # behind the numbers: template production adapts to the target shape.
    counts = {row.benchmark: row.num_templates for row in rows}
    assert len(set(counts.values())) > 1, (
        f"template counts should adapt to the target shape: {counts}"
    )
    benchmark.extra_info["rows"] = [row.as_dict() for row in rows]
