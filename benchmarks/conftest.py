"""Shared configuration for the paper-reproduction benchmark suite.

Every file in this directory regenerates one table or figure of the paper.
Scales are configurable through environment variables so the suite can run
paper-scale if desired:

=============================  =======================  =====================
variable                       meaning                  default
=============================  =======================  =====================
REPRO_BENCH_QUERIES_MEDIUM     #queries, medium bench   60    (paper: 1000)
REPRO_BENCH_QUERIES_HARD       #queries, hard bench     100   (paper: 2000)
REPRO_BENCH_DBS                comma-separated DBs      tpch,imdb
REPRO_BENCH_BASELINE_BUDGET    baseline seconds/interval 0.5  (paper: 3600)
REPRO_BENCH_SQLBARBER_BUDGET   SQLBarber total seconds  60
=============================  =======================  =====================

Result tables are printed and also written to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import dataclass

import pytest

from repro.benchsuite import ExperimentRunner

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@dataclass(frozen=True)
class BenchSettings:
    queries_medium: int
    queries_hard: int
    dbs: tuple[str, ...]
    baseline_budget: float
    sqlbarber_budget: float

    def queries_for(self, difficulty: str) -> int:
        return self.queries_hard if difficulty == "hard" else self.queries_medium


@pytest.fixture(scope="session")
def settings() -> BenchSettings:
    return BenchSettings(
        queries_medium=int(os.environ.get("REPRO_BENCH_QUERIES_MEDIUM", "60")),
        queries_hard=int(os.environ.get("REPRO_BENCH_QUERIES_HARD", "100")),
        dbs=tuple(
            os.environ.get("REPRO_BENCH_DBS", "tpch,imdb").split(",")
        ),
        baseline_budget=float(
            os.environ.get("REPRO_BENCH_BASELINE_BUDGET", "0.5")
        ),
        sqlbarber_budget=float(
            os.environ.get("REPRO_BENCH_SQLBARBER_BUDGET", "60")
        ),
    )


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner(seed=0, num_specs=10, pool_size=64)


@pytest.fixture(scope="session")
def record():
    """Append a result block to a per-figure text file and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    opened: set[str] = set()

    def _record(filename: str, text: str) -> None:
        path = RESULTS_DIR / filename
        mode = "w" if filename not in opened else "a"
        opened.add(filename)
        with open(path, mode) as handle:
            handle.write(text + "\n\n")
        print("\n" + text)

    return _record
