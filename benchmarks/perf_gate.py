"""Perf-regression gate over the committed ``BENCH_*.json`` reports.

Compares a *candidate* set of benchmark reports against a *baseline* set
and fails (exit 1) when any metric regressed beyond a noise-aware
threshold.  Used by CI (the ``perf-gate`` job) and locally:

    PYTHONPATH=src python benchmarks/perf_gate.py \
        --baseline baselines/ --candidate .

Matching and comparison rules:

* Reports are paired by their top-level ``"benchmark"`` key, not by
  filename.  A benchmark present on only one side is reported but never
  fails the gate (new benchmarks must not break it).
* Sections carrying ``"status": "skipped"`` are ignored entirely,
  including everything nested under them — a hardware-gated section
  (e.g. parallel profiling on a single-CPU runner) contributes nothing.
* Metric kinds are inferred from key names:
    - ``seconds`` / ``*_seconds``: wall-clock, lower is better;
    - ``*_per_second`` / ``*_ops_per_s``: throughput, higher is better;
    - ``speedup``: ratio, higher is better;
    - ``*overhead_percent``: compared additively (percentage points).
* Wall-clock and throughput numbers are only comparable when the two
  reports ran at the same ``scale`` and ``smoke`` setting; otherwise
  those metrics are skipped with a note.  Ratios and overheads are
  scale-free and always compared.
* Thresholds are multiplicative (default 1.8x) so a baseline rerun on
  the same machine passes on noise, while a planted 2x slowdown trips.
  Tiny timings (below ``--min-seconds``) are ignored as pure noise.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from dataclasses import dataclass

TIME_LOWER = "time_lower"        # seconds, lower is better
TIME_HIGHER = "time_higher"      # throughput, higher is better
RATIO_HIGHER = "ratio_higher"    # speedup, higher is better
OVERHEAD = "overhead"            # percentage points, lower is better

TIME_KINDS = frozenset({TIME_LOWER, TIME_HIGHER})


def classify(key: str) -> str | None:
    """Map a metric key to a comparison kind, or None for non-metrics."""
    if key == "seconds" or key.endswith("_seconds"):
        return TIME_LOWER
    if key.endswith("_per_second") or key.endswith("_per_s"):
        return TIME_HIGHER
    if key == "speedup":
        return RATIO_HIGHER
    if key.endswith("overhead_percent"):
        return OVERHEAD
    return None


def iter_metrics(node, path=()):
    """Yield ``(dotted_path, kind, value)`` for every metric in a report.

    Skips any dict subtree marked ``status: "skipped"`` — those sections
    deliberately carry no comparable numbers.
    """
    if isinstance(node, dict):
        if node.get("status") == "skipped":
            return
        for key in sorted(node):
            yield from iter_metrics(node[key], path + (key,))
    elif isinstance(node, bool):
        return
    elif isinstance(node, (int, float)):
        kind = classify(path[-1]) if path else None
        if kind is not None:
            yield ".".join(path), kind, float(node)


def load_reports(spec: str) -> dict[str, dict]:
    """Load ``BENCH_*.json`` reports from a file or directory, keyed by
    their ``"benchmark"`` field."""
    if os.path.isdir(spec):
        paths = sorted(glob.glob(os.path.join(spec, "BENCH_*.json")))
    else:
        paths = [spec]
    reports: dict[str, dict] = {}
    for path in paths:
        with open(path) as handle:
            report = json.load(handle)
        name = report.get("benchmark")
        if not name:
            print(f"WARN: {path} has no 'benchmark' key; ignored",
                  file=sys.stderr)
            continue
        reports[name] = report
    return reports


@dataclass
class Finding:
    benchmark: str
    metric: str
    kind: str
    baseline: float
    candidate: float
    verdict: str  # "ok" | "regression" | "skipped"
    note: str = ""

    def line(self) -> str:
        tag = {"ok": "OK  ", "regression": "FAIL", "skipped": "SKIP"}[
            self.verdict
        ]
        body = (f"{tag} {self.benchmark}.{self.metric}: "
                f"{self.baseline:g} -> {self.candidate:g}")
        return body + (f"  ({self.note})" if self.note else "")


def compare_metric(
    benchmark: str,
    metric: str,
    kind: str,
    base: float,
    cand: float,
    *,
    tolerance: float,
    overhead_slack: float,
    min_seconds: float,
    times_comparable: bool,
) -> Finding:
    if kind in TIME_KINDS and not times_comparable:
        return Finding(benchmark, metric, kind, base, cand, "skipped",
                       "scale/smoke differ between baseline and candidate")
    if kind == TIME_LOWER:
        if max(base, cand) < min_seconds:
            return Finding(benchmark, metric, kind, base, cand, "skipped",
                           f"below noise floor {min_seconds}s")
        if cand > base * tolerance:
            return Finding(benchmark, metric, kind, base, cand, "regression",
                           f"{cand / base:.2f}x slower > {tolerance}x")
    elif kind == TIME_HIGHER:
        if base > 0 and cand < base / tolerance:
            return Finding(benchmark, metric, kind, base, cand, "regression",
                           f"{base / max(cand, 1e-12):.2f}x less throughput")
    elif kind == RATIO_HIGHER:
        if base > 0 and cand < base / tolerance:
            return Finding(benchmark, metric, kind, base, cand, "regression",
                           f"speedup fell below {base / tolerance:.2f}")
    elif kind == OVERHEAD:
        if cand > base + overhead_slack:
            return Finding(benchmark, metric, kind, base, cand, "regression",
                           f"+{cand - base:.1f} points > {overhead_slack}")
    return Finding(benchmark, metric, kind, base, cand, "ok")


def run_gate(
    baseline: dict[str, dict],
    candidate: dict[str, dict],
    *,
    tolerance: float,
    overhead_slack: float,
    min_seconds: float,
) -> tuple[list[Finding], list[str]]:
    findings: list[Finding] = []
    notes: list[str] = []
    for name in sorted(set(baseline) | set(candidate)):
        if name not in candidate:
            notes.append(f"benchmark {name!r} missing from candidate set")
            continue
        if name not in baseline:
            notes.append(f"benchmark {name!r} is new (no baseline); skipped")
            continue
        base_report, cand_report = baseline[name], candidate[name]
        times_comparable = all(
            base_report.get(key) == cand_report.get(key)
            for key in ("scale", "smoke")
        )
        base_metrics = dict(
            (path, (kind, value))
            for path, kind, value in iter_metrics(base_report)
        )
        for path, kind, cand_value in iter_metrics(cand_report):
            entry = base_metrics.get(path)
            if entry is None or entry[0] != kind:
                continue  # metric new/retyped in candidate: not a regression
            findings.append(compare_metric(
                name, path, kind, entry[1], cand_value,
                tolerance=tolerance,
                overhead_slack=overhead_slack,
                min_seconds=min_seconds,
                times_comparable=times_comparable,
            ))
    return findings, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="baseline BENCH_*.json file or directory")
    parser.add_argument("--candidate", required=True,
                        help="candidate BENCH_*.json file or directory")
    parser.add_argument("--tolerance", type=float, default=1.8,
                        help="multiplicative slack on time/ratio metrics "
                             "(default 1.8: a 2x slowdown trips, reruns pass)")
    parser.add_argument("--overhead-slack", type=float, default=15.0,
                        help="additive slack, in percentage points, on "
                             "*_overhead_percent metrics (default 15)")
    parser.add_argument("--min-seconds", type=float, default=0.02,
                        help="ignore wall-clock metrics below this (noise)")
    parser.add_argument("--quiet", action="store_true",
                        help="print regressions and notes only")
    args = parser.parse_args(argv)

    baseline = load_reports(args.baseline)
    candidate = load_reports(args.candidate)
    if not baseline or not candidate:
        print("ERROR: no BENCH_*.json reports found "
              f"(baseline={len(baseline)}, candidate={len(candidate)})",
              file=sys.stderr)
        return 2

    findings, notes = run_gate(
        baseline, candidate,
        tolerance=args.tolerance,
        overhead_slack=args.overhead_slack,
        min_seconds=args.min_seconds,
    )
    if not findings:
        print("ERROR: no comparable metrics between baseline and candidate",
              file=sys.stderr)
        return 2

    regressions = [f for f in findings if f.verdict == "regression"]
    for finding in findings:
        if finding.verdict == "regression" or not args.quiet:
            print(finding.line())
    for note in notes:
        print(f"NOTE: {note}")
    counts = {
        "ok": sum(f.verdict == "ok" for f in findings),
        "skipped": sum(f.verdict == "skipped" for f in findings),
        "regressions": len(regressions),
    }
    print(f"perf-gate: {counts['ok']} ok, {counts['skipped']} skipped, "
          f"{counts['regressions']} regressions "
          f"(tolerance {args.tolerance}x)")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
