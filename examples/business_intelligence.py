"""Business-intelligence workload: no joins, complex scalar expressions.

The paper's introduction motivates exactly this case: benchmarking BI tools
such as Tableau requires queries with structurally simple relational trees
but highly complex scalar expressions — a combination no standard benchmark
provides (Vogelsgesang et al., DBTest'18).  SQLBarber accepts it as a plain
natural-language instruction.

Run:  python examples/business_intelligence.py
"""

from repro.core import BarberConfig, SQLBarber
from repro.datasets import build_tpch
from repro.workload import CostDistribution, TemplateSpec, analyze_sql


def main() -> None:
    db = build_tpch(scale=0.005)
    # strict_spec_refinement keeps every refined template variant compliant
    # with its spec — essential here, where "no joins" is the whole point.
    barber = SQLBarber(db, config=BarberConfig(strict_spec_refinement=True))

    # The exact requirement quoted in the paper (Example 2.6):
    # "I want an SQL template with no joins but with complex scalar
    #  expressions."
    specs = [
        TemplateSpec.from_natural_language(
            "I want an SQL template with no joins but with complex scalar "
            "expressions and two predicate values",
            spec_id=f"bi_{i}",
        )
        for i in range(4)
    ]

    templates, report = barber.generate_templates(specs)
    print(f"Generated {len(templates)} BI-style templates "
          f"(alignment accuracy {report.alignment_accuracy:.0%})\n")
    for template in templates:
        structure = analyze_sql(template.sql)
        print(f"-- {template.template_id}: joins={structure.num_joins}, "
              f"complex_scalar={structure.has_complex_scalar}")
        print(template.sql)
        print()

    # Give the BI dashboards a realistic latency mix: mostly fast queries
    # with a long tail, the fleet-statistics shape.
    # Join-free queries top out around a single big-table scan, so the
    # latency mix stays within that reach.
    distribution = CostDistribution.from_weights(
        0, 1_200, weights=[8, 4, 2, 1, 1, 1], num_queries=30,
        name="bi_latency_mix", cost_type="plan_cost",
    )
    result = barber.generate_workload(
        specs, distribution, templates=templates, time_budget_seconds=60
    )
    print(f"Workload: {len(result.workload)} queries, "
          f"distance {result.final_distance:.2f} "
          f"(complete: {result.complete})")

    # Verify the workload keeps the BI shape: zero joins everywhere.
    assert all(
        analyze_sql(q.sql).num_joins == 0 for q in result.workload
    ), "every BI query must stay join-free"
    print("All generated queries are join-free with complex scalar "
          "expressions — the exact spec no existing benchmark covers.")


if __name__ == "__main__":
    main()
