"""Bring your own schema and your own cost metric.

SQLBarber is not tied to the built-in datasets or the built-in cost types:
this example loads a user schema from a plain SQL script (CREATE TABLE /
INSERT), defines a custom cost metric (a result-size proxy: estimated rows
x ~64 bytes), and generates a workload matching a target distribution over
that metric — Definition 2.10's "any user-defined" cost type.

Run:  python examples/custom_schema_and_metric.py
"""

import numpy as np

from repro.core import BarberConfig, PredicateSearch, SQLBarber, TemplateProfiler
from repro.sqldb import Database, run_script
from repro.workload import (
    CostDistribution,
    TemplateSpec,
    Workload,
    replay_workload,
)


def build_script(n_sensors: int = 50, n_readings: int = 2000) -> str:
    """A complete SQL script: schema plus generated INSERT statements."""
    rng = np.random.default_rng(7)
    lines = [
        "CREATE TABLE sensors (",
        "    sensor_id integer PRIMARY KEY,",
        "    location text NOT NULL,",
        "    model text",
        ");",
        "CREATE TABLE readings (",
        "    reading_id integer PRIMARY KEY,",
        "    sensor_id integer REFERENCES sensors(sensor_id),",
        "    value double precision,",
        "    taken_on date",
        ");",
    ]
    sensor_rows = ", ".join(
        f"({i}, 'site_{i % 8}', 'm{i % 5}')" for i in range(n_sensors)
    )
    lines.append(f"INSERT INTO sensors VALUES {sensor_rows};")
    reading_rows = ", ".join(
        f"({i}, {int(rng.integers(0, n_sensors))}, "
        f"{float(rng.normal(20.0, 6.0)):.3f}, "
        f"'{2022}-{int(rng.integers(1, 13)):02d}-{int(rng.integers(1, 28)):02d}')"
        for i in range(n_readings)
    )
    lines.append(f"INSERT INTO readings VALUES {reading_rows};")
    return "\n".join(lines)


def memory_footprint(sql: str, db: Database) -> float:
    """Custom metric: estimated result size in bytes (rows x ~64B)."""
    return db.explain(sql).estimated_rows * 64.0


def main() -> None:
    db = run_script(Database("iot"), build_script())
    print("Loaded custom IoT schema:", ", ".join(db.catalog.table_names))
    print("readings rows:", db.catalog.table("readings").row_count)

    barber = SQLBarber(db, config=BarberConfig(seed=3))
    specs = [
        TemplateSpec.from_natural_language(
            "one join and two predicate values", spec_id="iot_join"),
        TemplateSpec.from_natural_language(
            "no joins with two predicates", spec_id="iot_scan"),
    ]
    templates, report = barber.generate_templates(specs)
    print(f"Templates: {len(templates)} "
          f"(alignment {report.alignment_accuracy:.0%})")

    # Target: result sizes up to ~128KB, uniformly spread over the metric.
    target = CostDistribution.uniform(
        0, 128_000, num_queries=24, num_intervals=6, cost_type="custom"
    )
    profiler = TemplateProfiler(db, barber.config, cost_metric=memory_footprint)
    profiles = [profiler.profile(t, 10) for t in templates]
    search = PredicateSearch(profiler, barber.config)
    result = search.run([p for p in profiles if p.is_usable], target)

    print(f"Generated {len(result.queries)} queries against the custom "
          f"metric; distance {result.final_distance:.1f} "
          f"(complete: {result.complete})")

    replay = replay_workload(Workload(queries=result.queries), db)
    print(replay.to_text())


if __name__ == "__main__":
    main()
