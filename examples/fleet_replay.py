"""Fleet replay: regenerate a production-like workload from statistics.

The scenario from the paper's Figure 2: production SQL is private, but the
fleet's execution statistics (Redset / Snowset) are public.  This example
derives the Redset execution-cost histogram, generates a matching workload
over IMDB, exports it to JSONL, and shows the target-vs-achieved alignment.

Run:  python examples/fleet_replay.py
"""

import pathlib
import tempfile

from repro.benchsuite import histogram_text
from repro.core import SQLBarber
from repro.datasets import build_imdb, fleet_distribution, redset_spec_workload
from repro.workload import Workload


def main() -> None:
    print("Building IMDB (21 tables) ...")
    db = build_imdb()

    # The target distribution comes from fleet statistics, not from any
    # private query text: a heavy-tailed cost mix over [0, 10k].
    distribution = fleet_distribution(
        "redset_cost", num_queries=80, num_intervals=10,
        cost_type="plan_cost", display_name="redset_replay",
    )
    print()
    print(histogram_text(distribution))

    # Template specs mirror the fleet's structural profile: 24 templates
    # annotated with table/join/aggregation counts plus NL instructions.
    specs = redset_spec_workload(num_specs=12)

    barber = SQLBarber(db)
    result = barber.generate_workload(specs, distribution,
                                      time_budget_seconds=180)
    print(f"\nGenerated {len(result.workload)} queries in "
          f"{result.elapsed_seconds:.1f}s; Wasserstein distance "
          f"{result.final_distance:.2f}")

    print("\nAchieved histogram:")
    achieved = result.tracker.achieved
    peak = max(max(achieved), 1)
    for index in range(distribution.num_intervals):
        low, high = distribution.interval_bounds(index)
        bar = "#" * int(achieved[index] / peak * 40)
        print(f"  [{low:>8.0f},{high:>8.0f}) {achieved[index]:>4d} {bar}")

    # Export / reimport round trip: the workload is a portable artifact.
    out = pathlib.Path(tempfile.gettempdir()) / "redset_replay.jsonl"
    out.write_text(result.workload.to_jsonl())
    restored = Workload.from_jsonl(out.read_text())
    print(f"\nExported {len(restored)} queries to {out}")

    heaviest = max(restored.queries, key=lambda q: q.cost)
    print(f"\nHeaviest query (cost {heaviest.cost:.0f}):")
    print(heaviest.sql)


if __name__ == "__main__":
    main()
