"""Quickstart: generate a customized, cost-targeted SQL workload.

Builds a small TPC-H database, describes the templates we want in plain
English, asks SQLBarber for 50 queries whose plan costs follow a uniform
distribution over [0, 5000], and prints what came back.

Run:  python examples/quickstart.py
"""

from repro.core import SQLBarber
from repro.datasets import build_tpch
from repro.workload import CostDistribution, TemplateSpec


def main() -> None:
    print("Building TPC-H ...")
    db = build_tpch(scale=0.005)

    # Declarative inputs: natural-language template specs + a target
    # cost distribution (Definition 2.13 of the paper).
    specs = [
        TemplateSpec.from_natural_language(
            "a template with 2 joins and one aggregation using GROUP BY",
            spec_id="analytics",
        ),
        TemplateSpec.from_natural_language(
            "a simple template with no joins and two predicate values",
            spec_id="selective",
        ),
        TemplateSpec.from_natural_language(
            "a template with one join and a nested subquery",
            spec_id="nested",
        ),
    ]
    distribution = CostDistribution.uniform(
        0, 5_000, num_queries=50, num_intervals=10, cost_type="plan_cost"
    )

    barber = SQLBarber(db)
    result = barber.generate_workload(specs, distribution,
                                      time_budget_seconds=120)

    print(f"\nGenerated {len(result.workload)} queries "
          f"from {result.num_templates} templates "
          f"in {result.elapsed_seconds:.1f}s")
    print(f"Wasserstein distance to target: {result.final_distance:.2f}")
    print(f"Template alignment accuracy:    "
          f"{result.generation_report.alignment_accuracy:.0%}")
    print(f"LLM usage: {result.llm_usage['total_tokens']} tokens "
          f"across {result.llm_usage['num_calls']} calls")

    print("\nTarget vs achieved per interval:")
    achieved = result.tracker.achieved
    for index, target in enumerate(distribution.target_counts):
        low, high = distribution.interval_bounds(index)
        print(f"  cost [{low:>7.0f},{high:>7.0f}) "
              f"target={target:>3d} achieved={achieved[index]:>3d}")

    print("\nThree sample queries:")
    for query in result.workload.queries[:3]:
        print(f"\n-- cost={query.cost:.1f} (template {query.template_id})")
        print(query.sql)

    # Every query is executable on the target database.
    sample = result.workload.queries[0]
    rows = db.execute(sample.sql)
    print(f"\nExecuting the first query returned {rows.row_count} rows "
          f"in {rows.elapsed_seconds * 1000:.1f} ms")


if __name__ == "__main__":
    main()
