"""DBMS regression testing: hunt for optimizer misestimates.

The paper's motivating use case (Figure 2) is preventing performance
regressions when a DBMS changes.  A generated workload is only useful for
that if it actually exercises the optimizer — this example generates a
cardinality-targeted workload, executes every query, and reports the
queries with the worst Q-error (estimated vs. actual rows), exactly the
artifacts a DBMS developer would triage before a release.

Run:  python examples/regression_testing.py
"""

from repro.core import SQLBarber
from repro.datasets import build_tpch, redset_spec_workload
from repro.workload import CostDistribution, replay_workload


def main() -> None:
    db = build_tpch(scale=0.005)
    barber = SQLBarber(db)

    max_rows = db.catalog.table("lineitem").row_count
    distribution = CostDistribution.uniform(
        0, max_rows, num_queries=40, num_intervals=8,
        cost_type="cardinality",
    )
    specs = redset_spec_workload(num_specs=8)
    result = barber.generate_workload(specs, distribution,
                                      time_budget_seconds=120)
    print(f"Generated {len(result.workload)} cardinality-targeted queries "
          f"(distance {result.final_distance:.2f})\n")

    print("Executing the workload and measuring estimation quality ...")
    report = replay_workload(result.workload, db)
    print(report.to_text())

    print("\nTop 3 optimizer misestimates (regression-test candidates):")
    for outcome in report.worst_estimates(3):
        print(f"\n-- q-error {outcome.q_error:.1f}: estimated "
              f"{outcome.estimated_rows:.0f} rows, actual {outcome.rows}")
        print(outcome.query.sql)


if __name__ == "__main__":
    main()
