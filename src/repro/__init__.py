"""SQLBarber reproduction: LLM-driven customized, cost-targeted SQL workloads.

The package layout mirrors the paper's architecture:

* :mod:`repro.sqldb`     - embedded DBMS (PostgreSQL stand-in)
* :mod:`repro.llm`       - simulated LLM service with fault injection
* :mod:`repro.bo`        - Bayesian optimization (SMAC3 stand-in)
* :mod:`repro.workload`  - templates, specs, queries, cost distributions
* :mod:`repro.core`      - SQLBarber itself (template generator + cost-aware
  query generator)
* :mod:`repro.baselines` - HillClimbing and LearnedSQLGen comparators
* :mod:`repro.datasets`  - TPC-H / IMDB data and Snowset/Redset distributions
* :mod:`repro.benchsuite`- the ten benchmarks and experiment harness
"""

__version__ = "1.0.0"
