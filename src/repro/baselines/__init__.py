"""Baseline SQL generators: HillClimbing and LearnedSQLGen."""

from .base import BaselineGenerator, GenerationRun
from .hillclimbing import HillClimbing
from .learnedsqlgen import LearnedSQLGen
from .template_pool import build_template_pool, perturb_template_sql

__all__ = [
    "BaselineGenerator",
    "GenerationRun",
    "HillClimbing",
    "LearnedSQLGen",
    "build_template_pool",
    "perturb_template_sql",
]
