"""Common machinery for the baseline generators.

Both baselines (HillClimbing and LearnedSQLGen) generate queries for *one
cost range per iteration*, so the order in which intervals are processed
matters.  The paper evaluates two scheduling heuristics for each:

* ``order``    — fill intervals from the lowest to the highest cost range;
* ``priority`` — at each iteration, fill the interval with the largest
  remaining deficit.

The number of iterations equals the number of intervals, and each iteration
gets a fixed time budget — mirroring the paper's setup of one optimization
iteration per interval with a per-iteration wall-clock budget.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core import TemplateProfile, TemplateProfiler
from repro.workload import (
    CostDistribution,
    DistributionTracker,
    GeneratedQuery,
)


@dataclass
class GenerationRun:
    """The outcome of one generator run on one benchmark."""

    method: str
    queries: list[GeneratedQuery]
    tracker: DistributionTracker
    trace: list[tuple[float, float]] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    evaluations: int = 0

    @property
    def final_distance(self) -> float:
        return self.tracker.wasserstein

    @property
    def complete(self) -> bool:
        return self.tracker.complete


class BaselineGenerator(abc.ABC):
    """A per-interval baseline with order/priority scheduling."""

    #: Overridden by subclasses ("hillclimbing", "learnedsqlgen").
    base_name: str = "baseline"

    def __init__(
        self,
        profiler: TemplateProfiler,
        pool: list[TemplateProfile],
        heuristic: str = "priority",
        seed: int = 0,
    ):
        if heuristic not in ("order", "priority"):
            raise ValueError(f"unknown heuristic {heuristic!r}")
        self.profiler = profiler
        self.pool = [p for p in pool if p.is_usable and len(p.space) > 0]
        self.heuristic = heuristic
        self._rng = np.random.default_rng(seed)

    @property
    def name(self) -> str:
        return f"{self.base_name}-{self.heuristic}"

    def generate(
        self,
        distribution: CostDistribution,
        per_interval_budget_seconds: float = 5.0,
    ) -> GenerationRun:
        """Run one iteration per interval under the chosen heuristic."""
        tracker = DistributionTracker(distribution)
        run = GenerationRun(method=self.name, queries=[], tracker=tracker)
        started = time.perf_counter()
        run.trace.append((0.0, tracker.wasserstein))
        pending = list(range(distribution.num_intervals))
        for _ in range(distribution.num_intervals):
            deficits = tracker.deficits
            target = self._pick_interval(pending, deficits)
            if target is None:
                break
            pending.remove(target)
            interval_deadline = time.perf_counter() + per_interval_budget_seconds
            self._fill_interval(target, tracker, run, interval_deadline)
            run.trace.append(
                (time.perf_counter() - started, tracker.wasserstein)
            )
        run.elapsed_seconds = time.perf_counter() - started
        return run

    def _pick_interval(
        self, pending: list[int], deficits: np.ndarray
    ) -> int | None:
        open_pending = [j for j in pending if deficits[j] > 0]
        if not open_pending:
            return pending[0] if pending else None
        if self.heuristic == "order":
            return min(open_pending)
        return max(open_pending, key=lambda j: deficits[j])

    @abc.abstractmethod
    def _fill_interval(
        self,
        target: int,
        tracker: DistributionTracker,
        run: GenerationRun,
        deadline: float,
    ) -> None:
        """Generate queries for interval *target* until the deadline."""

    # -- shared helpers ------------------------------------------------------------

    def _keep_if_useful(
        self,
        profile: TemplateProfile,
        values: dict,
        cost: float,
        tracker: DistributionTracker,
        run: GenerationRun,
        seen: set,
    ) -> bool:
        landed = tracker.target.interval_of(cost)
        if landed is None or tracker.deficits[landed] <= 0:
            return False
        key = (
            profile.template.template_id,
            tuple(sorted((k, str(v)) for k, v in values.items())),
        )
        if key in seen:
            return False
        seen.add(key)
        tracker.add(cost)
        run.queries.append(
            GeneratedQuery(
                sql=profile.template.instantiate(values),
                cost=cost,
                template_id=profile.template.template_id,
                predicate_values=dict(values),
                cost_type=tracker.target.cost_type,
            )
        )
        return True
