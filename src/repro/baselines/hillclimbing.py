"""The HillClimbing baseline (Bruno, Chaudhuri, Thomas — TKDE 2006).

Given a pool of pre-built SQL templates, the method greedily tweaks
predicate values: starting from a random configuration, each step probes a
±delta move along every numeric dimension (in the unit cube), takes the move
that most reduces the distance to the target cost interval, and halves the
step size when no move improves.  Restarts from fresh random configurations
keep it going until the per-interval time budget runs out.

The baseline's weakness — total dependence on input template quality and a
purely local search — is exactly what the paper's comparison highlights.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import TemplateProfile
from repro.core.predicate_search import interval_objective
from repro.workload import DistributionTracker
from .base import BaselineGenerator, GenerationRun


class HillClimbing(BaselineGenerator):
    base_name = "hillclimbing"

    #: Initial step size in the unit cube and its halving floor.
    initial_step = 0.25
    min_step = 0.01
    #: Extra local samples emitted around a configuration that reached the
    #: target interval (fills the interval, not just touches it).
    harvest_samples = 8

    def _fill_interval(
        self,
        target: int,
        tracker: DistributionTracker,
        run: GenerationRun,
        deadline: float,
    ) -> None:
        if not self.pool:
            return
        low, high = tracker.target.interval_bounds(target)
        seen: set = set()
        while time.perf_counter() < deadline:
            if tracker.deficits[target] <= 0:
                break
            profile = self.pool[int(self._rng.integers(len(self.pool)))]
            self._climb(
                profile, (low, high), target, tracker, run, seen, deadline
            )

    # -- one restart of the greedy climb ------------------------------------------

    def _climb(
        self,
        profile: TemplateProfile,
        interval: tuple[float, float],
        target: int,
        tracker: DistributionTracker,
        run: GenerationRun,
        seen: set,
        deadline: float,
    ) -> None:
        low, high = interval
        space = profile.space
        point = self._rng.random(len(space))
        cost = self._evaluate(profile, point, tracker, run, seen)
        if cost is None:
            return
        best = interval_objective(cost, low, high)
        step = self.initial_step
        while step >= self.min_step and time.perf_counter() < deadline:
            if best == 0.0:
                self._harvest(
                    profile, point, target, tracker, run, seen, deadline, interval
                )
                return
            improved = False
            for dim in range(len(space)):
                for direction in (+1.0, -1.0):
                    candidate = point.copy()
                    candidate[dim] = float(
                        np.clip(candidate[dim] + direction * step, 0.0, 1.0)
                    )
                    cost = self._evaluate(profile, candidate, tracker, run, seen)
                    if cost is None:
                        continue
                    objective = interval_objective(cost, low, high)
                    if objective < best:
                        best = objective
                        point = candidate
                        improved = True
                if time.perf_counter() >= deadline:
                    return
            if not improved:
                step /= 2.0

    def _harvest(
        self,
        profile: TemplateProfile,
        point: np.ndarray,
        target: int,
        tracker: DistributionTracker,
        run: GenerationRun,
        seen: set,
        deadline: float,
        interval: tuple[float, float],
    ) -> None:
        """Sample near a successful configuration to fill the interval."""
        for _ in range(self.harvest_samples):
            if tracker.deficits[target] <= 0 or time.perf_counter() >= deadline:
                return
            jitter = self._rng.normal(0.0, 0.04, len(point))
            candidate = np.clip(point + jitter, 0.0, 1.0)
            self._evaluate(profile, candidate, tracker, run, seen)

    def _evaluate(
        self,
        profile: TemplateProfile,
        point: np.ndarray,
        tracker: DistributionTracker,
        run: GenerationRun,
        seen: set,
    ) -> float | None:
        values = profile.space.from_unit(point)
        cost = self.profiler.evaluate(profile.template, values)
        run.evaluations += 1
        if cost is None:
            return None
        self._keep_if_useful(profile, values, cost, tracker, run, seen)
        return cost
