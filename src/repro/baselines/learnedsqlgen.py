"""The LearnedSQLGen baseline (Zhang et al., SIGMOD 2022), CPU edition.

LearnedSQLGen frames constraint-aware SQL generation as reinforcement
learning: an agent assembles a query step by step and is rewarded when the
result's cost lands in the target range.  The original uses a GPU-trained
policy network; this reproduction keeps the algorithmic skeleton — episodic
generation, epsilon-greedy exploration, temporal-difference value updates —
with a tabular Q function over (template, placeholder, value-bucket)
decisions, which preserves the baseline's defining behaviour: it needs a
large number of sampled episodes before the cost model becomes useful.
"""

from __future__ import annotations

import time
from collections import defaultdict

import numpy as np

from repro.core import TemplateProfile
from repro.core.predicate_search import interval_objective
from repro.workload import DistributionTracker
from .base import BaselineGenerator, GenerationRun

_NUM_BUCKETS = 10


class LearnedSQLGen(BaselineGenerator):
    base_name = "learnedsqlgen"

    epsilon = 0.30
    learning_rate = 0.25
    epsilon_decay = 0.999

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # Q[(interval, "template")][template_index] and
        # Q[(interval, template_id, placeholder)][bucket]
        self._q: dict[tuple, np.ndarray] = {}

    def _q_row(self, key: tuple, size: int) -> np.ndarray:
        if key not in self._q:
            self._q[key] = np.zeros(size)
        return self._q[key]

    def _fill_interval(
        self,
        target: int,
        tracker: DistributionTracker,
        run: GenerationRun,
        deadline: float,
    ) -> None:
        if not self.pool:
            return
        low, high = tracker.target.interval_bounds(target)
        seen: set = set()
        epsilon = self.epsilon
        while time.perf_counter() < deadline:
            if tracker.deficits[target] <= 0:
                break
            self._episode(target, (low, high), tracker, run, seen, epsilon)
            epsilon *= self.epsilon_decay

    def _episode(
        self,
        target: int,
        interval: tuple[float, float],
        tracker: DistributionTracker,
        run: GenerationRun,
        seen: set,
        epsilon: float,
    ) -> None:
        low, high = interval
        # Action 1: pick a template.
        template_q = self._q_row((target, "template"), len(self.pool))
        if self._rng.random() < epsilon:
            template_index = int(self._rng.integers(len(self.pool)))
        else:
            template_index = int(np.argmax(template_q))
        profile = self.pool[template_index]
        space = profile.space

        # Actions 2..n: pick a value bucket per placeholder.
        buckets: list[tuple[tuple, int]] = []
        point = np.empty(len(space))
        for dim, parameter in enumerate(space.parameters):
            key = (target, profile.template.template_id, parameter.name)
            row = self._q_row(key, _NUM_BUCKETS)
            if self._rng.random() < epsilon:
                bucket = int(self._rng.integers(_NUM_BUCKETS))
            else:
                bucket = int(np.argmax(row))
            buckets.append((key, bucket))
            jitter = self._rng.random() / _NUM_BUCKETS
            point[dim] = bucket / _NUM_BUCKETS + jitter

        values = space.from_unit(point)
        cost = self.profiler.evaluate(profile.template, values)
        run.evaluations += 1
        if cost is None:
            reward = -1.0
        else:
            objective = interval_objective(cost, low, high)
            reward = 1.0 if objective == 0.0 else -objective
            self._keep_if_useful(profile, values, cost, tracker, run, seen)

        # TD(0) update of every decision taken this episode.
        template_q[template_index] += self.learning_rate * (
            reward - template_q[template_index]
        )
        for key, bucket in buckets:
            row = self._q[key]
            row[bucket] += self.learning_rate * (reward - row[bucket])
