"""Template pool construction for the baselines.

HillClimbing requires manually crafted templates as input; the paper
prepares ~16000 of them "by randomly adding or removing predicates in the
SQL templates provided by the benchmarks".  This module reproduces that
procedure: starting from the spec-derived seed templates, it perturbs
predicates (add/remove/re-target) to build a pool of the requested size,
then profiles every member so the baselines know each template's search
space.
"""

from __future__ import annotations

import numpy as np

from repro.core import BarberConfig, TemplateProfile, TemplateProfiler
from repro.llm import FaultModel, SimulatedLLM
from repro.llm.refine import (  # the same structural edit the LLM uses
    _add_placeholder_predicate,
)
from repro.llm.synthesizer import SchemaModel
from repro.sqldb import Database, SqlError
from repro.sqldb.parser import parse_select
from repro.sqldb.sql_render import render_statement
from repro.workload import SqlTemplate, TemplateSpec


def perturb_template_sql(
    sql: str, schema: dict, rng: np.random.Generator
) -> str | None:
    """Randomly add or remove one predicate, as the paper's pool builder."""
    model = SchemaModel(schema)
    if rng.random() < 0.5:
        return _add_placeholder_predicate(sql, model, (0.0, 1.0), rng)
    return _remove_random_predicate(sql, rng)


def _remove_random_predicate(sql: str, rng: np.random.Generator) -> str | None:
    from repro.sqldb.planner import conjoin, split_conjuncts

    statement = parse_select(sql)
    if statement.where is None:
        return None
    conjuncts = split_conjuncts(statement.where)
    if len(conjuncts) <= 1:
        statement.where = None
    else:
        drop = int(rng.integers(len(conjuncts)))
        statement.where = conjoin(
            [c for i, c in enumerate(conjuncts) if i != drop]
        )
    return render_statement(statement)


def build_template_pool(
    db: Database,
    seed_specs: list[TemplateSpec],
    pool_size: int,
    profiler: TemplateProfiler,
    schema: dict,
    seed: int = 0,
    profile_samples: int = 6,
) -> list[TemplateProfile]:
    """Seed templates from the specs, then perturb up to *pool_size*."""
    from repro.core import CustomizedTemplateGenerator

    rng = np.random.default_rng(seed)
    generator = CustomizedTemplateGenerator(
        db,
        SimulatedLLM(seed=seed, fault_model=FaultModel.perfect()),
        BarberConfig(seed=seed),
    )
    seeds, _ = generator.generate_many(seed_specs)
    pool_sqls: list[str] = [t.sql for t in seeds]
    seen = set(pool_sqls)
    attempts = 0
    while len(pool_sqls) < pool_size and attempts < pool_size * 20:
        attempts += 1
        base = pool_sqls[int(rng.integers(len(pool_sqls)))]
        try:
            mutated = perturb_template_sql(base, schema, rng)
        except SqlError:
            continue
        if mutated and mutated not in seen:
            seen.add(mutated)
            pool_sqls.append(mutated)
    profiles: list[TemplateProfile] = []
    for index, sql in enumerate(pool_sqls[:pool_size]):
        template = SqlTemplate(template_id=f"pool_{index:05d}", sql=sql)
        profile = profiler.profile(template, num_samples=profile_samples)
        if profile.is_usable:
            profiles.append(profile)
    return profiles
