"""Experiment harness: benchmarks, runner, ablations, reporting."""

from .ablation import (
    ABLATION_VARIANTS,
    ConvergenceResult,
    RewriteAnalysis,
    convergence_ablation,
    rewrite_analysis,
    variant_config,
)
from .benchmarks import (
    TABLE1_BENCHMARKS,
    Benchmark,
    benchmark_by_name,
    cardinality_benchmarks,
    cost_benchmarks,
)
from .coststudy import CostStudyRow, cost_study
from .reporting import (
    distance_trace_text,
    format_table,
    histogram_text,
    method_comparison_table,
    speedup_summary,
    table1_overview,
)
from .runner import METHODS, ExperimentRunner, MethodRun
from .scalability import scale_intervals, scale_queries

__all__ = [
    "ABLATION_VARIANTS",
    "Benchmark",
    "ConvergenceResult",
    "CostStudyRow",
    "ExperimentRunner",
    "METHODS",
    "MethodRun",
    "RewriteAnalysis",
    "TABLE1_BENCHMARKS",
    "benchmark_by_name",
    "cardinality_benchmarks",
    "convergence_ablation",
    "cost_benchmarks",
    "cost_study",
    "distance_trace_text",
    "format_table",
    "histogram_text",
    "method_comparison_table",
    "rewrite_analysis",
    "scale_intervals",
    "scale_queries",
    "speedup_summary",
    "table1_overview",
    "variant_config",
]
