"""Ablation experiments (the paper's Figure 8).

* Figure 8a — rewrite analysis: how many templates become spec-correct and
  syntax-correct after each rewrite attempt of Algorithm 1.
* Figure 8b — convergence: full SQLBarber vs. "No-Refine-Prune" (Algorithm 2
  disabled) vs. "Naive-Search" (random search instead of BO).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import BarberConfig, CustomizedTemplateGenerator, SQLBarber
from repro.datasets import build_database, redset_spec_workload
from repro.llm import SimulatedLLM
from repro.workload import CostDistribution


@dataclass
class RewriteAnalysis:
    """Figure 8a data: cumulative correct templates per rewrite attempt."""

    num_templates: int
    attempts: int
    specification: list[int] = field(default_factory=list)
    syntax: list[int] = field(default_factory=list)
    alignment_accuracy: float = 0.0

    def rows(self) -> list[dict]:
        return [
            {
                "attempt": i,
                "spec_correct": self.specification[i],
                "syntax_correct": self.syntax[i],
                "total": self.num_templates,
            }
            for i in range(self.attempts)
        ]


def rewrite_analysis(
    db_name: str = "imdb",
    num_specs: int = 24,
    seed: int = 0,
    max_rewrite_iterations: int = 5,
) -> RewriteAnalysis:
    """Run Algorithm 1 over the 24-template spec workload and record the
    cumulative correctness curves."""
    db = build_database(db_name)
    config = BarberConfig(seed=seed, max_rewrite_iterations=max_rewrite_iterations)
    generator = CustomizedTemplateGenerator(
        db, SimulatedLLM(seed=seed), config
    )
    specs = redset_spec_workload(num_specs=num_specs, seed=seed + 2024)
    _, report = generator.generate_many(specs)
    curves = report.cumulative_correct(max_rewrite_iterations)
    return RewriteAnalysis(
        num_templates=num_specs,
        attempts=max_rewrite_iterations,
        specification=curves["specification"],
        syntax=curves["syntax"],
        alignment_accuracy=report.alignment_accuracy,
    )


ABLATION_VARIANTS = ("sqlbarber", "no-refine-prune", "naive-search")


def variant_config(variant: str, seed: int = 0) -> BarberConfig:
    """The BarberConfig for one Figure-8b variant."""
    base = BarberConfig(seed=seed)
    if variant == "sqlbarber":
        return base
    if variant == "no-refine-prune":
        return base.with_overrides(enable_refinement=False)
    if variant == "naive-search":
        return base.with_overrides(search_strategy="random")
    raise KeyError(f"unknown ablation variant {variant!r}")


@dataclass
class ConvergenceResult:
    variant: str
    elapsed_seconds: float
    final_distance: float
    complete: bool
    trace: list[tuple[float, float]]


def convergence_ablation(
    db_name: str,
    distribution: CostDistribution,
    variants: tuple[str, ...] = ABLATION_VARIANTS,
    seed: int = 0,
    time_budget_seconds: float | None = 60.0,
) -> list[ConvergenceResult]:
    """Figure 8b: distance-over-time for each SQLBarber variant."""
    from repro.datasets import redset_spec_workload

    results = []
    specs = redset_spec_workload(num_specs=8, seed=seed + 2024)
    for variant in variants:
        db = build_database(db_name)
        barber = SQLBarber(db, config=variant_config(variant, seed))
        outcome = barber.generate_workload(
            specs, distribution, time_budget_seconds=time_budget_seconds
        )
        results.append(
            ConvergenceResult(
                variant=variant,
                elapsed_seconds=outcome.elapsed_seconds,
                final_distance=outcome.final_distance,
                complete=outcome.complete,
                trace=outcome.distance_trace,
            )
        )
    return results
