"""The ten benchmarks of the paper's Table 1.

Two synthetic shapes (uniform, normal) and eight real-world shapes derived
from Snowflake (Snowset) and Amazon Redshift (Redset) fleet statistics.
Medium benchmarks ask for 1000 queries over 10 intervals; Hard benchmarks
for 2000 queries over 20 intervals, all over the cost range [0, 10k].

``num_queries`` can be scaled down uniformly (``scaled(factor)``) so the
full suite runs on a laptop; the shape of every distribution is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets import fleets
from repro.workload import CostDistribution

COST_RANGE = fleets.COST_RANGE


@dataclass(frozen=True)
class Benchmark:
    """One row of Table 1."""

    name: str
    source: str  # 'Synthetic' | 'Snowflake' | 'Redshift'
    cost_type: str  # 'cardinality' | 'execution_time' | 'both'
    num_queries: int
    num_intervals: int
    difficulty: str  # 'medium' | 'hard'
    shape: str  # 'uniform' | 'normal' | fleet model name

    def distribution(
        self,
        cost_type: str | None = None,
        num_queries: int | None = None,
        num_intervals: int | None = None,
    ) -> CostDistribution:
        """Materialize the target distribution (optionally rescaled)."""
        resolved_type = cost_type or (
            "plan_cost" if self.cost_type == "both" else self.cost_type
        )
        queries = num_queries or self.num_queries
        intervals = num_intervals or self.num_intervals
        if self.shape == "uniform":
            return CostDistribution.uniform(
                *COST_RANGE, queries, intervals,
                name=self.name, cost_type=resolved_type,
            )
        if self.shape == "normal":
            return CostDistribution.normal(
                *COST_RANGE, queries, intervals,
                name=self.name, cost_type=resolved_type,
            )
        return fleets.fleet_distribution(
            self.shape, queries, intervals, resolved_type, display_name=self.name
        )

    def scaled(self, factor: float) -> "Benchmark":
        from dataclasses import replace

        return replace(
            self, num_queries=max(int(self.num_queries * factor), self.num_intervals)
        )


TABLE1_BENCHMARKS: tuple[Benchmark, ...] = (
    Benchmark("uniform", "Synthetic", "both", 1000, 10, "medium", "uniform"),
    Benchmark("normal", "Synthetic", "both", 1000, 10, "medium", "normal"),
    Benchmark(
        "Snowset_Card_1_Medium", "Snowflake", "cardinality",
        1000, 10, "medium", "snowset_card_1",
    ),
    Benchmark(
        "Snowset_Card_2_Medium", "Snowflake", "cardinality",
        1000, 10, "medium", "snowset_card_2",
    ),
    Benchmark(
        "Snowset_Card_1_Hard", "Snowflake", "cardinality",
        2000, 20, "hard", "snowset_card_1",
    ),
    Benchmark(
        "Snowset_Card_2_Hard", "Snowflake", "cardinality",
        2000, 20, "hard", "snowset_card_2",
    ),
    Benchmark(
        "Snowset_Cost_Medium", "Snowflake", "execution_time",
        1000, 10, "medium", "snowset_cost",
    ),
    Benchmark(
        "Snowset_Cost_Hard", "Snowflake", "execution_time",
        2000, 20, "hard", "snowset_cost",
    ),
    Benchmark(
        "Redset_Cost_Medium", "Redshift", "execution_time",
        1000, 10, "medium", "redset_cost",
    ),
    Benchmark(
        "Redset_Cost_Hard", "Redshift", "execution_time",
        2000, 20, "hard", "redset_cost",
    ),
)


def benchmark_by_name(name: str) -> Benchmark:
    for benchmark in TABLE1_BENCHMARKS:
        if benchmark.name.lower() == name.lower():
            return benchmark
    raise KeyError(f"unknown benchmark {name!r}")


def cardinality_benchmarks() -> list[Benchmark]:
    """The six Figure-5 benchmarks (cardinality targets)."""
    return [
        b
        for b in TABLE1_BENCHMARKS
        if b.cost_type in ("cardinality", "both")
    ]


def cost_benchmarks() -> list[Benchmark]:
    """The six Figure-6 benchmarks (execution plan cost targets)."""
    return [
        b
        for b in TABLE1_BENCHMARKS
        if b.cost_type in ("execution_time", "both")
    ]
