"""The cost study (the paper's Table 2): tokens, templates, and dollars.

Runs SQLBarber end-to-end on IMDB for a set of benchmarks and reports the
total LLM token usage, the number of SQL templates produced (seed +
refined), and the monetary cost at o3-mini pricing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import BarberConfig, SQLBarber
from repro.datasets import build_database, redset_spec_workload
from repro.llm import O3_MINI_PRICING, PricingModel, SimulatedLLM
from .benchmarks import Benchmark


@dataclass
class CostStudyRow:
    benchmark: str
    tokens_thousands: float
    num_templates: int
    cost_usd: float
    num_queries: int

    def as_dict(self) -> dict:
        return {
            "Benchmark": self.benchmark,
            "Tokens (K)": round(self.tokens_thousands, 1),
            "#SQL Templates": self.num_templates,
            "Cost (USD)": round(self.cost_usd, 4),
            "#Queries": self.num_queries,
        }


def cost_study(
    benchmarks: list[Benchmark],
    db_name: str = "imdb",
    num_queries: int | None = None,
    num_specs: int = 12,
    seed: int = 0,
    pricing: PricingModel = O3_MINI_PRICING,
    time_budget_seconds: float | None = 90.0,
) -> list[CostStudyRow]:
    """Table 2: run SQLBarber per benchmark with a fresh usage meter."""
    rows: list[CostStudyRow] = []
    specs = redset_spec_workload(num_specs=num_specs, seed=seed + 2024)
    for index, benchmark in enumerate(benchmarks):
        db = build_database(db_name)
        llm = SimulatedLLM(seed=seed + index)  # fresh meter per benchmark
        barber = SQLBarber(db, llm=llm, config=BarberConfig(seed=seed + index))
        distribution = benchmark.distribution(num_queries=num_queries)
        result = barber.generate_workload(
            specs, distribution, time_budget_seconds=time_budget_seconds
        )
        rows.append(
            CostStudyRow(
                benchmark=benchmark.name,
                tokens_thousands=llm.usage.total_tokens / 1000.0,
                num_templates=result.num_templates,
                cost_usd=llm.usage.cost_usd(pricing),
                num_queries=len(result.workload),
            )
        )
    return rows
