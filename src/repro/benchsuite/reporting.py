"""Text rendering of experiment results in the paper's table/figure shapes."""

from __future__ import annotations

from typing import Sequence

from repro.workload import CostDistribution
from .benchmarks import TABLE1_BENCHMARKS, Benchmark
from .runner import MethodRun


def format_table(rows: list[dict], title: str | None = None) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return "(no results)"
    headers = list(rows[0].keys())
    widths = {
        h: max(len(str(h)), *(len(str(r.get(h, ""))) for r in rows))
        for h in headers
    }
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(f"{h:<{widths[h]}}" for h in headers)
    lines.append(header_line)
    lines.append("-+-".join("-" * widths[h] for h in headers))
    for row in rows:
        lines.append(
            " | ".join(f"{str(row.get(h, '')):<{widths[h]}}" for h in headers)
        )
    return "\n".join(lines)


def table1_overview() -> str:
    """The paper's Table 1: the benchmark inventory."""
    rows = [
        {
            "Source": b.source,
            "Distribution": b.name,
            "Cost Type": b.cost_type,
            "#Queries": b.num_queries,
            "#Intervals": b.num_intervals,
        }
        for b in TABLE1_BENCHMARKS
    ]
    return format_table(rows, title="Table 1: Overview of Benchmarks")


def method_comparison_table(runs: Sequence[MethodRun], title: str) -> str:
    """One Figure-5/6 panel as a table: E2E time + final distance."""
    return format_table([run.summary_row() for run in runs], title=title)


def distance_trace_text(run: MethodRun, points: int = 8) -> str:
    """A compact textual sparkline of distance over time."""
    if not run.trace:
        return f"{run.method}: (no trace)"
    stride = max(len(run.trace) // points, 1)
    sampled = run.trace[::stride]
    if run.trace[-1] not in sampled:
        sampled.append(run.trace[-1])
    series = " -> ".join(f"{d:.0f}@{t:.1f}s" for t, d in sampled)
    return f"{run.method}: {series}"


def histogram_text(distribution: CostDistribution, width: int = 40) -> str:
    """The target-distribution subplot as an ASCII histogram."""
    peak = max(distribution.target_counts) or 1
    lines = [f"Target distribution '{distribution.name}' "
             f"({distribution.total_queries} queries, "
             f"{distribution.num_intervals} intervals):"]
    for index, count in enumerate(distribution.target_counts):
        low, high = distribution.interval_bounds(index)
        bar = "#" * max(int(count / peak * width), 1 if count else 0)
        lines.append(f"  [{low:>8.0f},{high:>8.0f}) {count:>5d} {bar}")
    return "\n".join(lines)


def speedup_summary(runs: Sequence[MethodRun]) -> str:
    """The paper's headline: SQLBarber's speedup over each baseline."""
    barber = next((r for r in runs if r.method == "sqlbarber"), None)
    if barber is None:
        return "(no sqlbarber run)"
    lines = []
    for run in runs:
        if run.method == "sqlbarber":
            continue
        speedup = run.elapsed_seconds / max(barber.elapsed_seconds, 1e-9)
        lines.append(
            f"  sqlbarber vs {run.method}: {speedup:.1f}x faster, "
            f"distance {barber.final_distance:.1f} vs {run.final_distance:.1f}"
        )
    return "\n".join(lines) if lines else "(no baselines)"
