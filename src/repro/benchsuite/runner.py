"""Experiment runner: one API for every method on every benchmark.

Handles the shared setup (database construction, spec workload, baseline
template pools) with caching, runs a method, and returns a uniform
:class:`MethodRun` record with the two metrics every figure reports —
end-to-end generation time and final Wasserstein distance — plus the full
distance-over-time trace.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines import HillClimbing, LearnedSQLGen, build_template_pool
from repro.core import BarberConfig, SQLBarber, TemplateProfiler, schema_payload
from repro.datasets import build_database, redset_spec_workload
from repro.workload import CostDistribution, TemplateSpec
from .benchmarks import Benchmark

METHODS = (
    "hillclimbing-order",
    "hillclimbing-priority",
    "learnedsqlgen-order",
    "learnedsqlgen-priority",
    "sqlbarber",
)

DEFAULT_POOL_SIZE = 80
DEFAULT_NUM_SPECS = 12


@dataclass
class MethodRun:
    """One (method, benchmark, database) experiment outcome."""

    method: str
    benchmark: str
    database: str
    cost_type: str
    elapsed_seconds: float
    final_distance: float
    num_queries: int
    target_queries: int
    complete: bool
    trace: list[tuple[float, float]] = field(default_factory=list)
    extra: dict = field(default_factory=dict)

    def summary_row(self) -> dict:
        return {
            "method": self.method,
            "benchmark": self.benchmark,
            "db": self.database,
            "time_s": round(self.elapsed_seconds, 2),
            "distance": round(self.final_distance, 2),
            "queries": f"{self.num_queries}/{self.target_queries}",
            "complete": self.complete,
        }


class ExperimentRunner:
    """Runs methods against benchmarks with cached setup artifacts."""

    def __init__(
        self,
        seed: int = 0,
        num_specs: int = DEFAULT_NUM_SPECS,
        pool_size: int = DEFAULT_POOL_SIZE,
    ):
        self.seed = seed
        self.num_specs = num_specs
        self.pool_size = pool_size
        self._pools: dict[tuple, list] = {}
        self._specs: list[TemplateSpec] | None = None

    # -- shared setup -----------------------------------------------------------

    def specs(self) -> list[TemplateSpec]:
        if self._specs is None:
            self._specs = redset_spec_workload(
                num_specs=self.num_specs, seed=self.seed + 2024
            )
        return self._specs

    def pool(self, db_name: str, cost_type: str):
        key = (db_name, cost_type, self.pool_size)
        if key not in self._pools:
            db = build_database(db_name)
            profiler = TemplateProfiler(
                db, BarberConfig(seed=self.seed), cost_metric=cost_type
            )
            self._pools[key] = build_template_pool(
                db,
                self.specs(),
                pool_size=self.pool_size,
                profiler=profiler,
                schema=schema_payload(db),
                seed=self.seed,
            )
        return self._pools[key]

    # -- method execution ------------------------------------------------------------

    def run(
        self,
        method: str,
        db_name: str,
        distribution: CostDistribution,
        benchmark_name: str = "custom",
        time_budget_seconds: float | None = None,
        per_interval_budget_seconds: float = 2.0,
        config: BarberConfig | None = None,
        sinks: list | None = None,
        workers: int | None = None,
        explain_cache: bool = True,
    ) -> MethodRun:
        if method == "sqlbarber":
            return self.run_sqlbarber(
                db_name,
                distribution,
                benchmark_name,
                time_budget_seconds=time_budget_seconds,
                config=config,
                sinks=sinks,
                workers=workers,
                explain_cache=explain_cache,
            )
        return self.run_baseline(
            method,
            db_name,
            distribution,
            benchmark_name,
            per_interval_budget_seconds=per_interval_budget_seconds,
        )

    def run_sqlbarber(
        self,
        db_name: str,
        distribution: CostDistribution,
        benchmark_name: str = "custom",
        time_budget_seconds: float | None = None,
        config: BarberConfig | None = None,
        sinks: list | None = None,
        workers: int | None = None,
        explain_cache: bool = True,
    ) -> MethodRun:
        db = build_database(db_name)
        if not explain_cache:
            db.set_explain_cache(False)
        config = config or BarberConfig(seed=self.seed)
        if workers is not None:
            config = config.with_overrides(workers=workers)
        barber = SQLBarber(db, config=config, sinks=sinks)
        result = barber.generate_workload(
            self.specs(), distribution, time_budget_seconds=time_budget_seconds
        )
        return MethodRun(
            method="sqlbarber",
            benchmark=benchmark_name,
            database=db_name,
            cost_type=distribution.cost_type,
            elapsed_seconds=result.elapsed_seconds,
            final_distance=result.final_distance,
            num_queries=len(result.workload),
            target_queries=distribution.total_queries,
            complete=result.complete,
            trace=result.distance_trace,
            extra={
                "num_templates": result.num_templates,
                "llm_usage": result.llm_usage,
                "alignment_accuracy": result.generation_report.alignment_accuracy,
                "stage_seconds": dict(result.stage_seconds),
                "explain_cache": db.explain_cache.stats(),
            },
        )

    def run_baseline(
        self,
        method: str,
        db_name: str,
        distribution: CostDistribution,
        benchmark_name: str = "custom",
        per_interval_budget_seconds: float = 2.0,
    ) -> MethodRun:
        base, _, heuristic = method.partition("-")
        classes = {"hillclimbing": HillClimbing, "learnedsqlgen": LearnedSQLGen}
        if base not in classes or heuristic not in ("order", "priority"):
            raise KeyError(f"unknown baseline method {method!r}")
        db = build_database(db_name)
        profiler = TemplateProfiler(
            db, BarberConfig(seed=self.seed), cost_metric=distribution.cost_type
        )
        pool_started = time.perf_counter()
        pool = self.pool(db_name, distribution.cost_type)
        pool_seconds = time.perf_counter() - pool_started
        generator = classes[base](
            profiler, pool, heuristic=heuristic, seed=self.seed
        )
        run = generator.generate(
            distribution, per_interval_budget_seconds=per_interval_budget_seconds
        )
        return MethodRun(
            method=method,
            benchmark=benchmark_name,
            database=db_name,
            cost_type=distribution.cost_type,
            elapsed_seconds=run.elapsed_seconds,
            final_distance=run.final_distance,
            num_queries=len(run.queries),
            target_queries=distribution.total_queries,
            complete=run.complete,
            trace=run.trace,
            extra={"evaluations": run.evaluations, "pool_setup_s": pool_seconds},
        )

    def compare_all(
        self,
        benchmark: Benchmark,
        db_name: str,
        cost_type: str | None = None,
        num_queries: int | None = None,
        time_budget_seconds: float | None = None,
        per_interval_budget_seconds: float = 2.0,
        methods: tuple[str, ...] = METHODS,
    ) -> list[MethodRun]:
        """Run every method on one benchmark (one Figure-5/6 panel)."""
        distribution = benchmark.distribution(
            cost_type=cost_type, num_queries=num_queries
        )
        return [
            self.run(
                method,
                db_name,
                distribution,
                benchmark_name=benchmark.name,
                time_budget_seconds=time_budget_seconds,
                per_interval_budget_seconds=per_interval_budget_seconds,
            )
            for method in methods
        ]
