"""Scalability experiments (the paper's Figure 7).

Row 1: vary the number of queries (paper: 50 / 500 / 5000) at a fixed
interval count.  Row 2: vary the number of intervals (5..25) at a fixed
query count.  Both use the Redset_Cost_Hard shape on IMDB.
"""

from __future__ import annotations

from .benchmarks import benchmark_by_name
from .runner import ExperimentRunner, MethodRun

SCALABILITY_BENCHMARK = "Redset_Cost_Hard"
SCALABILITY_DB = "imdb"
DEFAULT_METHODS = ("hillclimbing-priority", "learnedsqlgen-priority", "sqlbarber")


def scale_queries(
    runner: ExperimentRunner,
    query_counts: tuple[int, ...],
    db_name: str = SCALABILITY_DB,
    methods: tuple[str, ...] = DEFAULT_METHODS,
    num_intervals: int = 10,
    time_budget_seconds: float | None = 60.0,
    per_interval_budget_seconds: float = 1.0,
) -> list[MethodRun]:
    """Figure 7a/7b: time and final distance vs. #queries."""
    benchmark = benchmark_by_name(SCALABILITY_BENCHMARK)
    runs: list[MethodRun] = []
    for count in query_counts:
        distribution = benchmark.distribution(
            num_queries=count, num_intervals=num_intervals
        )
        for method in methods:
            run = runner.run(
                method,
                db_name,
                distribution,
                benchmark_name=f"{benchmark.name}[N={count}]",
                time_budget_seconds=time_budget_seconds,
                per_interval_budget_seconds=per_interval_budget_seconds,
            )
            run.extra["num_queries_requested"] = count
            runs.append(run)
    return runs


def scale_intervals(
    runner: ExperimentRunner,
    interval_counts: tuple[int, ...],
    db_name: str = SCALABILITY_DB,
    methods: tuple[str, ...] = DEFAULT_METHODS,
    num_queries: int = 1000,
    time_budget_seconds: float | None = 60.0,
    per_interval_budget_seconds: float = 1.0,
) -> list[MethodRun]:
    """Figure 7c/7d: time and final distance vs. #intervals."""
    benchmark = benchmark_by_name(SCALABILITY_BENCHMARK)
    runs: list[MethodRun] = []
    for intervals in interval_counts:
        distribution = benchmark.distribution(
            num_queries=num_queries, num_intervals=intervals
        )
        for method in methods:
            run = runner.run(
                method,
                db_name,
                distribution,
                benchmark_name=f"{benchmark.name}[I={intervals}]",
                time_budget_seconds=time_budget_seconds,
                per_interval_budget_seconds=per_interval_budget_seconds,
            )
            run.extra["num_intervals_requested"] = intervals
            runs.append(run)
    return runs
