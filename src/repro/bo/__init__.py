"""Bayesian optimization substrate (SMAC3 stand-in): spaces, LHS, RF, EI."""

from .acquisition import expected_improvement, upper_confidence_bound
from .forest import RandomForestRegressor, RegressionTree
from .lhs import latin_hypercube, lhs_configs
from .optimizer import (
    BayesianOptimizer,
    Observation,
    OptimizationResult,
    random_search,
)
from .space import (
    CategoricalParameter,
    Config,
    ConfigSpace,
    FloatParameter,
    IntegerParameter,
    Parameter,
)

__all__ = [
    "BayesianOptimizer",
    "CategoricalParameter",
    "Config",
    "ConfigSpace",
    "FloatParameter",
    "IntegerParameter",
    "Observation",
    "OptimizationResult",
    "Parameter",
    "RandomForestRegressor",
    "RegressionTree",
    "expected_improvement",
    "latin_hypercube",
    "lhs_configs",
    "random_search",
    "upper_confidence_bound",
]
