"""Acquisition functions for Bayesian optimization (minimization)."""

from __future__ import annotations

import numpy as np
from scipy import stats


def expected_improvement(
    mean: np.ndarray,
    std: np.ndarray,
    best: float,
    xi: float = 0.01,
) -> np.ndarray:
    """EI for minimization: how much each candidate is expected to improve
    on *best*.  Candidates with zero predictive uncertainty fall back to the
    plain improvement of their mean (greedy)."""
    mean = np.asarray(mean, dtype=np.float64)
    std = np.asarray(std, dtype=np.float64)
    improvement = best - mean - xi
    ei = np.where(improvement > 0, improvement, 0.0)
    positive = std > 1e-12
    if positive.any():
        z = improvement[positive] / std[positive]
        ei = ei.copy()
        ei[positive] = improvement[positive] * stats.norm.cdf(z) + std[
            positive
        ] * stats.norm.pdf(z)
    return ei


def upper_confidence_bound(
    mean: np.ndarray, std: np.ndarray, beta: float = 2.0
) -> np.ndarray:
    """Negated LCB so that higher is better (consistent with EI ranking)."""
    return -(np.asarray(mean) - beta * np.asarray(std))
