"""A from-scratch random-forest regressor (the SMAC3-style surrogate).

Regression trees split on variance reduction; the forest combines bootstrap
resampling with per-split feature subsampling.  ``predict`` returns both the
mean and the across-tree standard deviation — the epistemic-uncertainty
signal Expected Improvement needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class _TreeNode:
    feature: int = -1
    threshold: float = 0.0
    left: "_TreeNode | None" = None
    right: "_TreeNode | None" = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree:
    """A CART-style regression tree over a float matrix."""

    def __init__(
        self,
        max_depth: int = 14,
        min_samples_leaf: int = 1,
        max_features: float = 0.8,
        rng: np.random.Generator | None = None,
    ):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = rng or np.random.default_rng()
        self._root: _TreeNode | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        self._root = self._build(X, y, depth=0)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        return np.array([self._predict_one(row) for row in X])

    def _predict_one(self, row: np.ndarray) -> float:
        node = self._root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _TreeNode:
        if (
            depth >= self.max_depth
            or len(y) < 2 * self.min_samples_leaf
            or np.ptp(y) < 1e-12
        ):
            return _TreeNode(value=float(y.mean()))
        split = self._best_split(X, y)
        if split is None:
            return _TreeNode(value=float(y.mean()))
        feature, threshold = split
        mask = X[:, feature] <= threshold
        left = self._build(X[mask], y[mask], depth + 1)
        right = self._build(X[~mask], y[~mask], depth + 1)
        return _TreeNode(feature=feature, threshold=threshold, left=left, right=right)

    def _best_split(
        self, X: np.ndarray, y: np.ndarray
    ) -> tuple[int, float] | None:
        n_samples, n_features = X.shape
        n_consider = max(1, int(round(self.max_features * n_features)))
        features = self._rng.permutation(n_features)[:n_consider]
        best: tuple[float, int, float] | None = None
        for feature in features:
            order = np.argsort(X[:, feature], kind="stable")
            xs = X[order, feature]
            ys = y[order]
            # candidate split positions between distinct x values
            prefix_sum = np.cumsum(ys)
            prefix_sq = np.cumsum(ys**2)
            total_sum, total_sq = prefix_sum[-1], prefix_sq[-1]
            for i in range(self.min_samples_leaf, n_samples - self.min_samples_leaf + 1):
                if xs[i - 1] == xs[min(i, n_samples - 1)]:
                    continue
                left_n, right_n = i, n_samples - i
                left_sum, left_sq = prefix_sum[i - 1], prefix_sq[i - 1]
                right_sum = total_sum - left_sum
                right_sq = total_sq - left_sq
                sse = (left_sq - left_sum**2 / left_n) + (
                    right_sq - right_sum**2 / right_n
                )
                if best is None or sse < best[0]:
                    threshold = (xs[i - 1] + xs[min(i, n_samples - 1)]) / 2.0
                    best = (float(sse), int(feature), float(threshold))
        if best is None:
            return None
        return best[1], best[2]


@dataclass
class RandomForestRegressor:
    """Bootstrap ensemble of regression trees with uncertainty estimates."""

    n_trees: int = 20
    max_depth: int = 14
    min_samples_leaf: int = 1
    max_features: float = 0.8
    seed: int = 0
    _trees: list[RegressionTree] = field(default_factory=list, repr=False)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if len(X) != len(y) or len(y) == 0:
            raise ValueError("X and y must be non-empty and the same length")
        rng = np.random.default_rng(self.seed)
        self._trees = []
        for _ in range(self.n_trees):
            indices = rng.integers(0, len(y), len(y))
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=rng,
            )
            tree.fit(X[indices], y[indices])
            self._trees.append(tree)
        return self

    @property
    def is_fitted(self) -> bool:
        return bool(self._trees)

    def predict(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return (mean, std) across the ensemble for each row of X."""
        if not self._trees:
            raise RuntimeError("forest is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        per_tree = np.stack([tree.predict(X) for tree in self._trees])
        return per_tree.mean(axis=0), per_tree.std(axis=0)
