"""Latin Hypercube Sampling (Loh 1996), used by SQLBarber's profiling stage.

LHS stratifies every dimension into *n* equal slices and places exactly one
sample in each slice per dimension, giving far better coverage of the joint
space than independent uniform sampling — the paper's Section 5.1 rationale.
"""

from __future__ import annotations

import numpy as np

from .space import Config, ConfigSpace


def latin_hypercube(n: int, dims: int, rng: np.random.Generator) -> np.ndarray:
    """*n* points in the *dims*-dimensional unit cube, LHS-stratified.

    Returns an ``(n, dims)`` array.  Each column is a random permutation of
    the *n* strata with uniform jitter inside each stratum.
    """
    if n <= 0:
        return np.zeros((0, dims))
    samples = np.empty((n, dims), dtype=np.float64)
    strata = (np.arange(n) + 0.0) / n
    width = 1.0 / n
    for dim in range(dims):
        jitter = rng.random(n) * width
        samples[:, dim] = rng.permutation(strata + jitter)
    return samples


def lhs_configs(
    space: ConfigSpace, n: int, rng: np.random.Generator
) -> list[Config]:
    """*n* LHS-distributed configurations from *space*."""
    points = latin_hypercube(n, max(len(space), 1), rng)
    return [space.from_unit(point) for point in points]
