"""The Bayesian optimization loop (ask/tell), SMAC3-style.

The optimizer minimizes a black-box objective over a :class:`ConfigSpace`
with a random-forest surrogate and Expected Improvement, bootstrapped by LHS
and optionally warm-started from earlier runs — the "historical optimization
runs can be reused" mechanism of the paper's Section 5.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from .acquisition import expected_improvement
from .forest import RandomForestRegressor
from .lhs import lhs_configs
from .space import Config, ConfigSpace


@dataclass(frozen=True)
class Observation:
    """One evaluated configuration."""

    config: Config
    value: float


@dataclass
class OptimizationResult:
    best_config: Config | None
    best_value: float
    observations: list[Observation] = field(default_factory=list)

    @property
    def num_evaluations(self) -> int:
        return len(self.observations)


class BayesianOptimizer:
    """Sequential model-based optimization over a configuration space.

    Usage::

        opt = BayesianOptimizer(space, seed=0)
        for _ in range(50):
            config = opt.ask()
            opt.tell(config, objective(config))
    """

    def __init__(
        self,
        space: ConfigSpace,
        seed: int = 0,
        n_initial: int = 8,
        n_candidates: int = 200,
        n_trees: int = 20,
        exploration_fraction: float = 0.1,
        refit_every: int = 1,
    ):
        if len(space) == 0:
            raise ValueError("empty configuration space")
        self.space = space
        self._rng = np.random.default_rng(seed)
        self.n_initial = n_initial
        self.n_candidates = n_candidates
        self.exploration_fraction = exploration_fraction
        self.refit_every = max(int(refit_every), 1)
        self._observations: list[Observation] = []
        self._initial_queue: list[Config] = lhs_configs(space, n_initial, self._rng)
        self._surrogate = RandomForestRegressor(n_trees=n_trees, seed=seed)
        self._stale = True
        self._fitted_size = 0

    # -- state -----------------------------------------------------------------

    @property
    def observations(self) -> list[Observation]:
        return list(self._observations)

    @property
    def best(self) -> Observation | None:
        if not self._observations:
            return None
        return min(self._observations, key=lambda o: o.value)

    def warm_start(self, history: Iterable[tuple[Config, float]]) -> None:
        """Seed the surrogate with externally evaluated configurations.

        This is the history-reuse path: configurations from previous
        enumeration tasks are re-scored under the current objective and
        injected as observations, so the surrogate starts informed.
        """
        for config, value in history:
            self._observations.append(Observation(dict(config), float(value)))
        self._stale = True

    # -- ask / tell ---------------------------------------------------------------

    def ask(self) -> Config:
        """Propose the next configuration to evaluate."""
        if self._initial_queue:
            return self._initial_queue.pop()
        if len(self._observations) < 2:
            return self.space.sample(self._rng)
        if self._rng.random() < self.exploration_fraction:
            return self.space.sample(self._rng)
        self._refit_if_needed()
        candidates = self.space.sample_many(self.n_candidates, self._rng)
        candidates.extend(self._local_candidates())
        X = np.stack([self.space.to_unit(c) for c in candidates])
        mean, std = self._surrogate.predict(X)
        best_value = self.best.value if self.best else 0.0
        scores = expected_improvement(mean, std, best_value)
        return candidates[int(np.argmax(scores))]

    def _local_candidates(self, per_incumbent: int = 20) -> list[Config]:
        """Gaussian perturbations of the best observations (SMAC-style local
        search), which lets EI refine around the incumbent instead of relying
        on global random candidates alone."""
        ranked = sorted(self._observations, key=lambda o: o.value)[:3]
        locals_: list[Config] = []
        for observation in ranked:
            center = self.space.to_unit(observation.config)
            for scale in (0.02, 0.1):
                noise = self._rng.normal(0.0, scale, (per_incumbent // 2, len(center)))
                for point in np.clip(center + noise, 0.0, 1.0):
                    locals_.append(self.space.from_unit(point))
        return locals_

    def tell(self, config: Config, value: float) -> None:
        """Report an evaluated configuration."""
        self._observations.append(Observation(dict(config), float(value)))
        self._stale = True

    def _refit_if_needed(self) -> None:
        if not self._stale:
            return
        grown_enough = (
            len(self._observations) - self._fitted_size >= self.refit_every
        )
        if self._surrogate.is_fitted and not grown_enough:
            return  # amortize forest fits across several tells
        X = np.stack([self.space.to_unit(o.config) for o in self._observations])
        y = np.array([o.value for o in self._observations])
        self._surrogate.fit(X, y)
        self._fitted_size = len(self._observations)
        self._stale = False

    # -- batch convenience ------------------------------------------------------------

    def minimize(
        self,
        objective: Callable[[Config], float],
        budget: int,
        stop_at: float | None = None,
    ) -> OptimizationResult:
        """Run the full ask/tell loop for *budget* evaluations.

        Stops early when the best value reaches *stop_at* (useful when the
        objective is "distance to the target interval" and 0 means inside).
        """
        for _ in range(budget):
            config = self.ask()
            self.tell(config, objective(config))
            if stop_at is not None and self.best and self.best.value <= stop_at:
                break
        best = self.best
        return OptimizationResult(
            best_config=best.config if best else None,
            best_value=best.value if best else float("inf"),
            observations=self.observations,
        )


def random_search(
    space: ConfigSpace,
    objective: Callable[[Config], float],
    budget: int,
    seed: int = 0,
    stop_at: float | None = None,
) -> OptimizationResult:
    """The no-model baseline used by the paper's "Naive-Search" ablation."""
    rng = np.random.default_rng(seed)
    observations: list[Observation] = []
    for _ in range(budget):
        config = space.sample(rng)
        value = float(objective(config))
        observations.append(Observation(config, value))
        if stop_at is not None and value <= stop_at:
            break
    if observations:
        best = min(observations, key=lambda o: o.value)
        return OptimizationResult(best.config, best.value, observations)
    return OptimizationResult(None, float("inf"), [])
