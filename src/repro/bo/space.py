"""Configuration spaces for Bayesian optimization.

A :class:`ConfigSpace` maps between *configurations* (name -> value dicts)
and points in the unit hypercube, which is the representation the surrogate
model and Latin Hypercube Sampling work in.  Integer, float, and categorical
parameters are supported; numeric parameters may be log-scaled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

Config = dict[str, object]


@dataclass(frozen=True)
class Parameter:
    """Base class for a single search dimension."""

    name: str

    def to_unit(self, value) -> float:
        raise NotImplementedError

    def from_unit(self, unit: float):
        raise NotImplementedError

    def cardinality(self) -> float:
        """Number of distinct values (math.inf for continuous)."""
        raise NotImplementedError


@dataclass(frozen=True)
class FloatParameter(Parameter):
    low: float = 0.0
    high: float = 1.0
    log: bool = False

    def __post_init__(self) -> None:
        if self.high <= self.low:
            raise ValueError(f"{self.name}: high must exceed low")
        if self.log and self.low <= 0:
            raise ValueError(f"{self.name}: log scale requires positive bounds")

    def to_unit(self, value) -> float:
        value = float(value)
        if self.log:
            return (math.log(value) - math.log(self.low)) / (
                math.log(self.high) - math.log(self.low)
            )
        return (value - self.low) / (self.high - self.low)

    def from_unit(self, unit: float) -> float:
        unit = min(max(float(unit), 0.0), 1.0)
        if self.log:
            return math.exp(
                math.log(self.low)
                + unit * (math.log(self.high) - math.log(self.low))
            )
        return self.low + unit * (self.high - self.low)

    def cardinality(self) -> float:
        return math.inf


@dataclass(frozen=True)
class IntegerParameter(Parameter):
    low: int = 0
    high: int = 1
    log: bool = False

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError(f"{self.name}: high must be >= low")
        if self.log and self.low <= 0:
            raise ValueError(f"{self.name}: log scale requires positive bounds")

    def to_unit(self, value) -> float:
        if self.high == self.low:
            return 0.5
        value = float(value)
        if self.log:
            return (math.log(value) - math.log(self.low)) / (
                math.log(self.high) - math.log(self.low)
            )
        return (value - self.low) / (self.high - self.low)

    def from_unit(self, unit: float) -> int:
        unit = min(max(float(unit), 0.0), 1.0)
        if self.log:
            raw = math.exp(
                math.log(self.low)
                + unit * (math.log(self.high) - math.log(self.low))
            )
        else:
            raw = self.low + unit * (self.high - self.low)
        return int(min(max(round(raw), self.low), self.high))

    def cardinality(self) -> float:
        return float(self.high - self.low + 1)


@dataclass(frozen=True)
class CategoricalParameter(Parameter):
    choices: tuple = ()

    def __post_init__(self) -> None:
        if not self.choices:
            raise ValueError(f"{self.name}: choices cannot be empty")

    def to_unit(self, value) -> float:
        index = self.choices.index(value)
        return (index + 0.5) / len(self.choices)

    def from_unit(self, unit: float):
        unit = min(max(float(unit), 0.0), 1.0 - 1e-12)
        return self.choices[int(unit * len(self.choices))]

    def cardinality(self) -> float:
        return float(len(self.choices))


@dataclass
class ConfigSpace:
    """An ordered collection of parameters."""

    parameters: list[Parameter] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [p.name for p in self.parameters]
        if len(set(names)) != len(names):
            raise ValueError("duplicate parameter names")

    def __len__(self) -> int:
        return len(self.parameters)

    @property
    def names(self) -> list[str]:
        return [p.name for p in self.parameters]

    def add(self, parameter: Parameter) -> None:
        if parameter.name in self.names:
            raise ValueError(f"duplicate parameter {parameter.name!r}")
        self.parameters.append(parameter)

    def cardinality(self) -> float:
        """Total number of distinct configurations (inf if any float)."""
        total = 1.0
        for parameter in self.parameters:
            total *= parameter.cardinality()
            if math.isinf(total):
                return math.inf
        return total

    # -- unit-cube conversions ---------------------------------------------------

    def to_unit(self, config: Mapping[str, object]) -> np.ndarray:
        return np.array(
            [p.to_unit(config[p.name]) for p in self.parameters], dtype=np.float64
        )

    def from_unit(self, point: Sequence[float]) -> Config:
        return {
            p.name: p.from_unit(u) for p, u in zip(self.parameters, point)
        }

    # -- sampling -------------------------------------------------------------------

    def sample(self, rng: np.random.Generator) -> Config:
        return self.from_unit(rng.random(len(self.parameters)))

    def sample_many(self, n: int, rng: np.random.Generator) -> list[Config]:
        return [self.sample(rng) for _ in range(n)]
