"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``schema``         — print the schema summary of a built-in dataset;
* ``generate``       — run SQLBarber end-to-end and export a JSONL workload;
* ``benchmarks``     — list the ten paper benchmarks (Table 1);
* ``run-benchmark``  — run one method on one benchmark and print metrics;
* ``trace-report``   — per-stage time/token/call breakdown of a trace file;
* ``perf-report``    — tail-latency view of a trace: p50/p95/p99 per stage,
  per operator, and per latency histogram;
* ``fuzz``           — grammar-fuzz the SQL engine against its oracles;
* ``chaos``          — run the pipeline under a seeded transport-fault
  storm with kills and budget exhaustion, verifying graceful degradation
  and bit-identical resume (``--scenario serve`` attacks the job service
  instead);
* ``serve``          — run the multi-tenant generation job service
  (SIGTERM drains gracefully: in-flight jobs checkpoint, queued jobs stay
  accountable);
* ``submit``         — submit one generation job to a running service;
* ``jobs``           — list jobs (or show one) on a running service.

Output discipline: *data* (schema text, tables, JSON summaries, reports)
goes to stdout; *diagnostics* (progress, target histograms) go through the
``repro`` logger to stderr, so ``--output``/JSON consumers can pipe stdout
without scraping.  ``--log-level debug`` additionally streams every
telemetry span through the logger.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys

from repro.benchsuite import (
    ExperimentRunner,
    METHODS,
    benchmark_by_name,
    histogram_text,
    table1_overview,
)
from repro.core import BarberConfig, SQLBarber, schema_text
from repro.datasets import build_database, dataset_names, redset_spec_workload
from repro.obs import (
    JsonlSink,
    LoggingSink,
    ProgressRenderer,
    render_perf_report_file,
    render_report_file,
    setup_logging,
)
from repro.workload import CostDistribution, TemplateSpec

logger = logging.getLogger("repro.cli")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI with all six sub-commands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SQLBarber reproduction: customized, cost-targeted "
        "SQL workload generation.",
    )
    parser.add_argument(
        "--log-level", default="info",
        choices=["debug", "info", "warning", "error"],
        help="diagnostic verbosity on stderr (debug also streams spans)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    schema = commands.add_parser("schema", help="print a dataset's schema summary")
    schema.add_argument("--db", choices=dataset_names(), default="tpch")
    schema.add_argument("--scale", type=float, default=None)

    generate = commands.add_parser(
        "generate", help="generate a workload and export it as JSONL"
    )
    generate.add_argument("--db", choices=dataset_names(), default="tpch")
    generate.add_argument("--scale", type=float, default=None)
    generate.add_argument("--queries", type=int, default=100)
    generate.add_argument("--intervals", type=int, default=10)
    generate.add_argument(
        "--shape", default="uniform",
        help="uniform | normal | snowset_card_1 | snowset_card_2 | "
             "snowset_cost | redset_cost",
    )
    generate.add_argument(
        "--cost-type", default="plan_cost",
        choices=["plan_cost", "cardinality", "execution_time", "actual_rows"],
    )
    generate.add_argument("--cost-min", type=float, default=0.0)
    generate.add_argument("--cost-max", type=float, default=10_000.0)
    generate.add_argument(
        "--spec", action="append", default=[],
        help="a natural-language template spec (repeatable)",
    )
    generate.add_argument(
        "--specs-file", default=None,
        help="JSON file: a list of spec objects (num_joins, instructions, ...)",
    )
    generate.add_argument("--num-specs", type=int, default=8,
                          help="fleet-derived specs when none are given")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--workers", type=int, default=1,
        help="worker count for profiling/refinement fan-out (results are "
             "bit-identical to --workers 1)",
    )
    generate.add_argument(
        "--parallel-backend", default="thread", choices=["thread", "process"],
        help="pool flavour for --workers > 1 (process pays a fork per worker "
             "but overlaps CPU-bound planning)",
    )
    generate.add_argument(
        "--no-explain-cache", action="store_true",
        help="disable the EXPLAIN result cache (debugging escape hatch)",
    )
    generate.add_argument(
        "--no-vectorized", action="store_true",
        help="force the row-at-a-time executor instead of the columnar "
             "batch executor (results are identical either way)",
    )
    generate.add_argument(
        "--vec-batch-size", type=int, default=None, metavar="ROWS",
        help="rows per batch for the vectorized executor (default 1024)",
    )
    generate.add_argument("--time-budget", type=float, default=300.0)
    generate.add_argument(
        "--max-tokens", type=int, default=None,
        help="hard LLM token ceiling; the run aborts gracefully (partial "
             "result, exit 1) when reached",
    )
    generate.add_argument(
        "--max-cost-dollars", type=float, default=None,
        help="hard LLM spend ceiling in USD (see --max-tokens)",
    )
    generate.add_argument(
        "--query-timeout", type=float, default=None, metavar="SECONDS",
        help="per-query deadline enforced cooperatively inside the engine; "
             "a tripped deadline is a quarantine strike, not a crash",
    )
    generate.add_argument(
        "--memory-budget", type=float, default=None, metavar="MB",
        help="per-operator memory ceiling (estimated bytes of any "
             "materialized frame)",
    )
    generate.add_argument(
        "--row-budget", type=int, default=None,
        help="per-query processed-row ceiling; unbounded cross products "
             "are refused before materializing",
    )
    generate.add_argument(
        "--quarantine-after", type=int, default=3, metavar="N",
        help="bench a template after N resource strikes (default 3); the "
             "run continues without it and records why",
    )
    generate.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="save resumable run state here after every stage (and every "
             "few templates within stages)",
    )
    generate.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint-dir's checkpoint; the resumed run "
             "is bit-identical to an uninterrupted one",
    )
    generate.add_argument(
        "--workload-mix", default=None, metavar="S,I,U,D",
        help="emit a mixed read/write workload: comma-separated fractions "
             "of SELECT, INSERT, UPDATE, DELETE statements summing to 1 "
             "(e.g. 0.5,0.2,0.2,0.1); DML is drawn deterministically per "
             "--seed from the schema-aware grammar and costed via EXPLAIN",
    )
    generate.add_argument("--output", "-o", default=None,
                          help="JSONL output path (default: stdout summary only)")
    generate.add_argument(
        "--trace-out", default=None,
        help="write the run's telemetry (spans + events + metrics) to this "
             "JSONL file; inspect it with `repro trace-report` / "
             "`repro perf-report`",
    )
    generate.add_argument(
        "--profile", action="store_true",
        help="arm the operator-level executor profiler: every executed plan "
             "operator records rows/batches/self-time, aggregated into the "
             "run summary and the trace (see `repro perf-report`)",
    )
    generate.add_argument(
        "--progress", action="store_true",
        help="stream live pipeline progress events (stages, templates, "
             "checkpoints, retries) to stderr",
    )

    commands.add_parser("benchmarks", help="list the ten paper benchmarks")

    run = commands.add_parser(
        "run-benchmark", help="run one method on one paper benchmark"
    )
    run.add_argument("--name", required=True, help="benchmark name (Table 1)")
    run.add_argument("--db", choices=dataset_names(), default="tpch")
    run.add_argument("--method", choices=METHODS, default="sqlbarber")
    run.add_argument("--queries", type=int, default=None,
                     help="override the benchmark's query count")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--workers", type=int, default=1,
        help="worker count for the sqlbarber method's profiling fan-out",
    )
    run.add_argument(
        "--no-explain-cache", action="store_true",
        help="disable the EXPLAIN result cache (sqlbarber method only)",
    )
    run.add_argument("--time-budget", type=float, default=300.0)
    run.add_argument("--baseline-interval-budget", type=float, default=2.0)
    run.add_argument(
        "--trace-out", default=None,
        help="telemetry JSONL output (sqlbarber method only)",
    )

    report = commands.add_parser(
        "trace-report",
        help="print a per-stage time/token/call breakdown of a trace file",
    )
    report.add_argument("trace", help="JSONL trace written with --trace-out")

    perf = commands.add_parser(
        "perf-report",
        help="print p50/p95/p99 latency tables (per stage, per operator, "
             "per histogram) from a trace file",
    )
    perf.add_argument("trace", help="JSONL trace written with --trace-out")

    fuzz = commands.add_parser(
        "fuzz",
        help="grammar-fuzz the SQL engine against its differential oracles",
    )
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument(
        "--budget", type=int, default=200,
        help="number of statements to generate and check",
    )
    fuzz.add_argument(
        "--db", choices=list(dataset_names()) + ["fuzz"], default="fuzz",
        help="target database: the dedicated fuzz schema or a dataset",
    )
    fuzz.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="regression corpus directory; failures are appended as JSON "
        "(default: no corpus writes)",
    )
    fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="record failures without delta-debugging them first",
    )
    fuzz.add_argument(
        "--trace-out", default=None,
        help="write the fuzz run's telemetry to this JSONL file",
    )

    chaos = commands.add_parser(
        "chaos",
        help="run the pipeline under seeded transport-fault storms, kills, "
             "and budget exhaustion",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--runs", type=int, default=30,
        help="number of chaos runs (cycling storm / kill / budget / engine "
             "scenarios)",
    )
    chaos.add_argument(
        "--intensity", type=float, default=0.3,
        help="upper bound on the total per-call transport-fault probability",
    )
    chaos.add_argument(
        "--scenario", default=None,
        choices=["storm", "kill", "budget", "engine", "serve", "restart"],
        help="pin every run to one scenario instead of cycling "
             "(engine = governor limits + engine-side fault storm; "
             "serve = worker kills, queue storms, deadline expiry, and "
             "poisoned specs against the job service; restart = kill the "
             "whole service at every journaled transition point and "
             "recover from the durable job store)",
    )
    chaos.add_argument(
        "--trace-out", default=None,
        help="write the campaign's telemetry to this JSONL file (flushed "
             "per record, so it survives crashes)",
    )

    serve = commands.add_parser(
        "serve",
        help="run the multi-tenant generation job service (HTTP/JSON)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8642,
        help="listen port (0 = pick a free one; the bound port is logged)",
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="worker threads executing jobs",
    )
    serve.add_argument(
        "--max-queue-depth", type=int, default=32,
        help="global queue bound; submissions past it get an explicit 429 "
             "with a Retry-After hint",
    )
    serve.add_argument(
        "--max-attempts", type=int, default=3,
        help="attempts (original + crash resumes) per job before it fails",
    )
    serve.add_argument(
        "--checkpoint-root", default="serve-checkpoints", metavar="DIR",
        help="per-job checkpoint directories live under here "
             "(checkpointing is always on)",
    )
    serve.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help="durable job journal directory: every lifecycle transition "
             "is journaled there and a restart replays it, so accepted "
             "jobs survive process death (omit for an ephemeral service)",
    )
    serve.add_argument(
        "--journal-fsync", default="rotate",
        choices=["always", "rotate", "off"],
        help="journal durability: always = fsync every append (survives "
             "OS crash), rotate = fsync at segment seals/snapshots/exit "
             "(survives process death; an OS crash can drop the unsealed "
             "tail, which recovery quarantines), off = benchmarks only",
    )
    serve.add_argument(
        "--requests-per-window", type=int, default=None, metavar="N",
        help="per-tenant rate limit: N requests per --window-seconds "
             "(token bucket; over-limit submissions get 429 rate_limited "
             "with an exact Retry-After)",
    )
    serve.add_argument(
        "--window-seconds", type=float, default=60.0,
        help="rate-limit window length (with --requests-per-window)",
    )
    serve.add_argument(
        "--burst", type=int, default=None,
        help="rate-limit bucket capacity (default: one window's worth)",
    )

    submit = commands.add_parser(
        "submit", help="submit one generation job to a running service"
    )
    submit.add_argument("--url", default="http://127.0.0.1:8642")
    submit.add_argument("--tenant", default="cli")
    submit.add_argument("--priority", type=int, default=4,
                        help="0 (batch) .. 9 (interactive)")
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument(
        "--specs-file", default=None,
        help="JSON file: a list of spec objects (num_joins, order_by, ...)",
    )
    submit.add_argument("--queries", type=int, default=16)
    submit.add_argument("--intervals", type=int, default=4)
    submit.add_argument("--cost-min", type=float, default=0.0)
    submit.add_argument("--cost-max", type=float, default=200.0)
    submit.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="end-to-end deadline (queue wait included)")
    submit.add_argument("--max-tokens", type=int, default=None)
    submit.add_argument("--max-cost-dollars", type=float, default=None)
    submit.add_argument(
        "--wait", action="store_true",
        help="poll until the job reaches a terminal state",
    )

    jobs = commands.add_parser(
        "jobs", help="list jobs (or show one) on a running service"
    )
    jobs.add_argument("--url", default="http://127.0.0.1:8642")
    jobs.add_argument("job_id", nargs="?", default=None,
                      help="show one job instead of the full table")
    jobs.add_argument(
        "--stats", action="store_true",
        help="print service counters (queue depth, rejections, tenants) "
             "instead of the job table",
    )
    return parser


def _load_specs(args) -> list[TemplateSpec]:
    specs: list[TemplateSpec] = []
    for index, text in enumerate(args.spec):
        specs.append(TemplateSpec.from_natural_language(text, spec_id=f"cli_{index}"))
    if args.specs_file:
        with open(args.specs_file) as handle:
            payload = json.load(handle)
        for index, entry in enumerate(payload):
            specs.append(
                TemplateSpec.from_json(entry, spec_id=f"file_{index}")
            )
    if not specs:
        specs = redset_spec_workload(num_specs=args.num_specs, seed=args.seed)
    return specs


def _build_distribution(args) -> CostDistribution:
    if args.shape == "uniform":
        return CostDistribution.uniform(
            args.cost_min, args.cost_max, args.queries, args.intervals,
            cost_type=args.cost_type,
        )
    if args.shape == "normal":
        return CostDistribution.normal(
            args.cost_min, args.cost_max, args.queries, args.intervals,
            cost_type=args.cost_type,
        )
    from repro.datasets import fleet_distribution

    return fleet_distribution(
        args.shape, args.queries, args.intervals, args.cost_type
    )


def _telemetry_sinks(trace_out: str | None) -> list:
    sinks: list = [LoggingSink()]
    if trace_out:
        try:
            sinks.append(JsonlSink(trace_out))
        except OSError as exc:
            raise SystemExit(
                f"repro: error: cannot write trace to {trace_out!r}: {exc}"
            ) from exc
    return sinks


def cmd_schema(args) -> int:
    """`repro schema`: print a dataset's human-readable schema summary."""
    db = build_database(args.db, scale=args.scale)
    print(schema_text(db))
    return 0


def cmd_generate(args) -> int:
    """`repro generate`: run SQLBarber end-to-end, optionally write JSONL.

    Stdout carries exactly one JSON summary object; the target histogram and
    progress diagnostics go to the logger (stderr).
    """
    db = build_database(args.db, scale=args.scale)
    if args.no_explain_cache:
        db.set_explain_cache(False)
    workload_mix = None
    if args.workload_mix:
        from repro.workload.mixer import parse_mix

        try:
            workload_mix = parse_mix(args.workload_mix)
        except ValueError as exc:
            raise SystemExit(f"repro: error: --workload-mix: {exc}")
    specs = _load_specs(args)
    distribution = _build_distribution(args)
    logger.info("target distribution:\n%s", histogram_text(distribution))
    barber = SQLBarber(
        db,
        config=BarberConfig(
            seed=args.seed,
            workers=args.workers,
            parallel_backend=args.parallel_backend,
            max_tokens=args.max_tokens,
            max_cost_dollars=args.max_cost_dollars,
            query_timeout_seconds=args.query_timeout,
            memory_budget_mb=args.memory_budget,
            row_budget=args.row_budget,
            quarantine_after=args.quarantine_after,
            profile=args.profile,
            use_vectorized=not args.no_vectorized,
            workload_mix=workload_mix,
            **(
                {"vec_batch_size": args.vec_batch_size}
                if args.vec_batch_size is not None
                else {}
            ),
        ),
        sinks=_telemetry_sinks(args.trace_out),
    )
    subscribers = [ProgressRenderer(sys.stderr)] if args.progress else []
    result = barber.generate_workload(
        specs, distribution, time_budget_seconds=args.time_budget,
        checkpoint_dir=args.checkpoint_dir, resume=args.resume,
        subscribers=subscribers,
    )
    logger.info(
        "generated %d/%d queries in %.1fs; Wasserstein distance %.2f; "
        "templates %d; LLM tokens %d",
        len(result.workload), distribution.total_queries,
        result.elapsed_seconds, result.final_distance,
        result.num_templates, result.llm_usage["total_tokens"],
    )
    if result.aborted:
        logger.warning(
            "run aborted in stage %s (%s); partial result%s",
            result.abort_stage, result.abort_reason,
            f"; resume with --checkpoint-dir {args.checkpoint_dir} --resume"
            if args.checkpoint_dir else "",
        )
    if result.quarantined:
        logger.warning(
            "%d template(s) quarantined by the resource governor: %s",
            len(result.quarantined),
            ", ".join(record.template_id for record in result.quarantined),
        )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(result.workload.to_jsonl())
        logger.info("workload written to %s", args.output)
    if args.trace_out:
        logger.info("telemetry trace written to %s", args.trace_out)
    summary = {
        "generated": len(result.workload),
        "target_queries": distribution.total_queries,
        "complete": result.complete,
        "elapsed_seconds": round(result.elapsed_seconds, 3),
        "wasserstein_distance": round(result.final_distance, 4),
        "num_templates": result.num_templates,
        "stage_seconds": {
            stage: round(seconds, 3)
            for stage, seconds in result.stage_seconds.items()
        },
        "llm_usage": result.llm_usage,
        "explain_cache": db.explain_cache.stats(),
        "aborted": result.aborted,
        "abort_stage": result.abort_stage,
        "abort_reason": result.abort_reason,
        "quarantined": [record.to_dict() for record in result.quarantined],
        "workload_mix": args.workload_mix,
        "dml_statements": sum(
            1
            for q in result.workload
            if (q.template_id or "").startswith("mix_")
        ),
        "checkpoint": result.checkpoint_path,
        "output": args.output,
        "trace": args.trace_out,
    }
    if result.operator_profiles is not None:
        summary["operator_profiles"] = result.operator_profiles["operators"]
    print(json.dumps(summary, indent=2))
    return 0 if result.complete else 1


def cmd_benchmarks(_args) -> int:
    """`repro benchmarks`: print the Table-1 benchmark inventory."""
    print(table1_overview())
    return 0


def cmd_run_benchmark(args) -> int:
    """`repro run-benchmark`: one method on one benchmark, JSON metrics."""
    benchmark = benchmark_by_name(args.name)
    distribution = benchmark.distribution(num_queries=args.queries)
    runner = ExperimentRunner(seed=args.seed)
    run = runner.run(
        args.method,
        args.db,
        distribution,
        benchmark_name=benchmark.name,
        time_budget_seconds=args.time_budget,
        per_interval_budget_seconds=args.baseline_interval_budget,
        sinks=_telemetry_sinks(args.trace_out) if args.trace_out else None,
        workers=args.workers,
        explain_cache=not args.no_explain_cache,
    )
    if args.trace_out:
        logger.info("telemetry trace written to %s", args.trace_out)
    print(json.dumps(run.summary_row(), indent=2))
    return 0 if run.complete else 1


def cmd_trace_report(args) -> int:
    """`repro trace-report`: offline breakdown of a --trace-out file."""
    try:
        print(render_report_file(args.trace))
    except OSError as exc:
        print(f"repro: error: cannot read trace file: {exc}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(
            f"repro: error: {args.trace!r} is not a JSONL trace "
            f"(line {exc.lineno}: {exc.msg})",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_perf_report(args) -> int:
    """`repro perf-report`: tail-latency breakdown of a --trace-out file."""
    try:
        print(render_perf_report_file(args.trace))
    except OSError as exc:
        print(f"repro: error: cannot read trace file: {exc}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(
            f"repro: error: {args.trace!r} is not a JSONL trace "
            f"(line {exc.lineno}: {exc.msg})",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_fuzz(args) -> int:
    """`repro fuzz`: grammar-fuzz the engine; JSON report on stdout.

    Exit code 0 iff every oracle agreed on every statement.  The report is
    byte-identical across runs with the same seed/budget/database, so CI
    can diff two runs to prove reproducibility.
    """
    from repro.fuzz import Corpus, FuzzRunner, build_fuzz_database
    from repro.obs import Telemetry, use_telemetry

    if args.db == "fuzz":
        database = build_fuzz_database(args.seed)
    else:
        # cached=False: the cache oracle bumps the statistics epoch, which
        # must not leak into other commands' shared dataset instances.
        database = build_database(args.db, cached=False)
    corpus = Corpus(args.corpus) if args.corpus else None
    runner = FuzzRunner(
        db=database,
        seed=args.seed,
        corpus=corpus,
        shrink=not args.no_shrink,
    )
    telemetry = Telemetry(sinks=_telemetry_sinks(args.trace_out))
    try:
        with use_telemetry(telemetry):
            report = runner.run(args.budget)
    finally:
        telemetry.finish()
    if args.trace_out:
        logger.info("telemetry trace written to %s", args.trace_out)
    print(report.to_json(), end="")
    logger.info(
        "fuzz: %d statements, %d disagreements, %d invalid",
        report.statements,
        len(report.disagreements),
        report.invalid,
    )
    return 0 if report.ok else 1


def cmd_chaos(args) -> int:
    """`repro chaos`: seeded chaos campaign; JSON report on stdout.

    Exit code 0 iff every run completed, aborted gracefully, or resumed
    bit-identically after its injected kill.  The report is byte-identical
    across runs with the same seed/runs/intensity, so CI can diff two runs
    to prove reproducibility.
    """
    from repro.resilience import run_chaos_campaign

    report = run_chaos_campaign(
        seed=args.seed, runs=args.runs, intensity=args.intensity,
        scenario=args.scenario, trace_path=args.trace_out,
    )
    if args.trace_out:
        logger.info("telemetry trace written to %s", args.trace_out)
    print(report.to_json(), end="")
    if args.scenario == "restart":
        logger.info(
            "restart chaos: %d runs, %d sweep points, %d/%d recovery pairs "
            "identical, %d failures",
            report.runs, report.sweep_points, report.pairs_identical,
            report.recovery_pairs, len(report.failures),
        )
    else:
        logger.info(
            "chaos: %d runs, %d completed, %d aborted, %d kills, "
            "%d resumed identical, %d failures",
            report.runs, report.completed, report.aborted, report.kills_fired,
            report.resumed_identical, len(report.failures),
        )
    return 0 if report.ok else 1


def cmd_serve(args) -> int:
    """`repro serve`: run the job service until SIGTERM/SIGINT, then drain.

    The drain is the graceful-shutdown contract: admission stops (503 +
    Retry-After), every in-flight job stops at its next durable checkpoint
    and is recorded CHECKPOINTED (resumable), queued jobs stay accountable
    in the job table.  The drain summary is printed as JSON on stdout.
    """
    import asyncio
    import signal

    from repro.serve import ServeConfig, ServeCore, ServeServer, TenantQuota

    config = ServeConfig(
        workers=args.workers,
        max_queue_depth=args.max_queue_depth,
        max_attempts=args.max_attempts,
        checkpoint_root=args.checkpoint_root,
        default_quota=TenantQuota(
            requests_per_window=args.requests_per_window,
            window_seconds=args.window_seconds,
            burst=args.burst,
        ),
        state_dir=args.state_dir,
        journal_fsync=args.journal_fsync,
    )
    if args.state_dir:
        # Durable mode: replay whatever a previous lifetime journaled.
        # A dead holder's lock is taken over via its staleness rules; a
        # *live* one raises LockHeld — one service per state dir.
        core = ServeCore.recover(config)
        recovery = core.recovery or {}
        logger.info(
            "recovered state dir %s: %d record(s) replayed, "
            "%d running requeued, %d checkpointed resumed, "
            "%d quarantined damage item(s)",
            args.state_dir,
            recovery.get("records_replayed", 0),
            recovery.get("requeued_running", 0),
            recovery.get("resumed_checkpointed", 0),
            len(recovery.get("quarantined", [])),
        )
    else:
        core = ServeCore(config)
    server = ServeServer(core, host=args.host, port=args.port)

    async def _run() -> dict:
        await server.start()
        logger.info(
            "serving on http://%s:%d (%d workers, queue depth %d); "
            "SIGTERM drains gracefully",
            server.host, server.port, args.workers, args.max_queue_depth,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        return await server.serve_until(stop)

    summary = asyncio.run(_run())
    if core.recovery is not None:
        summary["recovery"] = {
            key: core.recovery.get(key)
            for key in (
                "records_replayed",
                "requeued_running",
                "resumed_checkpointed",
                "quarantined_counts",
                "clean_shutdown",
            )
        }
    logger.info(
        "drained: %d job(s) checkpointed/queued for resume",
        summary.get("running", 0) + summary.get("queued", 0),
    )
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def cmd_submit(args) -> int:
    """`repro submit`: POST one job; JSON response (or final state) on stdout."""
    from repro.serve import ServeClient, ServeClientError

    payload = {
        "tenant": args.tenant,
        "priority": args.priority,
        "seed": args.seed,
        "queries": args.queries,
        "intervals": args.intervals,
        "cost_min": args.cost_min,
        "cost_max": args.cost_max,
    }
    if args.specs_file:
        with open(args.specs_file) as handle:
            payload["specs"] = json.load(handle)
    else:
        payload["specs"] = [{"num_joins": 1}]
    for key, value in (
        ("deadline_seconds", args.deadline),
        ("max_tokens", args.max_tokens),
        ("max_cost_dollars", args.max_cost_dollars),
    ):
        if value is not None:
            payload[key] = value
    client = ServeClient(args.url)
    try:
        status, body, headers = client.submit(payload)
        if status != 202:
            retry_after = headers.get("retry-after")
            logger.warning(
                "submission rejected (%d%s): %s",
                status,
                f", retry after {retry_after}s" if retry_after else "",
                body.get("reason", body.get("error", "")),
            )
            print(json.dumps(body, indent=2, sort_keys=True))
            return 1
        if args.wait:
            body = client.wait_for(body["job_id"])
        print(json.dumps(body, indent=2, sort_keys=True))
        return 0 if body.get("state") != "failed" else 1
    except ServeClientError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 1


def cmd_jobs(args) -> int:
    """`repro jobs`: the service's job table / one job / counters, as JSON."""
    from repro.serve import ServeClient, ServeClientError

    client = ServeClient(args.url)
    try:
        if args.stats:
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if args.job_id:
            status, body = client.job(args.job_id)
            print(json.dumps(body, indent=2, sort_keys=True))
            return 0 if status == 200 else 1
        print(json.dumps(client.jobs(), indent=2, sort_keys=True))
        return 0
    except ServeClientError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    setup_logging(args.log_level)
    handlers = {
        "schema": cmd_schema,
        "generate": cmd_generate,
        "benchmarks": cmd_benchmarks,
        "run-benchmark": cmd_run_benchmark,
        "trace-report": cmd_trace_report,
        "perf-report": cmd_perf_report,
        "fuzz": cmd_fuzz,
        "chaos": cmd_chaos,
        "serve": cmd_serve,
        "submit": cmd_submit,
        "jobs": cmd_jobs,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
