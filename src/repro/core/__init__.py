"""SQLBarber core: the paper's primary contribution."""

from .barber import SQLBarber, WorkloadResult
from .check_rewrite import AttemptStatus, RewriteTrace, check_and_rewrite
from .config import BarberConfig, RefinementPhase
from .join_paths import (
    enumerate_join_paths,
    join_graph,
    path_tables,
    sample_join_path,
)
from .predicate_search import PredicateSearch, SearchResult, interval_objective
from .profiler import TemplateProfile, TemplateProfiler, interval_distance
from .refiner import RefinementResult, TemplateRefiner
from .schema_summary import schema_payload, schema_text
from .template_generator import CustomizedTemplateGenerator, TemplateGenerationReport
from .validation import probe_values, template_error

__all__ = [
    "AttemptStatus",
    "BarberConfig",
    "CustomizedTemplateGenerator",
    "PredicateSearch",
    "RefinementPhase",
    "RefinementResult",
    "RewriteTrace",
    "SQLBarber",
    "SearchResult",
    "TemplateGenerationReport",
    "TemplateProfile",
    "TemplateProfiler",
    "TemplateRefiner",
    "WorkloadResult",
    "check_and_rewrite",
    "enumerate_join_paths",
    "interval_distance",
    "interval_objective",
    "join_graph",
    "path_tables",
    "probe_values",
    "sample_join_path",
    "schema_payload",
    "schema_text",
    "template_error",
]
