"""The SQLBarber facade: the declarative end-to-end interface.

Typical use::

    from repro.core import SQLBarber
    from repro.datasets import build_tpch
    from repro.workload import CostDistribution, TemplateSpec

    barber = SQLBarber(build_tpch())
    result = barber.generate_workload(
        specs=[TemplateSpec.from_natural_language("2 joins and one aggregation")],
        distribution=CostDistribution.uniform(0, 10_000, 200, 10),
    )
    result.workload          # the generated queries
    result.tracker.wasserstein  # alignment with the target distribution
    result.telemetry         # trace tree + metrics for the run
    result.stage_seconds     # {"templates": ..., "profile": ..., ...}

Every run carries a :class:`~repro.obs.Telemetry`: four stage spans
(``stage:templates`` / ``stage:profile`` / ``stage:refine`` /
``stage:search``) under one ``generate_workload`` root, with per-stage
LLM-token and engine-call deltas attached as span attributes.  Sinks passed
to the constructor (e.g. :class:`~repro.obs.JsonlSink`) receive every span
as it closes plus a final metrics snapshot.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.governor import QuarantineRecord
from repro.llm import LLMClient, SimulatedLLM
from repro.llm.errors import PIPELINE_ABORT_ERRORS
from repro.obs import Telemetry, use_telemetry
from repro.resilience import CheckpointManager, ResilientLLMClient
from repro.resilience.checkpoint import (
    canonical_json,
    profile_from_state,
    profile_to_state,
    refinement_from_state,
    restore_usage,
    run_key,
    template_from_state,
    template_to_state,
    trace_from_state,
    trace_to_state,
    usage_to_state,
)
from repro.sqldb import Database
from repro.workload import (
    CostDistribution,
    DistributionTracker,
    SqlTemplate,
    TemplateSpec,
    Workload,
)
from .config import BarberConfig
from .predicate_search import PredicateSearch, SearchResult
from .profiler import TemplateProfile, TemplateProfiler
from .refiner import RefinementResult, TemplateRefiner
from .schema_summary import schema_payload
from .template_generator import CustomizedTemplateGenerator, TemplateGenerationReport

# Pipeline stages in execution order; each gets a `stage:<name>` span.
PIPELINE_STAGES = ("templates", "profile", "refine", "search")


@dataclass
class WorkloadResult:
    """Everything produced by one end-to-end SQLBarber run."""

    workload: Workload
    tracker: DistributionTracker
    templates: list[SqlTemplate]
    profiles: list[TemplateProfile]
    generation_report: TemplateGenerationReport
    refinement: RefinementResult | None
    # None when the run aborted before the search stage.
    search: SearchResult | None
    elapsed_seconds: float
    distance_trace: list[tuple[float, float]] = field(default_factory=list)
    llm_usage: dict = field(default_factory=dict)
    # Directly-measured stage boundaries (no back-computation from traces).
    stage_seconds: dict[str, float] = field(default_factory=dict)
    # The run's Telemetry: trace tree (telemetry.tracer.roots) and metrics
    # (telemetry.metrics.snapshot()).
    telemetry: Telemetry | None = None
    # Aggregated operator-level executor profile (ExecProfileCollector
    # snapshot) when the run was armed with config.profile=True, else None.
    operator_profiles: dict | None = None
    # Graceful degradation: a stage abort (budget exhausted, retries
    # exhausted, circuit stuck open) yields this partial-but-valid result
    # instead of an exception.  Resume from `checkpoint_path` if set.
    aborted: bool = False
    abort_stage: str | None = None
    abort_reason: str | None = None
    checkpoint_path: str | None = None
    # Templates benched by the resource governor (repro.governor): who,
    # why, after how many strikes, and the bindings that tripped the limit.
    quarantined: list[QuarantineRecord] = field(default_factory=list)

    @property
    def final_distance(self) -> float:
        return self.tracker.wasserstein

    @property
    def complete(self) -> bool:
        return not self.aborted and self.tracker.complete

    def fingerprint(self) -> dict:
        """The run's semantic content, minus anything wall-clock dependent.

        Two runs with identical fingerprints produced the same workload —
        the equality the chaos campaign asserts between an uninterrupted
        run and a killed-then-resumed one.
        """
        return {
            "queries": [q.to_json() for q in self.workload.queries],
            "templates": [
                {"template_id": t.template_id, "sql": t.sql} for t in self.templates
            ],
            "profiles": [
                {"template_id": p.template.template_id, "costs": p.costs}
                for p in self.profiles
            ],
            "final_distance": self.tracker.wasserstein,
            "llm_usage": dict(self.llm_usage),
            "aborted": self.aborted,
            "abort_stage": self.abort_stage,
            "complete": self.complete,
            "quarantined": [r.to_dict() for r in self.quarantined],
        }

    def fingerprint_json(self) -> str:
        return canonical_json(self.fingerprint())

    @property
    def num_templates(self) -> int:
        return len(self.profiles)

    @property
    def setup_seconds(self) -> float:
        """Time spent before the predicate search started."""
        return sum(
            seconds
            for stage, seconds in self.stage_seconds.items()
            if stage != "search"
        )


def _substrate_totals(telemetry: Telemetry) -> dict[str, float]:
    """Current LLM/engine counter totals, for per-stage deltas."""
    metrics = telemetry.metrics
    return {
        "llm_calls": metrics.total("llm.calls"),
        "llm_tokens": (
            metrics.total("llm.tokens.prompt")
            + metrics.total("llm.tokens.completion")
        ),
        "db_calls": (
            metrics.total("sqldb.explain.calls")
            + metrics.total("sqldb.execute.calls")
        ),
        "governor_strikes": metrics.total("governor.strikes"),
        "governor_cancellations": (
            metrics.total("governor.watchdog_cancellations")
        ),
        "governor_quarantines": metrics.total("governor.quarantines"),
    }


class SQLBarber:
    """Customized + realistic SQL workload generation (the paper's system)."""

    def __init__(
        self,
        db: Database,
        llm: LLMClient | None = None,
        config: BarberConfig | None = None,
        sinks: list | None = None,
    ):
        self.db = db
        self.config = config or BarberConfig()
        self.llm = llm if llm is not None else SimulatedLLM(seed=self.config.seed)
        if (
            self.config.max_tokens is not None
            or self.config.max_cost_dollars is not None
        ) and not isinstance(self.llm, ResilientLLMClient):
            # Budgeted runs get the resilient wrapper automatically so the
            # ceilings are enforced on every call path.
            self.llm = ResilientLLMClient(
                self.llm,
                max_tokens=self.config.max_tokens,
                max_cost_dollars=self.config.max_cost_dollars,
                jitter_seed=self.config.seed + 101,
            )
        # Apply the executor knobs to the database the run will use: the
        # vectorized path (and its batch size) is a per-database setting.
        self.db.set_vectorized(
            self.config.use_vectorized, batch_size=self.config.vec_batch_size
        )
        self.schema = schema_payload(db)
        # Telemetry sinks attached to every generate_workload run (a fresh
        # Telemetry is created per run; sinks are closed when it finishes,
        # so file-backed sinks serve exactly one run).
        self.sinks = list(sinks) if sinks else []

    # -- component factories (overridable in ablations) -----------------------------

    def template_generator(self) -> CustomizedTemplateGenerator:
        return CustomizedTemplateGenerator(self.db, self.llm, self.config)

    def profiler(self, cost_type: str) -> TemplateProfiler:
        return TemplateProfiler(self.db, self.config, cost_metric=cost_type)

    # -- public API ---------------------------------------------------------------------

    def generate_templates(
        self, specs: list[TemplateSpec]
    ) -> tuple[list[SqlTemplate], TemplateGenerationReport]:
        """Section 4 only: customized template generation with Algorithm 1."""
        return self.template_generator().generate_many(specs)

    @contextmanager
    def _stage(self, telemetry: Telemetry, name: str, stage_seconds: dict):
        """One `stage:<name>` span, recording duration + substrate deltas."""
        before = _substrate_totals(telemetry)
        before_peak = telemetry.metrics.max_gauge("governor.peak_bytes")
        telemetry.event("stage_started", stage=name)
        started = time.perf_counter()
        with telemetry.span(f"stage:{name}") as span:
            try:
                yield span
            finally:
                after = _substrate_totals(telemetry)
                stage_seconds[name] = time.perf_counter() - started
                telemetry.event(
                    "stage_finished", stage=name, seconds=stage_seconds[name]
                )
                deltas = {key: after[key] - before[key] for key in after}
                # Governor attributes appear only on stages with governor
                # activity, so ungoverned runs keep their pre-governor spans.
                for key in [k for k in deltas if k.startswith("governor_")]:
                    if not deltas[key]:
                        del deltas[key]
                span.set(**deltas)
                after_peak = telemetry.metrics.max_gauge(
                    "governor.peak_bytes"
                )
                if after_peak is not None and after_peak != before_peak:
                    span.set(governor_peak_bytes=int(after_peak))

    def generate_workload(
        self,
        specs: list[TemplateSpec],
        distribution: CostDistribution,
        templates: list[SqlTemplate] | None = None,
        time_budget_seconds: float | None = None,
        telemetry: Telemetry | None = None,
        checkpoint_dir: str | None = None,
        resume: bool = False,
        on_checkpoint_save=None,
        subscribers=(),
    ) -> WorkloadResult:
        """The full pipeline: templates -> profile -> refine/prune -> BO search.

        Pre-generated *templates* can be supplied to skip Section 4 (used by
        ablations and by callers that iterate on the same template pool).
        A caller-supplied *telemetry* overrides the per-run default (fresh
        :class:`~repro.obs.Telemetry` over the constructor's sinks).

        With *checkpoint_dir* set, the run saves its state after every
        stage (and every ``config.checkpoint_every_templates`` templates
        inside profiling, every iteration inside refinement) to a
        content-hashed JSON file.  ``resume=True`` picks the run up from
        that file, bit-identically: a killed-and-resumed run fingerprints
        the same as an uninterrupted one.  *on_checkpoint_save* is a hook
        called after each durable save (the chaos harness's kill switch).
        """
        manager = None
        if checkpoint_dir is not None:
            # lock_owner turns on directory locking: two processes resuming
            # the same checkpoint directory is a config error, caught here
            # as LockHeld instead of as silently interleaved writes.
            manager = CheckpointManager(
                checkpoint_dir,
                run_key(specs, distribution, self.config, self.db.name),
                on_save=on_checkpoint_save,
                lock_owner=f"barber:{self.db.name}",
            )
        run_telemetry = (
            telemetry
            if telemetry is not None
            else Telemetry(
                sinks=self.sinks,
                profile=self.config.profile,
                subscribers=subscribers,
            )
        )
        # finish() in a finally: abort paths — chaos InjectedCrash (a
        # BaseException from the checkpoint-save hook), BudgetExhausted
        # escaping a stage — must still flush and close the sinks, so a
        # killed run's trace file ends on a complete record.
        try:
            with use_telemetry(run_telemetry):
                result = self._generate_workload(
                    specs,
                    distribution,
                    templates,
                    time_budget_seconds,
                    run_telemetry,
                    manager,
                    resume,
                )
        finally:
            run_telemetry.finish()
            # Release the checkpoint-directory lock on every exit path —
            # including chaos InjectedCrash (a BaseException).  A *real*
            # process death skips this, leaving a lockfile with a dead pid
            # that the next acquire detects and takes over.
            if manager is not None:
                manager.close()
        result.telemetry = run_telemetry
        collector = getattr(run_telemetry, "profiler", None)
        if collector is not None:
            result.operator_profiles = collector.snapshot()
        return result

    def _generate_workload(
        self,
        specs: list[TemplateSpec],
        distribution: CostDistribution,
        templates: list[SqlTemplate] | None,
        time_budget_seconds: float | None,
        telemetry: Telemetry,
        manager: CheckpointManager | None = None,
        resume: bool = False,
    ) -> WorkloadResult:
        started = time.perf_counter()
        budget = (
            time_budget_seconds
            if time_budget_seconds is not None
            else self.config.time_budget_seconds
        )
        stage_seconds: dict[str, float] = {}

        state = manager.load() if (manager is not None and resume) else None
        resume_stage = state.get("stage") if state is not None else None
        collector = getattr(telemetry, "profiler", None)
        if (
            state is not None
            and collector is not None
            and state.get("obs_profile") is not None
        ):
            # Restore the operator-profile aggregate saved with the
            # checkpoint, so a killed-and-resumed run's profile fingerprint
            # matches an uninterrupted one's.
            from repro.obs import ExecProfileCollector

            collector = ExecProfileCollector.from_state(state["obs_profile"])
            telemetry.profiler = collector
        if state is not None:
            # Rewind the LLM to the exact stream positions and spend the
            # saved run had — the resumed trajectory must coincide with an
            # uninterrupted run's, call for call.
            if state.get("llm_rng") is not None:
                self.llm.set_rng_state(state["llm_rng"])
            restore_usage(self.llm.usage, state["usage"])

        aborted = False
        abort_stage: str | None = None
        abort_reason: str | None = None
        report = TemplateGenerationReport()
        profiles: list[TemplateProfile] = []
        refinement: RefinementResult | None = None
        search_result: SearchResult | None = None
        # Quarantine records accumulate across stages and ride in every
        # checkpoint save, so a resumed run skips known-bad templates and
        # fingerprints identically to an uninterrupted one.
        quarantined: list[QuarantineRecord] = (
            [QuarantineRecord.from_dict(r) for r in state.get("quarantined", [])]
            if state is not None
            else []
        )

        def abort(stage: str, error: Exception) -> None:
            nonlocal aborted, abort_stage, abort_reason
            aborted = True
            abort_stage = stage
            abort_reason = f"{type(error).__name__}: {error}"
            if telemetry.enabled:
                telemetry.count(
                    "pipeline.aborted", stage=stage, error=type(error).__name__
                )

        def save(stage: str, **extra) -> None:
            if manager is None:
                return
            manager.save(
                {
                    "stage": stage,
                    "templates": [template_to_state(t) for t in (templates or [])],
                    "traces": [trace_to_state(t) for t in report.traces],
                    "llm_rng": self.llm.rng_state(),
                    "usage": usage_to_state(self.llm.usage),
                    "quarantined": [r.to_dict() for r in quarantined],
                    "obs_profile": (
                        collector.to_state() if collector is not None else None
                    ),
                    **extra,
                }
            )
            telemetry.event(
                "checkpoint_saved",
                stage=stage,
                templates_done=len(templates or []),
            )

        with telemetry.span(
            "generate_workload",
            db=self.db.name,
            target_queries=distribution.total_queries,
            num_intervals=distribution.num_intervals,
            cost_type=distribution.cost_type,
            num_specs=len(specs),
            resumed=state is not None,
        ) as root:
            with self._stage(telemetry, "templates", stage_seconds) as span:
                if state is not None:
                    templates = [template_from_state(t) for t in state["templates"]]
                    report = TemplateGenerationReport(
                        traces=[trace_from_state(t) for t in state["traces"]]
                    )
                    span.set(resumed=True)
                elif templates is None:
                    try:
                        templates, report = self.generate_templates(specs)
                    except PIPELINE_ABORT_ERRORS as error:
                        templates = []
                        abort("templates", error)
                span.set(
                    templates=len(templates or []),
                    alignment_accuracy=round(report.alignment_accuracy, 4),
                )
                if not aborted and state is None:
                    save("templates")

            with self._stage(telemetry, "profile", stage_seconds) as span:
                profiler = self.profiler(distribution.cost_type)
                samples = profiler.profile_samples_per_template(
                    distribution.total_queries, max(len(templates or []), 1)
                )
                if aborted:
                    span.set(skipped=True)
                elif resume_stage in ("refine", "refined"):
                    # Profiling finished in the saved run; the refine stage
                    # below restores the pool it needs.
                    span.set(resumed=True)
                elif resume_stage == "profiled":
                    profiles = [
                        profile_from_state(p, profiler)
                        for p in state["profiles"]
                    ]
                    span.set(resumed=True, usable=len(profiles))
                else:
                    raw: list[TemplateProfile] = []
                    position = 0
                    if resume_stage == "profile":
                        progress = state["profile_progress"]
                        raw = [
                            profile_from_state(p, profiler)
                            for p in progress["profiles"]
                        ]
                        position = int(progress["position"])
                    # Per-template seeding makes chunked profiling
                    # bit-identical to the one-shot call, so checkpointed
                    # runs pay nothing for the finer save granularity.
                    chunk = (
                        max(int(self.config.checkpoint_every_templates), 1)
                        if manager is not None
                        else max(len(templates), 1)
                    )
                    while position < len(templates):
                        batch = templates[position : position + chunk]
                        raw.extend(profiler.profile_many(batch, samples))
                        position += len(batch)
                        if manager is not None and position < len(templates):
                            save(
                                "profile",
                                profile_progress={
                                    "position": position,
                                    "profiles": [
                                        profile_to_state(p) for p in raw
                                    ],
                                },
                            )
                    # Quarantine records are derived from the complete raw
                    # pool — on a mid-profile resume the restored profiles
                    # carry their strike bookkeeping, so this rebuild is
                    # exact and never double-counts.
                    quarantined[:] = [
                        QuarantineRecord.from_profile(p)
                        for p in raw
                        if p.quarantined
                    ]
                    profiles = [p for p in raw if p.is_usable]
                    span.set(samples_per_template=samples, usable=len(profiles))
                    if quarantined:
                        span.set(quarantined=len(quarantined))
                    save(
                        "profiled",
                        profiles=[profile_to_state(p) for p in profiles],
                    )

            with self._stage(telemetry, "refine", stage_seconds) as span:
                if aborted:
                    span.set(skipped=True)
                elif resume_stage == "refined":
                    if state.get("refine") is not None:
                        refinement = refinement_from_state(
                            state["refine"], profiler
                        )
                        profiles = refinement.profiles
                    else:
                        profiles = [
                            profile_from_state(p, profiler)
                            for p in state["profiles"]
                        ]
                    span.set(resumed=True)
                elif self.config.enable_refinement:
                    refiner = TemplateRefiner(
                        self.llm, profiler, self.schema, self.config
                    )
                    specs_by_id = {s.spec_id: s for s in specs}
                    resume_refine = (
                        state["refine"] if resume_stage == "refine" else None
                    )
                    checkpoint_cb = None
                    if manager is not None:
                        def checkpoint_cb(refine_state: dict) -> None:
                            save("refine", refine=refine_state)
                    try:
                        refinement = refiner.refine(
                            profiles,
                            distribution,
                            samples,
                            specs_by_id=specs_by_id,
                            checkpoint=checkpoint_cb,
                            resume_state=resume_refine,
                        )
                    except PIPELINE_ABORT_ERRORS as error:
                        abort("refine", error)
                    else:
                        profiles = refinement.profiles
                        for record in refinement.quarantined:
                            # A mid-refine resume restores records that are
                            # already on the run-level list; only new ones
                            # are appended, keeping order deterministic.
                            if not any(
                                q.template_id == record.template_id
                                and q.stage == record.stage
                                for q in quarantined
                            ):
                                quarantined.append(record)
                        span.set(
                            refine_calls=refinement.refine_calls,
                            accepted=len(refinement.accepted),
                            pruned=refinement.pruned,
                        )
                        if refinement.quarantined:
                            span.set(
                                quarantined=len(refinement.quarantined)
                            )
                        save(
                            "refined",
                            profiles=[],
                            refine={
                                "profiles": [
                                    profile_to_state(p) for p in profiles
                                ],
                                "accepted": [
                                    template_to_state(t)
                                    for t in refinement.accepted
                                ],
                                "pruned": refinement.pruned,
                                "refine_calls": refinement.refine_calls,
                                "quarantined": [
                                    r.to_dict()
                                    for r in refinement.quarantined
                                ],
                            },
                        )
                else:
                    span.set(skipped=True)
                    save(
                        "refined",
                        profiles=[profile_to_state(p) for p in profiles],
                        refine=None,
                    )

            with self._stage(telemetry, "search", stage_seconds) as span:
                if aborted:
                    span.set(skipped=True)
                else:
                    search = PredicateSearch(profiler, self.config)
                    remaining = None
                    if budget is not None:
                        remaining = max(
                            budget - (time.perf_counter() - started), 1.0
                        )
                    search_result = search.run(
                        profiles, distribution, deadline=remaining
                    )
                    span.set(
                        queries=len(search_result.queries),
                        evaluations=search_result.evaluations,
                        final_distance=round(search_result.final_distance, 4),
                    )

            elapsed = time.perf_counter() - started
            root.set(
                elapsed_seconds=round(elapsed, 6),
                complete=bool(
                    search_result is not None and search_result.complete
                ),
                aborted=aborted,
            )

        cache = self.db.explain_cache.stats()
        telemetry.event(
            "cache_stats",
            hits=cache["hits"],
            misses=cache["misses"],
            evictions=cache["evictions"],
            size=cache["size"],
        )
        # Stage boundaries are measured directly: the search trace offset is
        # everything that ran before the search stage started.
        setup = sum(stage_seconds[s] for s in PIPELINE_STAGES if s != "search")
        if search_result is not None:
            trace = [(setup + t, d) for t, d in search_result.trace]
            workload = Workload(
                queries=search_result.queries, name=distribution.name
            )
            tracker = search_result.tracker
        else:
            trace = []
            workload = Workload(queries=[], name=distribution.name)
            tracker = DistributionTracker(target=distribution)
        if self.config.workload_mix is not None and workload.queries:
            # Deterministic read/write interleave: a seeded post-pass swaps
            # a fraction of the searched SELECTs for grammar-built DML,
            # costed via EXPLAIN (estimates only — nothing executes here,
            # so resumed and parallel runs fingerprint identically).
            from repro.workload.mixer import WorkloadMixer

            workload = WorkloadMixer(self.db, self.config.seed).mix(
                workload, self.config.workload_mix
            )
            if telemetry.enabled:
                telemetry.count(
                    "workload.mixed_dml",
                    value=sum(
                        1
                        for q in workload.queries
                        if (q.template_id or "").startswith("mix_")
                    ),
                )
        return WorkloadResult(
            workload=workload,
            tracker=tracker,
            templates=list(templates or []),
            profiles=profiles,
            generation_report=report,
            refinement=refinement,
            search=search_result,
            elapsed_seconds=elapsed,
            distance_trace=trace,
            llm_usage=self.llm.usage.snapshot(),
            stage_seconds=stage_seconds,
            aborted=aborted,
            abort_stage=abort_stage,
            abort_reason=abort_reason,
            checkpoint_path=str(manager.path) if manager is not None else None,
            quarantined=quarantined,
        )
