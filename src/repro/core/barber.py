"""The SQLBarber facade: the declarative end-to-end interface.

Typical use::

    from repro.core import SQLBarber
    from repro.datasets import build_tpch
    from repro.workload import CostDistribution, TemplateSpec

    barber = SQLBarber(build_tpch())
    result = barber.generate_workload(
        specs=[TemplateSpec.from_natural_language("2 joins and one aggregation")],
        distribution=CostDistribution.uniform(0, 10_000, 200, 10),
    )
    result.workload          # the generated queries
    result.tracker.wasserstein  # alignment with the target distribution
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.llm import LLMClient, SimulatedLLM
from repro.sqldb import Database
from repro.workload import (
    CostDistribution,
    DistributionTracker,
    SqlTemplate,
    TemplateSpec,
    Workload,
)
from .config import BarberConfig
from .predicate_search import PredicateSearch, SearchResult
from .profiler import TemplateProfile, TemplateProfiler
from .refiner import RefinementResult, TemplateRefiner
from .schema_summary import schema_payload
from .template_generator import CustomizedTemplateGenerator, TemplateGenerationReport


@dataclass
class WorkloadResult:
    """Everything produced by one end-to-end SQLBarber run."""

    workload: Workload
    tracker: DistributionTracker
    templates: list[SqlTemplate]
    profiles: list[TemplateProfile]
    generation_report: TemplateGenerationReport
    refinement: RefinementResult | None
    search: SearchResult
    elapsed_seconds: float
    distance_trace: list[tuple[float, float]] = field(default_factory=list)
    llm_usage: dict = field(default_factory=dict)

    @property
    def final_distance(self) -> float:
        return self.tracker.wasserstein

    @property
    def complete(self) -> bool:
        return self.tracker.complete

    @property
    def num_templates(self) -> int:
        return len(self.profiles)


class SQLBarber:
    """Customized + realistic SQL workload generation (the paper's system)."""

    def __init__(
        self,
        db: Database,
        llm: LLMClient | None = None,
        config: BarberConfig | None = None,
    ):
        self.db = db
        self.config = config or BarberConfig()
        self.llm = llm if llm is not None else SimulatedLLM(seed=self.config.seed)
        self.schema = schema_payload(db)

    # -- component factories (overridable in ablations) -----------------------------

    def template_generator(self) -> CustomizedTemplateGenerator:
        return CustomizedTemplateGenerator(self.db, self.llm, self.config)

    def profiler(self, cost_type: str) -> TemplateProfiler:
        return TemplateProfiler(self.db, self.config, cost_metric=cost_type)

    # -- public API ---------------------------------------------------------------------

    def generate_templates(
        self, specs: list[TemplateSpec]
    ) -> tuple[list[SqlTemplate], TemplateGenerationReport]:
        """Section 4 only: customized template generation with Algorithm 1."""
        return self.template_generator().generate_many(specs)

    def generate_workload(
        self,
        specs: list[TemplateSpec],
        distribution: CostDistribution,
        templates: list[SqlTemplate] | None = None,
        time_budget_seconds: float | None = None,
    ) -> WorkloadResult:
        """The full pipeline: templates -> profile -> refine/prune -> BO search.

        Pre-generated *templates* can be supplied to skip Section 4 (used by
        ablations and by callers that iterate on the same template pool).
        """
        started = time.perf_counter()
        budget = (
            time_budget_seconds
            if time_budget_seconds is not None
            else self.config.time_budget_seconds
        )

        if templates is None:
            templates, report = self.generate_templates(specs)
        else:
            report = TemplateGenerationReport()

        profiler = self.profiler(distribution.cost_type)
        samples = profiler.profile_samples_per_template(
            distribution.total_queries, max(len(templates), 1)
        )
        profiles = [profiler.profile(t, samples) for t in templates]
        profiles = [p for p in profiles if p.is_usable]

        refinement: RefinementResult | None = None
        if self.config.enable_refinement:
            refiner = TemplateRefiner(self.llm, profiler, self.schema, self.config)
            specs_by_id = {s.spec_id: s for s in specs}
            refinement = refiner.refine(
                profiles, distribution, samples, specs_by_id=specs_by_id
            )
            profiles = refinement.profiles

        search = PredicateSearch(profiler, self.config)
        remaining = None
        if budget is not None:
            remaining = max(budget - (time.perf_counter() - started), 1.0)
        search_result = search.run(profiles, distribution, deadline=remaining)

        elapsed = time.perf_counter() - started
        setup = elapsed - (search_result.trace[-1][0] if search_result.trace else 0.0)
        trace = [(setup + t, d) for t, d in search_result.trace]
        workload = Workload(queries=search_result.queries, name=distribution.name)
        return WorkloadResult(
            workload=workload,
            tracker=search_result.tracker,
            templates=templates,
            profiles=profiles,
            generation_report=report,
            refinement=refinement,
            search=search_result,
            elapsed_seconds=elapsed,
            distance_trace=trace,
            llm_usage=self.llm.usage.snapshot(),
        )
