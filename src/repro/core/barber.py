"""The SQLBarber facade: the declarative end-to-end interface.

Typical use::

    from repro.core import SQLBarber
    from repro.datasets import build_tpch
    from repro.workload import CostDistribution, TemplateSpec

    barber = SQLBarber(build_tpch())
    result = barber.generate_workload(
        specs=[TemplateSpec.from_natural_language("2 joins and one aggregation")],
        distribution=CostDistribution.uniform(0, 10_000, 200, 10),
    )
    result.workload          # the generated queries
    result.tracker.wasserstein  # alignment with the target distribution
    result.telemetry         # trace tree + metrics for the run
    result.stage_seconds     # {"templates": ..., "profile": ..., ...}

Every run carries a :class:`~repro.obs.Telemetry`: four stage spans
(``stage:templates`` / ``stage:profile`` / ``stage:refine`` /
``stage:search``) under one ``generate_workload`` root, with per-stage
LLM-token and engine-call deltas attached as span attributes.  Sinks passed
to the constructor (e.g. :class:`~repro.obs.JsonlSink`) receive every span
as it closes plus a final metrics snapshot.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.llm import LLMClient, SimulatedLLM
from repro.obs import Telemetry, use_telemetry
from repro.sqldb import Database
from repro.workload import (
    CostDistribution,
    DistributionTracker,
    SqlTemplate,
    TemplateSpec,
    Workload,
)
from .config import BarberConfig
from .predicate_search import PredicateSearch, SearchResult
from .profiler import TemplateProfile, TemplateProfiler
from .refiner import RefinementResult, TemplateRefiner
from .schema_summary import schema_payload
from .template_generator import CustomizedTemplateGenerator, TemplateGenerationReport

# Pipeline stages in execution order; each gets a `stage:<name>` span.
PIPELINE_STAGES = ("templates", "profile", "refine", "search")


@dataclass
class WorkloadResult:
    """Everything produced by one end-to-end SQLBarber run."""

    workload: Workload
    tracker: DistributionTracker
    templates: list[SqlTemplate]
    profiles: list[TemplateProfile]
    generation_report: TemplateGenerationReport
    refinement: RefinementResult | None
    search: SearchResult
    elapsed_seconds: float
    distance_trace: list[tuple[float, float]] = field(default_factory=list)
    llm_usage: dict = field(default_factory=dict)
    # Directly-measured stage boundaries (no back-computation from traces).
    stage_seconds: dict[str, float] = field(default_factory=dict)
    # The run's Telemetry: trace tree (telemetry.tracer.roots) and metrics
    # (telemetry.metrics.snapshot()).
    telemetry: Telemetry | None = None

    @property
    def final_distance(self) -> float:
        return self.tracker.wasserstein

    @property
    def complete(self) -> bool:
        return self.tracker.complete

    @property
    def num_templates(self) -> int:
        return len(self.profiles)

    @property
    def setup_seconds(self) -> float:
        """Time spent before the predicate search started."""
        return sum(
            seconds
            for stage, seconds in self.stage_seconds.items()
            if stage != "search"
        )


def _substrate_totals(telemetry: Telemetry) -> dict[str, float]:
    """Current LLM/engine counter totals, for per-stage deltas."""
    metrics = telemetry.metrics
    return {
        "llm_calls": metrics.total("llm.calls"),
        "llm_tokens": (
            metrics.total("llm.tokens.prompt")
            + metrics.total("llm.tokens.completion")
        ),
        "db_calls": (
            metrics.total("sqldb.explain.calls")
            + metrics.total("sqldb.execute.calls")
        ),
    }


class SQLBarber:
    """Customized + realistic SQL workload generation (the paper's system)."""

    def __init__(
        self,
        db: Database,
        llm: LLMClient | None = None,
        config: BarberConfig | None = None,
        sinks: list | None = None,
    ):
        self.db = db
        self.config = config or BarberConfig()
        self.llm = llm if llm is not None else SimulatedLLM(seed=self.config.seed)
        self.schema = schema_payload(db)
        # Telemetry sinks attached to every generate_workload run (a fresh
        # Telemetry is created per run; sinks are closed when it finishes,
        # so file-backed sinks serve exactly one run).
        self.sinks = list(sinks) if sinks else []

    # -- component factories (overridable in ablations) -----------------------------

    def template_generator(self) -> CustomizedTemplateGenerator:
        return CustomizedTemplateGenerator(self.db, self.llm, self.config)

    def profiler(self, cost_type: str) -> TemplateProfiler:
        return TemplateProfiler(self.db, self.config, cost_metric=cost_type)

    # -- public API ---------------------------------------------------------------------

    def generate_templates(
        self, specs: list[TemplateSpec]
    ) -> tuple[list[SqlTemplate], TemplateGenerationReport]:
        """Section 4 only: customized template generation with Algorithm 1."""
        return self.template_generator().generate_many(specs)

    @contextmanager
    def _stage(self, telemetry: Telemetry, name: str, stage_seconds: dict):
        """One `stage:<name>` span, recording duration + substrate deltas."""
        before = _substrate_totals(telemetry)
        started = time.perf_counter()
        with telemetry.span(f"stage:{name}") as span:
            try:
                yield span
            finally:
                after = _substrate_totals(telemetry)
                stage_seconds[name] = time.perf_counter() - started
                span.set(
                    **{key: after[key] - before[key] for key in after}
                )

    def generate_workload(
        self,
        specs: list[TemplateSpec],
        distribution: CostDistribution,
        templates: list[SqlTemplate] | None = None,
        time_budget_seconds: float | None = None,
        telemetry: Telemetry | None = None,
    ) -> WorkloadResult:
        """The full pipeline: templates -> profile -> refine/prune -> BO search.

        Pre-generated *templates* can be supplied to skip Section 4 (used by
        ablations and by callers that iterate on the same template pool).
        A caller-supplied *telemetry* overrides the per-run default (fresh
        :class:`~repro.obs.Telemetry` over the constructor's sinks).
        """
        run_telemetry = (
            telemetry if telemetry is not None else Telemetry(sinks=self.sinks)
        )
        with use_telemetry(run_telemetry):
            result = self._generate_workload(
                specs, distribution, templates, time_budget_seconds, run_telemetry
            )
        run_telemetry.finish()
        result.telemetry = run_telemetry
        return result

    def _generate_workload(
        self,
        specs: list[TemplateSpec],
        distribution: CostDistribution,
        templates: list[SqlTemplate] | None,
        time_budget_seconds: float | None,
        telemetry: Telemetry,
    ) -> WorkloadResult:
        started = time.perf_counter()
        budget = (
            time_budget_seconds
            if time_budget_seconds is not None
            else self.config.time_budget_seconds
        )
        stage_seconds: dict[str, float] = {}

        with telemetry.span(
            "generate_workload",
            db=self.db.name,
            target_queries=distribution.total_queries,
            num_intervals=distribution.num_intervals,
            cost_type=distribution.cost_type,
            num_specs=len(specs),
        ) as root:
            with self._stage(telemetry, "templates", stage_seconds) as span:
                if templates is None:
                    templates, report = self.generate_templates(specs)
                else:
                    report = TemplateGenerationReport()
                span.set(
                    templates=len(templates),
                    alignment_accuracy=round(report.alignment_accuracy, 4),
                )

            with self._stage(telemetry, "profile", stage_seconds) as span:
                profiler = self.profiler(distribution.cost_type)
                samples = profiler.profile_samples_per_template(
                    distribution.total_queries, max(len(templates), 1)
                )
                profiles = profiler.profile_many(templates, samples)
                profiles = [p for p in profiles if p.is_usable]
                span.set(samples_per_template=samples, usable=len(profiles))

            refinement: RefinementResult | None = None
            with self._stage(telemetry, "refine", stage_seconds) as span:
                if self.config.enable_refinement:
                    refiner = TemplateRefiner(
                        self.llm, profiler, self.schema, self.config
                    )
                    specs_by_id = {s.spec_id: s for s in specs}
                    refinement = refiner.refine(
                        profiles, distribution, samples, specs_by_id=specs_by_id
                    )
                    profiles = refinement.profiles
                    span.set(
                        refine_calls=refinement.refine_calls,
                        accepted=len(refinement.accepted),
                        pruned=refinement.pruned,
                    )
                else:
                    span.set(skipped=True)

            with self._stage(telemetry, "search", stage_seconds) as span:
                search = PredicateSearch(profiler, self.config)
                remaining = None
                if budget is not None:
                    remaining = max(
                        budget - (time.perf_counter() - started), 1.0
                    )
                search_result = search.run(
                    profiles, distribution, deadline=remaining
                )
                span.set(
                    queries=len(search_result.queries),
                    evaluations=search_result.evaluations,
                    final_distance=round(search_result.final_distance, 4),
                )

            elapsed = time.perf_counter() - started
            root.set(
                elapsed_seconds=round(elapsed, 6),
                complete=search_result.complete,
            )

        # Stage boundaries are measured directly: the search trace offset is
        # everything that ran before the search stage started.
        setup = sum(stage_seconds[s] for s in PIPELINE_STAGES if s != "search")
        trace = [(setup + t, d) for t, d in search_result.trace]
        workload = Workload(queries=search_result.queries, name=distribution.name)
        return WorkloadResult(
            workload=workload,
            tracker=search_result.tracker,
            templates=templates,
            profiles=profiles,
            generation_report=report,
            refinement=refinement,
            search=search_result,
            elapsed_seconds=elapsed,
            distance_trace=trace,
            llm_usage=self.llm.usage.snapshot(),
            stage_seconds=stage_seconds,
        )
