"""Algorithm 1: iterative template check and rewrite.

Each iteration first asks the LLM whether the template satisfies the user
specification (phase 1, ``ValidateSemantics`` → ``FixSemantics``) and then
asks the database whether it executes (phase 2, ``ValidateSyntax`` →
``FixExecution``).  The loop ends when both checks pass or the iteration
budget is exhausted.  Every iteration's ground-truth status is recorded so
the rewrite-convergence analysis (paper Figure 8a) can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.llm import (
    LLMClient,
    extract_json,
    extract_sql,
    fix_execution_prompt,
    fix_semantics_prompt,
    validate_semantics_prompt,
)
from repro.obs import current as current_telemetry
from repro.sqldb import Database
from repro.workload import TemplateSpec, check_template
from .config import BarberConfig
from .validation import template_error


@dataclass(frozen=True)
class AttemptStatus:
    """Ground-truth template status at the start of one iteration."""

    spec_ok: bool
    syntax_ok: bool

    @property
    def fully_ok(self) -> bool:
        return self.spec_ok and self.syntax_ok


@dataclass
class RewriteTrace:
    """Per-template record of the check-and-rewrite loop."""

    spec_id: str
    attempts: list[AttemptStatus] = field(default_factory=list)
    rewrites: int = 0
    final_sql: str = ""
    final_ok: bool = False

    def first_spec_ok_attempt(self) -> int | None:
        for index, status in enumerate(self.attempts):
            if status.spec_ok:
                return index
        return None

    def first_syntax_ok_attempt(self) -> int | None:
        for index, status in enumerate(self.attempts):
            if status.syntax_ok:
                return index
        return None


def spec_to_payload(spec: TemplateSpec) -> dict:
    return {
        "spec_id": spec.spec_id,
        "num_tables": spec.num_tables,
        "num_joins": spec.num_joins,
        "num_aggregations": spec.num_aggregations,
        "num_predicates": spec.num_predicates,
        "require_group_by": spec.require_group_by,
        "require_nested_subquery": spec.require_nested_subquery,
        "require_order_by": spec.require_order_by,
        "require_limit": spec.require_limit,
        "require_complex_scalar": spec.require_complex_scalar,
        "require_union": spec.require_union,
    }


def check_and_rewrite(
    sql: str,
    spec: TemplateSpec,
    db: Database,
    llm: LLMClient,
    schema: dict,
    config: BarberConfig,
) -> RewriteTrace:
    """Run Algorithm 1 on one candidate template."""
    telemetry = current_telemetry()
    trace = RewriteTrace(spec_id=spec.spec_id)
    spec_payload = spec_to_payload(spec)
    current = sql
    for iteration in range(config.max_rewrite_iterations):
        truth_spec_ok, _ = check_template(current, spec)
        truth_syntax_ok = template_error(current, db, config) is None
        trace.attempts.append(AttemptStatus(truth_spec_ok, truth_syntax_ok))
        telemetry.count("generator.attempts")

        # Phase 1: specification compliance, judged and fixed by the LLM.
        satisfied, violations = _llm_validate(current, spec, llm, schema, spec_payload)
        if not satisfied:
            current = _llm_fix_semantics(
                current, spec, violations, llm, schema, spec_payload, iteration
            )
            trace.rewrites += 1
            telemetry.count("generator.rewrites", phase="semantics")

        # Phase 2: executability, judged by the DBMS and fixed by the LLM.
        error = template_error(current, db, config)
        if error is not None:
            current = _llm_fix_execution(
                current, error, llm, schema, spec_payload, iteration
            )
            trace.rewrites += 1
            telemetry.count("generator.rewrites", phase="execution")
            error = template_error(current, db, config)

        if satisfied and error is None:
            break

    trace.final_sql = current
    final_spec_ok, _ = check_template(current, spec)
    trace.final_ok = final_spec_ok and template_error(current, db, config) is None
    return trace


def _llm_validate(
    sql: str, spec: TemplateSpec, llm: LLMClient, schema: dict, spec_payload: dict
) -> tuple[bool, list[str]]:
    prompt = validate_semantics_prompt(
        sql,
        spec.to_prompt_text(),
        {
            "task": "validate_semantics",
            "schema": schema,
            "template": sql,
            "spec": spec_payload,
        },
    )
    response = llm.complete(prompt, task="validate_semantics")
    try:
        verdict = extract_json(response.text)
        return bool(verdict.get("satisfied")), [
            str(v) for v in verdict.get("violations", [])
        ]
    except (ValueError, TypeError):
        # Unparseable judgement: treat as unsatisfied with no detail.
        return False, ["validator response unparseable"]


def _llm_fix_semantics(
    sql: str,
    spec: TemplateSpec,
    violations: list[str],
    llm: LLMClient,
    schema: dict,
    spec_payload: dict,
    iteration: int,
) -> str:
    prompt = fix_semantics_prompt(
        sql,
        spec.to_prompt_text(),
        violations,
        {
            "task": "fix_semantics",
            "schema": schema,
            "template": sql,
            "spec": spec_payload,
            "violations": violations,
            "attempt": iteration + 1,
        },
    )
    response = llm.complete(prompt, task="fix_semantics")
    fixed = extract_sql(response.text)
    return fixed or sql


def _llm_fix_execution(
    sql: str,
    error: str,
    llm: LLMClient,
    schema: dict,
    spec_payload: dict,
    iteration: int,
) -> str:
    prompt = fix_execution_prompt(
        sql,
        error,
        {
            "task": "fix_execution",
            "schema": schema,
            "template": sql,
            "error": error,
            "spec": spec_payload,
            "attempt": iteration + 1,
        },
    )
    response = llm.complete(prompt, task="fix_execution")
    fixed = extract_sql(response.text)
    return fixed or sql
