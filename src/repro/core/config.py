"""All SQLBarber tunables in one place.

Field names and defaults follow the paper: the refinement phases use
(τ1=0.2, k1=3, m1=3) without history and (τ2=0.1, k2=5, m2=5) with history
(Section 5.2); the predicate search gives each (interval, template) pair a
budget of 5·Δ evaluations, drops template/interval combinations whose
utility ratio falls below 5%, and skips an interval after five consecutive
failed rounds (Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RefinementPhase:
    """One phase of Algorithm 2."""

    coverage_threshold: float  # τ: interval is low-coverage below τ·target
    iterations: int  # k
    templates_per_interval: int  # m
    use_history: bool


@dataclass(frozen=True)
class BarberConfig:
    """Configuration for the end-to-end SQLBarber pipeline."""

    seed: int = 0

    # -- Algorithm 1: template check and rewrite ------------------------------
    max_rewrite_iterations: int = 5

    # -- Section 5.1: profiling ------------------------------------------------
    profile_fraction: float = 0.15  # of the total queries to generate
    min_profile_samples: int = 8
    max_profile_samples: int = 60
    max_categorical_choices: int = 40
    profile_sampling: str = "lhs"  # 'lhs' | 'uniform' (ablation)

    # -- Section 5.2: refinement and pruning -----------------------------------
    enable_refinement: bool = True
    # When True, refined template variants must still satisfy the user spec
    # of their seed template; cost-shifting edits that break the spec are
    # pruned.  Off by default: the paper lets refinement drift structurally
    # to reach uncovered cost ranges.
    strict_spec_refinement: bool = False
    refinement_phases: tuple[RefinementPhase, ...] = (
        RefinementPhase(0.2, 3, 3, use_history=False),
        RefinementPhase(0.1, 5, 5, use_history=True),
    )

    # -- Section 5.3: BO predicate search ----------------------------------------
    search_strategy: str = "bo"  # 'bo' | 'random' (the Naive-Search ablation)
    use_variety_factor: bool = True  # Eq. 2's v_i term (ablation)
    track_bad_combinations: bool = True  # Algorithm 3's B set (ablation)
    budget_multiplier: int = 5  # evaluations per unit of deficit (5Δ)
    max_budget_per_round: int = 120
    utility_threshold: float = 0.05
    interval_failure_limit: int = 5
    weighted_sample_size: int = 10
    min_variety: float = 0.02  # LimitedDiversity cut-off on the variety factor
    space_headroom_multiplier: float = 5.0  # require R[T] >= 5Δ
    bo_refit_every: int = 4
    bo_initial_samples: int = 6
    reuse_history: bool = True  # warm-start BO from profiling observations

    # -- repro.fastpath: caching and parallelism ---------------------------------
    # Worker count for the profile/refine fan-out; 1 = serial (the default,
    # observably identical to pre-fastpath behaviour).  Results are
    # bit-identical across worker counts thanks to per-template seeding.
    workers: int = 1
    parallel_backend: str = "thread"  # 'thread' | 'process'
    # Compile templates once and re-plan per binding instead of running the
    # full lexer/parser/binder per EXPLAIN.  The differential suite pins
    # this path byte-identical to the cold one.
    use_fastpath: bool = True

    # -- repro.sqldb.vec: vectorized execution ------------------------------------
    # Run supported plans through the columnar batch executor instead of the
    # row-at-a-time one.  The differential battery and the vec-vs-row fuzz
    # oracle pin the two paths semantically identical; unsupported plan
    # shapes (subqueries, UNION, nested-loop joins) always fall back to the
    # row executor regardless of this flag.
    use_vectorized: bool = True
    # Rows per columnar batch.  Budgets and cooperative cancellation are
    # charged at batch boundaries, so a smaller batch tightens governor
    # responsiveness at the price of per-batch overhead.
    vec_batch_size: int = 1024

    # -- repro.resilience: budgets and checkpointing -------------------------------
    # Hard spend ceilings, checked before every LLM call.  Reaching one
    # raises BudgetExhausted, which the pipeline converts into a graceful
    # partial WorkloadResult (complete=False, abort reason recorded).
    max_tokens: int | None = None
    max_cost_dollars: float | None = None
    # How many templates the profiling stage completes between checkpoint
    # saves (when a checkpoint directory is configured).
    checkpoint_every_templates: int = 4

    # -- repro.governor: engine-side resource governance ----------------------------
    # Per-query ceilings enforced cooperatively at executor operator
    # boundaries.  All None = ungoverned (the default, zero overhead).
    query_timeout_seconds: float | None = None
    memory_budget_mb: float | None = None
    row_budget: int | None = None
    # Virtual seconds charged per processed row.  > 0 makes deadline trips a
    # pure function of the query (deterministic under the simulated clock).
    governor_cost_per_row_seconds: float = 0.0
    # 'system' = wall-clock deadlines; 'simulated' = per-query deterministic
    # timeline that only advances via charged cost (tests, chaos campaigns).
    governor_clock: str = "system"
    # Resource strikes a template survives before it is quarantined for the
    # rest of the run.
    quarantine_after: int = 3
    # Seeded engine fault model (repro.governor.EngineFaultModel) or None.
    engine_faults: object | None = None
    # Out-of-band wall-clock guard for stuck profiling workers; None = off.
    # Nondeterministic by nature — never enable in reproducibility tests.
    watchdog_timeout_seconds: float | None = None

    # -- repro.obs: observability --------------------------------------------------
    # Arm the operator-level executor profiler for the run: every executed
    # plan operator records rows/batches/self-time into the run's profile
    # tree (WorkloadResult.operator_profiles).  Execution-only — it never
    # changes what is generated, so checkpoints ignore it.
    profile: bool = False

    # -- repro.workload.mixer: mixed read/write workloads --------------------------
    # Fractions (select, insert, update, delete) of the final workload, or
    # None (the default) for an all-SELECT output.  Mixing is a
    # deterministic post-pass over the search result: the statement at
    # position i depends only on (seed, i) and the schema, so mixed
    # workloads stay byte-identical across runs and worker counts.  DML
    # replacements are drawn from the fuzz grammar and costed via EXPLAIN,
    # which never executes them.
    workload_mix: tuple[float, float, float, float] | None = None

    # -- misc ----------------------------------------------------------------------
    time_budget_seconds: float | None = None
    unbound_placeholder_range: tuple[int, int] = (1, 1000)

    def __post_init__(self) -> None:
        self._validate()

    def _validate(self) -> None:
        """Reject nonsensical limits up front, with actionable messages.

        A zero timeout would cancel every query; a negative budget would
        quarantine every template.  Those are configuration bugs, not
        workloads, and surfacing them at construction beats diagnosing a
        fully-quarantined run.
        """

        def _positive(name: str, value, *, allow_none: bool = True) -> None:
            if value is None:
                if not allow_none:
                    raise ValueError(f"BarberConfig.{name} must be set")
                return
            if value <= 0:
                raise ValueError(
                    f"BarberConfig.{name} must be positive (got {value!r}); "
                    f"use None to disable the limit"
                )

        if self.workers < 1:
            raise ValueError(
                f"BarberConfig.workers must be >= 1 (got {self.workers})"
            )
        if self.parallel_backend not in ("thread", "process"):
            raise ValueError(
                f"BarberConfig.parallel_backend must be 'thread' or "
                f"'process' (got {self.parallel_backend!r})"
            )
        if self.governor_clock not in ("system", "simulated"):
            raise ValueError(
                f"BarberConfig.governor_clock must be 'system' or "
                f"'simulated' (got {self.governor_clock!r})"
            )
        if self.quarantine_after < 1:
            raise ValueError(
                f"BarberConfig.quarantine_after must be >= 1 "
                f"(got {self.quarantine_after})"
            )
        if self.governor_cost_per_row_seconds < 0:
            raise ValueError(
                f"BarberConfig.governor_cost_per_row_seconds must be >= 0 "
                f"(got {self.governor_cost_per_row_seconds!r})"
            )
        if self.vec_batch_size < 1:
            raise ValueError(
                f"BarberConfig.vec_batch_size must be >= 1 "
                f"(got {self.vec_batch_size})"
            )
        if self.checkpoint_every_templates < 1:
            raise ValueError(
                f"BarberConfig.checkpoint_every_templates must be >= 1 "
                f"(got {self.checkpoint_every_templates})"
            )
        if self.workload_mix is not None:
            mix = self.workload_mix
            if (
                len(mix) != 4
                or any(f < 0 for f in mix)
                or abs(sum(mix) - 1.0) > 1e-6
            ):
                raise ValueError(
                    f"BarberConfig.workload_mix must be four non-negative "
                    f"(select, insert, update, delete) fractions summing "
                    f"to 1 (got {mix!r}); use None for all-SELECT output"
                )
        _positive("query_timeout_seconds", self.query_timeout_seconds)
        _positive("memory_budget_mb", self.memory_budget_mb)
        _positive("row_budget", self.row_budget)
        _positive("watchdog_timeout_seconds", self.watchdog_timeout_seconds)
        _positive("time_budget_seconds", self.time_budget_seconds)
        _positive("max_tokens", self.max_tokens)
        _positive("max_cost_dollars", self.max_cost_dollars)

    def with_overrides(self, **kwargs) -> "BarberConfig":
        from dataclasses import replace

        return replace(self, **kwargs)
