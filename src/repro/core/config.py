"""All SQLBarber tunables in one place.

Field names and defaults follow the paper: the refinement phases use
(τ1=0.2, k1=3, m1=3) without history and (τ2=0.1, k2=5, m2=5) with history
(Section 5.2); the predicate search gives each (interval, template) pair a
budget of 5·Δ evaluations, drops template/interval combinations whose
utility ratio falls below 5%, and skips an interval after five consecutive
failed rounds (Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RefinementPhase:
    """One phase of Algorithm 2."""

    coverage_threshold: float  # τ: interval is low-coverage below τ·target
    iterations: int  # k
    templates_per_interval: int  # m
    use_history: bool


@dataclass(frozen=True)
class BarberConfig:
    """Configuration for the end-to-end SQLBarber pipeline."""

    seed: int = 0

    # -- Algorithm 1: template check and rewrite ------------------------------
    max_rewrite_iterations: int = 5

    # -- Section 5.1: profiling ------------------------------------------------
    profile_fraction: float = 0.15  # of the total queries to generate
    min_profile_samples: int = 8
    max_profile_samples: int = 60
    max_categorical_choices: int = 40
    profile_sampling: str = "lhs"  # 'lhs' | 'uniform' (ablation)

    # -- Section 5.2: refinement and pruning -----------------------------------
    enable_refinement: bool = True
    # When True, refined template variants must still satisfy the user spec
    # of their seed template; cost-shifting edits that break the spec are
    # pruned.  Off by default: the paper lets refinement drift structurally
    # to reach uncovered cost ranges.
    strict_spec_refinement: bool = False
    refinement_phases: tuple[RefinementPhase, ...] = (
        RefinementPhase(0.2, 3, 3, use_history=False),
        RefinementPhase(0.1, 5, 5, use_history=True),
    )

    # -- Section 5.3: BO predicate search ----------------------------------------
    search_strategy: str = "bo"  # 'bo' | 'random' (the Naive-Search ablation)
    use_variety_factor: bool = True  # Eq. 2's v_i term (ablation)
    track_bad_combinations: bool = True  # Algorithm 3's B set (ablation)
    budget_multiplier: int = 5  # evaluations per unit of deficit (5Δ)
    max_budget_per_round: int = 120
    utility_threshold: float = 0.05
    interval_failure_limit: int = 5
    weighted_sample_size: int = 10
    min_variety: float = 0.02  # LimitedDiversity cut-off on the variety factor
    space_headroom_multiplier: float = 5.0  # require R[T] >= 5Δ
    bo_refit_every: int = 4
    bo_initial_samples: int = 6
    reuse_history: bool = True  # warm-start BO from profiling observations

    # -- repro.fastpath: caching and parallelism ---------------------------------
    # Worker count for the profile/refine fan-out; 1 = serial (the default,
    # observably identical to pre-fastpath behaviour).  Results are
    # bit-identical across worker counts thanks to per-template seeding.
    workers: int = 1
    parallel_backend: str = "thread"  # 'thread' | 'process'
    # Compile templates once and re-plan per binding instead of running the
    # full lexer/parser/binder per EXPLAIN.  The differential suite pins
    # this path byte-identical to the cold one.
    use_fastpath: bool = True

    # -- repro.resilience: budgets and checkpointing -------------------------------
    # Hard spend ceilings, checked before every LLM call.  Reaching one
    # raises BudgetExhausted, which the pipeline converts into a graceful
    # partial WorkloadResult (complete=False, abort reason recorded).
    max_tokens: int | None = None
    max_cost_dollars: float | None = None
    # How many templates the profiling stage completes between checkpoint
    # saves (when a checkpoint directory is configured).
    checkpoint_every_templates: int = 4

    # -- misc ----------------------------------------------------------------------
    time_budget_seconds: float | None = None
    unbound_placeholder_range: tuple[int, int] = (1, 1000)

    def with_overrides(self, **kwargs) -> "BarberConfig":
        from dataclasses import replace

        return replace(self, **kwargs)
