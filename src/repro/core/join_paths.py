"""Step 2 of the template generator: join path enumeration and sampling.

The join graph has a node per table and an edge per foreign key.  The
generator enumerates simple join paths with networkx and samples one per
template attempt, which (i) diversifies join patterns across attempts,
(ii) shrinks prompts to the tables on the path, and (iii) avoids the LLM
long-context failure mode — the three benefits the paper lists.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.sqldb import Database

JoinEdge = dict  # {"table", "column", "ref_table", "ref_column"}


def join_graph(db: Database) -> nx.MultiGraph:
    """The undirected join graph: tables as nodes, FKs as edges."""
    graph = nx.MultiGraph()
    graph.add_nodes_from(db.catalog.table_names)
    for fk in db.catalog.foreign_keys:
        graph.add_edge(
            fk.table,
            fk.ref_table,
            edge={
                "table": fk.table,
                "column": fk.column,
                "ref_table": fk.ref_table,
                "ref_column": fk.ref_column,
            },
        )
    return graph


def enumerate_join_paths(
    db: Database, max_joins: int, limit: int = 10_000
) -> list[list[JoinEdge]]:
    """All simple join paths with 1..max_joins edges (up to *limit*)."""
    graph = join_graph(db)
    paths: list[list[JoinEdge]] = []
    tables = sorted(graph.nodes)
    for source_index, source in enumerate(tables):
        for target in tables[source_index + 1 :]:
            try:
                simple_paths = nx.all_simple_edge_paths(
                    graph, source, target, cutoff=max_joins
                )
            except nx.NodeNotFound:  # pragma: no cover - nodes always exist
                continue
            for edge_path in simple_paths:
                edges = [
                    graph.edges[u, v, key]["edge"] for u, v, key in edge_path
                ]
                paths.append(edges)
                if len(paths) >= limit:
                    return paths
    return paths


def sample_join_path(
    db: Database,
    num_joins: int,
    rng: np.random.Generator,
    num_tables: int | None = None,
) -> list[JoinEdge]:
    """Sample one join path with exactly *num_joins* edges.

    The walk grows from a random FK edge, preferring edges that add a new
    table while the (optional) table budget allows, then reusing placed
    tables (self-joins) to reach the requested join count.
    """
    if num_joins <= 0:
        return []
    graph = join_graph(db)
    all_edges = [data["edge"] for _, _, data in graph.edges(data=True)]
    if not all_edges:
        return []
    first = all_edges[int(rng.integers(len(all_edges)))]
    path = [first]
    placed = {first["table"], first["ref_table"]}
    while len(path) < num_joins:
        fresh = [
            e
            for e in all_edges
            if (e["table"] in placed) != (e["ref_table"] in placed)
        ]
        internal = [
            e
            for e in all_edges
            if e["table"] in placed and e["ref_table"] in placed
        ]
        if num_tables is not None and len(placed) >= num_tables:
            # Table budget reached: prefer self-joins over new tables.
            pool = internal or fresh or all_edges
        else:
            pool = fresh or internal or all_edges
        edge = pool[int(rng.integers(len(pool)))]
        path.append(edge)
        placed.update((edge["table"], edge["ref_table"]))
    return path


def path_tables(path: list[JoinEdge]) -> set[str]:
    """Distinct tables touched by a join path."""
    tables: set[str] = set()
    for edge in path:
        tables.add(edge["table"])
        tables.add(edge["ref_table"])
    return tables
