"""Algorithm 3: BO-based predicate search.

The search repeatedly picks the cost interval with the largest deficit,
selects promising templates by closeness (Eq. 2), and runs Bayesian
optimization over each template's predicate space to minimize the distance
between the query's measured cost and the target interval (Eq. 5).  Bad
(interval, template) combinations, exhausted intervals, and shrinking
search-space budgets are tracked exactly as the paper describes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.bo import BayesianOptimizer, Config
from repro.obs import current as current_telemetry
from repro.workload import (
    CostDistribution,
    DistributionTracker,
    GeneratedQuery,
)
from .config import BarberConfig
from .profiler import TemplateProfile, TemplateProfiler


def interval_objective(cost: float, low: float, high: float) -> float:
    """Eq. 5: 0 inside the interval, else 1 - best boundary ratio."""
    if low <= cost <= high:
        return 0.0

    def ratio(value: float, bound: float) -> float:
        if value <= 0 or bound <= 0:
            return 0.0
        return min(value / bound, bound / value)

    return 1.0 - max(ratio(cost, low), ratio(cost, high))


@dataclass
class SearchResult:
    """Output of the predicate search."""

    queries: list[GeneratedQuery]
    tracker: DistributionTracker
    trace: list[tuple[float, float]] = field(default_factory=list)
    skipped_intervals: set[int] = field(default_factory=set)
    evaluations: int = 0

    @property
    def final_distance(self) -> float:
        return self.tracker.wasserstein

    @property
    def complete(self) -> bool:
        return self.tracker.complete


class PredicateSearch:
    """Runs Algorithm 3 over a profiled template pool."""

    def __init__(
        self,
        profiler: TemplateProfiler,
        config: BarberConfig | None = None,
    ):
        self.profiler = profiler
        self.config = config or BarberConfig()
        self._rng = np.random.default_rng(self.config.seed + 31)

    def run(
        self,
        profiles: list[TemplateProfile],
        distribution: CostDistribution,
        deadline: float | None = None,
    ) -> SearchResult:
        telemetry = current_telemetry()
        tracker = DistributionTracker(distribution)
        result = SearchResult(queries=[], tracker=tracker)
        start = time.perf_counter()
        bad_combinations: set[tuple[int, str]] = set()
        failure_counts: dict[int, int] = {}
        seen_queries: set[tuple[str, tuple]] = set()
        usable = [p for p in profiles if p.is_usable and len(p.space) > 0]

        def elapsed() -> float:
            return time.perf_counter() - start

        result.trace.append((0.0, tracker.wasserstein))
        # Harvest profiling observations first: every profiled (values, cost)
        # pair is already an evaluated query, so any that land in deficit
        # intervals go straight into the workload.
        for profile in usable:
            for values, cost in list(profile.observations):
                self._maybe_keep_query(
                    profile, values, cost, tracker, result, seen_queries
                )
        result.trace.append((elapsed(), tracker.wasserstein))
        while True:
            if deadline is not None and elapsed() > deadline:
                break
            deficits = tracker.deficits
            open_intervals = [
                j
                for j in range(distribution.num_intervals)
                if j not in result.skipped_intervals and deficits[j] > 0
            ]
            if not open_intervals:
                break
            target = max(open_intervals, key=lambda j: deficits[j])
            gap = int(deficits[target])
            low, high = distribution.interval_bounds(target)

            candidates = self._filter_templates(
                usable, target, (low, high), gap, bad_combinations
            )
            if not candidates:
                result.skipped_intervals.add(target)
                telemetry.count("search.intervals.skipped")
                continue

            with telemetry.span(
                "search.round", interval=target, gap=gap,
                candidates=len(candidates),
            ) as round_span:
                distance_before = tracker.wasserstein
                round_evaluated = round_kept = 0
                improved = False
                for profile in candidates:
                    before = int(tracker.achieved[target])
                    kept, evaluated = self._optimize_template(
                        profile,
                        target,
                        (low, high),
                        gap,
                        tracker,
                        result,
                        seen_queries,
                        deadline,
                        start,
                    )
                    result.evaluations += evaluated
                    round_evaluated += evaluated
                    round_kept += kept
                    after = int(tracker.achieved[target])
                    if after > before:
                        improved = True
                    if (
                        self.config.track_bad_combinations
                        and evaluated > 0
                        and kept / evaluated < self.config.utility_threshold
                    ):
                        bad_combinations.add(
                            (target, profile.template.template_id)
                        )
                    result.trace.append((elapsed(), tracker.wasserstein))
                    if tracker.deficits[target] <= 0:
                        break
                    if deadline is not None and elapsed() > deadline:
                        break
                if telemetry.enabled:
                    round_span.set(
                        evaluations=round_evaluated,
                        kept=round_kept,
                        distance_before=round(distance_before, 4),
                        distance_after=round(tracker.wasserstein, 4),
                    )
                    telemetry.count("search.bo.iterations", round_evaluated)
                    telemetry.gauge("search.distance", tracker.wasserstein)

            if not improved:
                failure_counts[target] = failure_counts.get(target, 0) + 1
                if failure_counts[target] >= self.config.interval_failure_limit:
                    result.skipped_intervals.add(target)
                    telemetry.count("search.intervals.skipped")
        result.trace.append((elapsed(), tracker.wasserstein))
        return result

    # -- template selection (Lines 8-12) ---------------------------------------------

    def _filter_templates(
        self,
        profiles: list[TemplateProfile],
        interval_index: int,
        interval: tuple[float, float],
        gap: int,
        bad_combinations: set[tuple[int, str]],
    ) -> list[TemplateProfile]:
        low, high = interval
        scored = self._score_candidates(
            profiles, interval_index, (low, high), bad_combinations,
            headroom=self.config.space_headroom_multiplier * gap,
        )
        if not scored:
            # The strict R[T] >= 5Δ headroom can starve small search spaces;
            # retry requiring only enough room for the gap itself.
            scored = self._score_candidates(
                profiles, interval_index, (low, high), bad_combinations,
                headroom=float(gap),
            )
        if not scored:
            return []
        take = min(self.config.weighted_sample_size, len(scored))
        weights = np.array([s for s, _ in scored], dtype=np.float64)
        weights = weights / weights.sum()
        picked = self._rng.choice(
            len(scored), size=take, replace=False, p=weights
        )
        chosen = [scored[i] for i in picked]
        chosen.sort(key=lambda pair: pair[0], reverse=True)
        return [profile for _, profile in chosen]

    def _score_candidates(
        self,
        profiles: list[TemplateProfile],
        interval_index: int,
        interval: tuple[float, float],
        bad_combinations: set[tuple[int, str]],
        headroom: float,
    ) -> list[tuple[float, TemplateProfile]]:
        low, high = interval
        # Naive-Search picks templates blindly: no closeness ranking (the
        # paper's ablation notes it "cannot effectively select templates for
        # different cost ranges").
        naive = self.config.search_strategy == "random"
        scored: list[tuple[float, TemplateProfile]] = []
        for profile in profiles:
            if (interval_index, profile.template.template_id) in bad_combinations:
                continue
            if profile.remaining_space() < headroom:
                continue
            if profile.variety < self.config.min_variety:
                continue
            if naive:
                scored.append((1.0, profile))
                continue
            score = profile.closeness(
                low, high, use_variety=self.config.use_variety_factor
            )
            if score > 0:
                scored.append((score, profile))
        return scored

    # -- per-template optimization (Lines 17-33) --------------------------------------

    def _optimize_template(
        self,
        profile: TemplateProfile,
        target_index: int,
        interval: tuple[float, float],
        gap: int,
        tracker: DistributionTracker,
        result: SearchResult,
        seen_queries: set[tuple[str, tuple]],
        deadline: float | None,
        start: float,
    ) -> tuple[int, int]:
        """Returns (kept queries, evaluations) for this template round."""
        low, high = interval
        budget = min(
            self.config.budget_multiplier * gap, self.config.max_budget_per_round
        )
        budget = max(budget, 5)
        propose = self._make_proposer(profile, (low, high))
        # Known-good configurations: the exploitation half of the paper's
        # explore/exploit balance.  Once the search lands inside the target
        # interval, perturbing those hits fills the interval far faster than
        # re-minimizing from scratch.  The Naive-Search ablation gets no
        # such exploitation — it is uniform sampling and nothing else.
        exploit = self.config.search_strategy != "random"
        good_configs: list[Config] = [
            values
            for values, cost in profile.observations
            if exploit and low <= cost <= high
        ]
        kept = 0
        evaluated = 0
        for _ in range(budget):
            if deadline is not None and (time.perf_counter() - start) > deadline:
                break
            if good_configs and self._rng.random() < 0.7:
                base = good_configs[int(self._rng.integers(len(good_configs)))]
                values = self._perturb(profile, base)
            else:
                values = propose.ask()
            cost = self.profiler.evaluate(profile.template, values)
            evaluated += 1
            if cost is None:
                propose.tell(values, 2.0)  # worse than any reachable objective
                continue
            profile.add(values, cost)
            objective = interval_objective(cost, low, high)
            propose.tell(values, objective)
            if exploit and objective == 0.0:
                good_configs.append(values)
            kept += self._maybe_keep_query(
                profile, values, cost, tracker, result, seen_queries
            )
            if tracker.deficits[target_index] <= 0:
                break
        return kept, evaluated

    def _perturb(self, profile: TemplateProfile, base: Config) -> Config:
        """A small Gaussian step from *base* in the unit cube."""
        center = profile.space.to_unit(base)
        scale = 0.02 if self._rng.random() < 0.5 else 0.08
        noise = self._rng.normal(0.0, scale, len(center))
        return profile.space.from_unit(np.clip(center + noise, 0.0, 1.0))

    def _make_proposer(self, profile: TemplateProfile, interval):
        low, high = interval
        if self.config.search_strategy == "random":
            return _RandomProposer(profile, self._rng)
        optimizer = BayesianOptimizer(
            profile.space,
            seed=int(self._rng.integers(1 << 31)),
            n_initial=self.config.bo_initial_samples,
            refit_every=self.config.bo_refit_every,
        )
        if self.config.reuse_history and profile.observations:
            # Re-score historical evaluations under the current target
            # interval and seed the surrogate with the most promising ones.
            rescored = [
                (values, interval_objective(cost, low, high))
                for values, cost in profile.observations
            ]
            rescored.sort(key=lambda pair: pair[1])
            optimizer.warm_start(rescored[:40])
        return optimizer

    def _maybe_keep_query(
        self,
        profile: TemplateProfile,
        values: Config,
        cost: float,
        tracker: DistributionTracker,
        result: SearchResult,
        seen_queries: set[tuple[str, tuple]],
    ) -> int:
        """Keep the query if it fills any deficit interval (UtilityRatio's
        numerator); duplicates of already-kept queries are never re-kept."""
        landed = tracker.target.interval_of(cost)
        if landed is None or tracker.deficits[landed] <= 0:
            return 0
        key = (
            profile.template.template_id,
            tuple(sorted((k, str(v)) for k, v in values.items())),
        )
        if key in seen_queries:
            return 0
        seen_queries.add(key)
        current_telemetry().count("search.queries.kept")
        tracker.add(cost)
        result.queries.append(
            GeneratedQuery(
                sql=profile.template.instantiate(values),
                cost=cost,
                template_id=profile.template.template_id,
                predicate_values=dict(values),
                cost_type=tracker.target.cost_type,
            )
        )
        return 1


class _RandomProposer:
    """Naive-Search stand-in: uniform random sampling, no model."""

    def __init__(self, profile: TemplateProfile, rng: np.random.Generator):
        self._space = profile.space
        self._rng = rng

    def ask(self) -> Config:
        return self._space.sample(self._rng)

    def tell(self, values: Config, objective: float) -> None:
        pass
