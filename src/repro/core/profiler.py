"""Section 5.1: template profiling via strategic (Latin Hypercube) sampling.

Profiling instantiates each template with LHS-distributed predicate values,
evaluates the resulting queries on the engine, and records the observed
costs.  The profile answers two questions the paper poses: which cost ranges
can this template reach, and which templates are worth searching for a given
interval (via the closeness score of Eq. 2).
"""

from __future__ import annotations

import math
import time
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.bo import (
    CategoricalParameter,
    Config,
    ConfigSpace,
    FloatParameter,
    IntegerParameter,
    lhs_configs,
)
from repro.governor import (
    GOVERNOR_SEED_OFFSET,
    GovernorBoard,
    GovernorLimits,
    TemplateGuard,
    use_governor,
)
from repro.obs import current as current_telemetry
from repro.sqldb import (
    Database,
    ResourceExceeded,
    SqlError,
    TransientStorageError,
)
from repro.sqldb.types import SqlType
from repro.workload import SqlTemplate, infer_placeholder_bindings
from .config import BarberConfig

_SPACE_SIZE_CAP = 1e15


def interval_distance(cost: float, low: float, high: float) -> float:
    """Eq. 3's dist(): 0 inside [low, high], else the gap to the interval."""
    if low <= cost <= high:
        return 0.0
    if cost < low:
        return low - cost
    return cost - high


@dataclass
class TemplateProfile:
    """Observed cost behaviour of one template (the paper's P entry)."""

    template: SqlTemplate
    space: ConfigSpace
    observations: list[tuple[Config, float]] = field(default_factory=list)
    errors: int = 0
    # -- resource governance (repro.governor) -------------------------------
    quarantined: bool = False
    resource_strikes: int = 0
    quarantine_reason: str | None = None
    offending_bindings: list = field(default_factory=list)
    peak_bytes: int = 0

    @property
    def costs(self) -> list[float]:
        return [cost for _, cost in self.observations]

    @property
    def is_usable(self) -> bool:
        # A quarantined template is benched even if some samples succeeded:
        # refinement/search would keep re-running its pathological queries.
        return bool(self.observations) and not self.quarantined

    @property
    def min_cost(self) -> float:
        return min(self.costs) if self.observations else 0.0

    @property
    def max_cost(self) -> float:
        return max(self.costs) if self.observations else 0.0

    @property
    def mean_cost(self) -> float:
        return float(np.mean(self.costs)) if self.observations else 0.0

    @property
    def variety(self) -> float:
        """Eq. 2's v_i: distinct-cost ratio, penalizing flat templates."""
        if not self.observations:
            return 0.0
        costs = self.costs
        return len(set(costs)) / len(costs)

    def add(self, config: Config, cost: float) -> None:
        self.observations.append((dict(config), float(cost)))

    def closeness(self, low: float, high: float, use_variety: bool = True) -> float:
        """Eq. 2: s_ij = v_i / (1 + mean distance to the interval).

        ``use_variety=False`` drops the v_i term (the ablation of the
        diversity penalty).
        """
        if not self.observations:
            return 0.0
        mean_distance = float(
            np.mean([interval_distance(c, low, high) for c in self.costs])
        )
        proximity = 1.0 / (1.0 + mean_distance)
        return proximity * self.variety if use_variety else proximity

    def space_size(self) -> float:
        """|search space| with continuous dimensions capped (the R entry)."""
        return min(self.space.cardinality(), _SPACE_SIZE_CAP)

    def remaining_space(self) -> float:
        return max(self.space_size() - len(self.observations), 0.0)

    def cost_summary(self) -> dict:
        return {
            "min": self.min_cost,
            "max": self.max_cost,
            "mean": self.mean_cost,
            "count": len(self.observations),
        }


def emit_profile_events(telemetry, profile: TemplateProfile) -> None:
    """Publish one template's progress events to *telemetry*.

    The payloads are pure functions of the finished profile — no wall
    clocks, no worker identity — so a parallel parent can replay them in
    input order and reproduce the serial event stream exactly (see
    ``ParallelProfiler._replay_events``).
    """
    if not telemetry.enabled:
        return
    telemetry.event(
        "template_profiled",
        template_id=profile.template.template_id,
        queries=len(profile.observations),
        errors=profile.errors,
        quarantined=profile.quarantined,
    )
    if profile.quarantined:
        telemetry.event(
            "template_quarantined",
            template_id=profile.template.template_id,
            reason=profile.quarantine_reason,
            strikes=profile.resource_strikes,
        )


class TemplateProfiler:
    """Builds search spaces and profiles templates on the target database."""

    def __init__(
        self,
        db: Database,
        config: BarberConfig | None = None,
        cost_metric="plan_cost",
    ):
        """*cost_metric* is one of the built-in names — ``plan_cost``,
        ``cardinality``, ``execution_time`` (mapped to plan cost, as in the
        paper's Section 6.1), ``measured_time`` — or any user-supplied
        callable ``(sql, db) -> float`` implementing Definition 2.10's
        "user-defined" cost type."""
        self.db = db
        self.config = config or BarberConfig()
        self._custom_metric = cost_metric if callable(cost_metric) else None
        if self._custom_metric is not None:
            cost_metric = getattr(cost_metric, "__name__", "custom")
        elif cost_metric == "execution_time":
            # The paper (Section 6.1) targets execution-time distributions
            # through the optimizer's plan cost estimate via EXPLAIN.
            cost_metric = "plan_cost"
        elif cost_metric not in (
            "plan_cost",
            "cardinality",
            "measured_time",
            "actual_rows",
        ):
            raise ValueError(f"unknown cost metric {cost_metric!r}")
        self.cost_metric = cost_metric
        # In-flight governor registry for the (optional) watchdog.  Dropped
        # on pickling — process workers are watched by their own lifecycle.
        self.board = GovernorBoard()
        # Compiled fast-path per template id; None marks a template whose
        # compilation failed, pinning it to the cold path permanently.
        self._compiled: dict[str, object | None] = {}

    def _template_rng(self, template: SqlTemplate) -> np.random.Generator:
        """A private RNG per template, independent of profiling order.

        Seeding from (config seed, template id) makes each template's sample
        stream a pure function of the template, so profiles are bit-identical
        whether templates run serially or fan out across workers.
        """
        return np.random.default_rng(
            [self.config.seed + 17, zlib.crc32(template.template_id.encode())]
        )

    def __getstate__(self) -> dict:
        # Compiled templates hold locks; workers recompile on demand.  The
        # governor board holds a lock too (and a watchdog is per-process by
        # design), so process workers start with no board.
        state = dict(self.__dict__)
        state["_compiled"] = {}
        state["board"] = None
        return state

    # -- search space construction ------------------------------------------------

    def build_space(self, template: SqlTemplate) -> ConfigSpace:
        """One BO dimension per placeholder, derived from column stats."""
        if not template.placeholders:
            template.placeholders = infer_placeholder_bindings(
                template.parse(), self.db.catalog
            )
        space = ConfigSpace()
        low_default, high_default = self.config.unbound_placeholder_range
        for info in template.placeholders:
            if info.table is None or info.column is None:
                space.add(IntegerParameter(info.name, low_default, high_default))
                continue
            stats = self.db.catalog.column_stats(info.table, info.column)
            if info.sql_type is SqlType.TEXT or stats is None or (
                stats.min_value is None
            ):
                space.add(self._text_parameter(info))
                continue
            low = float(stats.min_value)
            high = float(stats.max_value)
            if high <= low:
                high = low + 1.0
            if info.sql_type in (SqlType.INTEGER, SqlType.BIGINT, SqlType.DATE):
                space.add(IntegerParameter(info.name, int(low), int(math.ceil(high))))
            else:
                space.add(FloatParameter(info.name, low, high))
        return space

    def _text_parameter(self, info) -> CategoricalParameter:
        choices = self._text_choices(info)
        return CategoricalParameter(info.name, tuple(choices))

    def _text_choices(self, info) -> list[str]:
        cap = self.config.max_categorical_choices
        values: list[str] = []
        if info.table is not None and self.db.catalog.has_table(info.table):
            data = self.db.catalog.data(info.table)
            if data.has_column(info.column):
                distinct = sorted(
                    {str(v) for v in data.column(info.column).non_null_values()}
                )
                if len(distinct) > cap:
                    step = len(distinct) / cap
                    distinct = [distinct[int(i * step)] for i in range(cap)]
                values = distinct
        if not values:
            values = ["__missing__"]
        if info.operator == "like":
            return [f"%{v[: max(len(v) // 2, 1)]}%" for v in values]
        return values

    # -- evaluation -------------------------------------------------------------------

    def evaluate(self, template: SqlTemplate, values: Config) -> float | None:
        """Instantiate + measure one configuration; None on any SQL error.

        Governor errors — :class:`ResourceExceeded` and the retryable
        :class:`TransientStorageError` — propagate instead of collapsing to
        None: they are verdicts about the *template's resource behaviour*
        (strike material), not about the SQL being malformed.
        """
        if (
            self.config.use_fastpath
            and self._custom_metric is None
            and self.cost_metric in ("plan_cost", "cardinality")
        ):
            compiled = self._compiled_for(template)
            if compiled is not None:
                try:
                    explain = compiled.explain(values)
                except (ResourceExceeded, TransientStorageError):
                    raise
                except (KeyError, SqlError):
                    return None
                if self.cost_metric == "cardinality":
                    return float(explain.estimated_rows)
                return float(explain.total_cost)
        try:
            sql = template.instantiate(values)
        except KeyError:
            return None
        try:
            if self._custom_metric is not None:
                return float(self._custom_metric(sql, self.db))
            if self.cost_metric == "measured_time":
                return self.db.execute(sql).elapsed_seconds
            if self.cost_metric == "actual_rows":
                # Deterministic execution-based cost: the result cardinality.
                # Unlike measured_time it is a pure function of the query, so
                # reproducibility tests and chaos campaigns can execute real
                # plans (and trip real governor limits) with stable output.
                return float(self.db.execute(sql).row_count)
            explain = self.db.explain(sql)
        except (ResourceExceeded, TransientStorageError):
            raise
        except SqlError:
            return None
        if self.cost_metric == "cardinality":
            return float(explain.estimated_rows)
        return float(explain.total_cost)

    def _compiled_for(self, template: SqlTemplate):
        """The template's compiled fast path, or None when it cannot compile
        (it then stays on the cold path for the rest of the run)."""
        key = template.template_id
        if key not in self._compiled:
            from repro.fastpath.compiled import CompiledTemplate

            try:
                self._compiled[key] = CompiledTemplate(
                    self.db, template, self._placeholder_literal_types(template)
                )
            except SqlError:
                self._compiled[key] = None
        return self._compiled[key]

    def _placeholder_literal_types(self, template: SqlTemplate) -> dict[str, SqlType]:
        """The *bound* type of each placeholder's rendered literal.

        Mirrors :meth:`build_space`'s parameter choices: integer parameters
        render as integer literals, float parameters as doubles, and
        categorical/date parameters as quoted strings (TEXT).
        """
        if not template.placeholders:
            template.placeholders = infer_placeholder_bindings(
                template.parse(), self.db.catalog
            )
        types: dict[str, SqlType] = {}
        for info in template.placeholders:
            if info.table is None or info.column is None:
                types[info.name] = SqlType.INTEGER
                continue
            stats = self.db.catalog.column_stats(info.table, info.column)
            if info.sql_type is SqlType.TEXT or stats is None or (
                stats.min_value is None
            ):
                types[info.name] = SqlType.TEXT
            elif info.sql_type is SqlType.DATE:
                types[info.name] = SqlType.TEXT  # rendered as a quoted ISO date
            elif info.sql_type in (SqlType.INTEGER, SqlType.BIGINT):
                types[info.name] = SqlType.INTEGER
            else:
                types[info.name] = SqlType.DOUBLE
        return types

    def instantiate(self, template: SqlTemplate, values: Config) -> str:
        return template.instantiate(values)

    # -- resource governance --------------------------------------------------------

    def _guard_for(self, template: SqlTemplate) -> TemplateGuard | None:
        """A fresh per-template guard, or None when governance is off.

        The fault RNG stream is seeded from (seed + offset, template id) —
        disjoint from the sampling streams and independent of profiling
        order, so fault sequences are identical serial or fanned out.
        """
        limits = GovernorLimits.from_config(self.config)
        faults = self.config.engine_faults
        has_faults = faults is not None and faults.active
        if not limits.enabled and not has_faults:
            return None
        fault_rng = None
        if has_faults:
            fault_rng = np.random.default_rng(
                [
                    self.config.seed + GOVERNOR_SEED_OFFSET,
                    zlib.crc32(template.template_id.encode()),
                ]
            )
        return TemplateGuard(
            template.template_id,
            limits,
            clock_name=self.config.governor_clock,
            quarantine_after=self.config.quarantine_after,
            faults=faults if has_faults else None,
            fault_rng=fault_rng,
        )

    _STORAGE_RETRIES = 2  # extra attempts after an injected storage fault

    def _evaluate_governed(
        self, template: SqlTemplate, values: Config, guard: TemplateGuard
    ):
        """One governed evaluation: ``(cost | None, resource_error | None)``.

        Mints a fresh governor per query (a fresh deadline, like
        ``statement_timeout``), retries transient storage faults a bounded
        number of times, and converts a tripped limit into strike material
        for the caller instead of an exception.
        """
        telemetry = current_telemetry()
        board = getattr(self, "board", None)
        for attempt in range(self._STORAGE_RETRIES + 1):
            governor = guard.governor()
            ticket = None
            if board is not None and board.armed:
                ticket = board.register(
                    guard.template_id, governor, time.monotonic()
                )
            try:
                with use_governor(governor):
                    cost = self.evaluate(template, values)
                return cost, None
            except ResourceExceeded as exc:
                return None, exc
            except TransientStorageError:
                if telemetry.enabled:
                    telemetry.count("governor.storage_retries")
                if attempt == self._STORAGE_RETRIES:
                    return None, None  # exhausted: an ordinary error
            finally:
                if ticket is not None:
                    board.unregister(ticket)
                guard.observe(governor)
                if governor.faults_injected and telemetry.enabled:
                    telemetry.count(
                        "governor.faults_injected", governor.faults_injected
                    )
        return None, None  # unreachable; keeps type-checkers calm

    # -- profiling ----------------------------------------------------------------------

    def profile(
        self, template: SqlTemplate, num_samples: int | None = None
    ) -> TemplateProfile:
        """LHS-profile a template; errors are counted, not raised."""
        telemetry = current_telemetry()
        with telemetry.span(
            "profile.template", template_id=template.template_id
        ) as span:
            profile = self._profile_inner(template, num_samples)
            if telemetry.enabled:
                span.set(
                    samples=len(profile.observations),
                    errors=profile.errors,
                    cost_min=profile.min_cost,
                    cost_max=profile.max_cost,
                )
                telemetry.count("profiler.templates")
                telemetry.count("profiler.samples", len(profile.observations))
                if profile.errors:
                    telemetry.count("profiler.errors", profile.errors)
                if profile.resource_strikes:
                    telemetry.count(
                        "governor.strikes", profile.resource_strikes
                    )
                if profile.quarantined:
                    telemetry.count("governor.quarantines")
                    span.set(quarantined=True, reason=profile.quarantine_reason)
                if profile.peak_bytes:
                    telemetry.gauge(
                        "governor.peak_bytes",
                        profile.peak_bytes,
                        template=template.template_id,
                    )
        emit_profile_events(telemetry, profile)
        return profile

    def profile_many(
        self,
        templates,
        num_samples: int | None = None,
        workers: int | None = None,
        backend: str | None = None,
    ) -> list[TemplateProfile]:
        """Profile several templates, fanning out when workers > 1.

        Defaults come from the config (``workers``, ``parallel_backend``).
        Output order matches input order, and per-template seeding makes the
        profiles bit-identical to the serial loop at any worker count.
        """
        templates = list(templates)
        workers = self.config.workers if workers is None else workers
        backend = self.config.parallel_backend if backend is None else backend
        if workers <= 1 or len(templates) <= 1:
            return [self.profile(t, num_samples) for t in templates]
        from repro.fastpath.parallel import ParallelProfiler

        return ParallelProfiler(self, workers, backend).profile_many(
            templates, num_samples
        )

    def _profile_inner(
        self, template: SqlTemplate, num_samples: int | None
    ) -> TemplateProfile:
        try:
            space = self.build_space(template)
        except SqlError:
            # The template does not even parse (e.g. a faulty refinement):
            # an empty profile is never usable, so it gets pruned upstream.
            return TemplateProfile(
                template=template, space=ConfigSpace(), errors=1
            )
        profile = TemplateProfile(template=template, space=space)
        guard = self._guard_for(template)
        if len(space) == 0:
            # No placeholders: the template has exactly one cost point.
            self._profile_one(profile, template, {}, guard)
            self._finish_guard(profile, guard)
            return profile
        count = num_samples if num_samples is not None else (
            self.config.min_profile_samples
        )
        count = max(count, 1)
        rng = self._template_rng(template)
        if self.config.profile_sampling == "uniform":
            samples = space.sample_many(count, rng)
        else:
            samples = lhs_configs(space, count, rng)
        for values in samples:
            if not self._profile_one(profile, template, values, guard):
                break  # quarantined: stop burning budget on this template
        self._finish_guard(profile, guard)
        return profile

    def _profile_one(
        self,
        profile: TemplateProfile,
        template: SqlTemplate,
        values: Config,
        guard: TemplateGuard | None,
    ) -> bool:
        """Evaluate one sample into *profile*; False once quarantined."""
        if guard is None:
            cost = self.evaluate(template, values)
        else:
            cost, resource_error = self._evaluate_governed(
                template, values, guard
            )
            if resource_error is not None:
                profile.errors += 1
                return not guard.strike(resource_error, values)
        if cost is None:
            profile.errors += 1
        else:
            profile.add(values, cost)
        return True

    @staticmethod
    def _finish_guard(
        profile: TemplateProfile, guard: TemplateGuard | None
    ) -> None:
        if guard is None:
            return
        profile.quarantined = guard.quarantined
        profile.resource_strikes = guard.strikes
        profile.quarantine_reason = guard.last_reason
        profile.offending_bindings = list(guard.offending_bindings)
        profile.peak_bytes = guard.peak_bytes

    def profile_samples_per_template(
        self, total_queries: int, num_templates: int
    ) -> int:
        """The paper's budget: ~15% of the target query count, split evenly."""
        if num_templates <= 0:
            return self.config.min_profile_samples
        share = int(self.config.profile_fraction * total_queries / num_templates)
        return int(
            np.clip(
                share,
                self.config.min_profile_samples,
                self.config.max_profile_samples,
            )
        )
