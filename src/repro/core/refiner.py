"""Algorithm 2: cost-aware template refinement and pruning.

Two phases iterate over underrepresented cost intervals.  Phase 1 (τ1=0.2,
k1=3, m1=3) performs standard refinement for *missing* intervals; phase 2
(τ2=0.1, k2=5, m2=5) targets persistently *difficult* intervals and shows
the LLM the per-interval rewrite history so it can learn from failed
attempts in-context.  A refined template survives the pruning check (Eq. 4)
when it covers a target interval or reduces the overall Wasserstein gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.governor import QuarantineRecord
from repro.llm import LLMClient, extract_sql, refine_template_prompt
from repro.obs import current as current_telemetry
from repro.workload import CostDistribution, SqlTemplate, TemplateSpec, check_template
from .config import BarberConfig, RefinementPhase
from .profiler import TemplateProfile, TemplateProfiler


@dataclass
class RefinementResult:
    """Output of Algorithm 2."""

    profiles: list[TemplateProfile]
    accepted: list[SqlTemplate] = field(default_factory=list)
    pruned: int = 0
    refine_calls: int = 0
    # Refined candidates that tripped governor limits and were benched
    # (they are also pruned; the records preserve the why).
    quarantined: list[QuarantineRecord] = field(default_factory=list)


class TemplateRefiner:
    """Adapts a template pool to a target cost distribution."""

    def __init__(
        self,
        llm: LLMClient,
        profiler: TemplateProfiler,
        schema: dict,
        config: BarberConfig | None = None,
    ):
        self.llm = llm
        self.profiler = profiler
        self.schema = schema
        self.config = config or BarberConfig()
        self._refined_counter = 0

    def refine(
        self,
        profiles: list[TemplateProfile],
        distribution: CostDistribution,
        profile_samples: int | None = None,
        specs_by_id: dict[str, TemplateSpec] | None = None,
        checkpoint=None,
        resume_state: dict | None = None,
    ) -> RefinementResult:
        """Run Algorithm 2, optionally checkpointing at iteration boundaries.

        *checkpoint*, when given, is called with a serialized working state
        after every completed iteration.  *resume_state* (a dict a previous
        run's checkpoint callback received) restores the pool, history, and
        (phase, iteration) position; the *profiles* argument is then ignored
        and the run continues bit-identically from where it stopped.
        """
        result = RefinementResult(profiles=list(profiles))
        if not self.config.enable_refinement:
            return result
        self._specs_by_id = specs_by_id or {}
        history: dict[int, list[dict]] = {}
        start_phase = start_iteration = 0
        if resume_state is not None:
            from repro.resilience.checkpoint import refinement_from_state

            result = refinement_from_state(resume_state, self.profiler)
            history = {
                int(j): [dict(e) for e in entries]
                for j, entries in resume_state["history"].items()
            }
            self._refined_counter = int(resume_state["refined_counter"])
            start_phase = int(resume_state["phase"])
            start_iteration = int(resume_state["iteration"])
        phases = self.config.refinement_phases
        for phase_index in range(start_phase, len(phases)):
            phase = phases[phase_index]
            first = start_iteration if phase_index == start_phase else 0
            for iteration in range(first, phase.iterations):
                low_intervals = self._low_coverage_intervals(
                    result.profiles, distribution, phase.coverage_threshold
                )
                if not low_intervals:
                    break
                new_profiles = self._refine_for_intervals(
                    low_intervals,
                    phase,
                    result,
                    distribution,
                    history,
                    profile_samples,
                )
                result.profiles.extend(new_profiles)
                if checkpoint is not None:
                    checkpoint(self._checkpoint_state(
                        result, history, phase_index, iteration + 1
                    ))
        return result

    def _checkpoint_state(
        self,
        result: RefinementResult,
        history: dict[int, list[dict]],
        phase: int,
        iteration: int,
    ) -> dict:
        from repro.resilience.checkpoint import refinement_to_state

        return refinement_to_state(
            result, history, phase, iteration, self._refined_counter
        )

    # -- coverage ---------------------------------------------------------------

    def _low_coverage_intervals(
        self,
        profiles: list[TemplateProfile],
        distribution: CostDistribution,
        threshold: float,
    ) -> list[int]:
        """Eq. 1 coverage, then the τ·d* cut (Line 6 of Algorithm 2)."""
        all_costs = [c for p in profiles for c in p.costs]
        coverage = distribution.coverage(all_costs)
        targets = np.asarray(distribution.target_counts, dtype=np.float64)
        # Coverage is measured on the profiling sample, so compare against
        # the target shape scaled to the sample size.
        total_target = targets.sum()
        if total_target <= 0:
            return []
        sample_scale = max(len(all_costs), 1) / total_target
        low = [
            j
            for j in range(distribution.num_intervals)
            if targets[j] > 0
            and coverage[j] < threshold * targets[j] * sample_scale
        ]
        return low

    # -- the RefineForIntervals function -----------------------------------------

    def _refine_for_intervals(
        self,
        intervals: list[int],
        phase: RefinementPhase,
        result: RefinementResult,
        distribution: CostDistribution,
        history: dict[int, list[dict]],
        profile_samples: int | None,
    ) -> list[TemplateProfile]:
        if not phase.use_history and self.config.workers > 1:
            # History-free phases are order-independent between the LLM
            # rewrite and the accept/prune bookkeeping, so profiling can fan
            # out; history-driven phases must stay sequential because each
            # candidate's prompt depends on the previous candidate's outcome.
            return self._refine_for_intervals_batch(
                intervals, phase, result, distribution, history, profile_samples
            )
        telemetry = current_telemetry()
        new_profiles: list[TemplateProfile] = []
        for j in intervals:
            low, high = distribution.interval_bounds(j)
            with telemetry.span(
                "refine.interval", interval=j, low=low, high=high,
                with_history=phase.use_history,
            ) as span:
                attempts = accepted = pruned_count = 0
                ranked = sorted(
                    (p for p in result.profiles if p.is_usable),
                    key=lambda p: p.closeness(
                        low, high, use_variety=self.config.use_variety_factor
                    ),
                    reverse=True,
                )
                for profile in ranked[: phase.templates_per_interval]:
                    interval_history = (
                        history.get(j) if phase.use_history else None
                    )
                    new_sql = self._llm_refine(
                        profile, (low, high), interval_history,
                        distribution.cost_type,
                    )
                    result.refine_calls += 1
                    attempts += 1
                    if not new_sql or (
                        new_sql.strip() == profile.template.sql.strip()
                    ):
                        continue
                    template = self._make_template(profile.template, new_sql)
                    new_profile = self.profiler.profile(template, profile_samples)
                    if new_profile.quarantined:
                        result.quarantined.append(
                            QuarantineRecord.from_profile(
                                new_profile, stage="refine"
                            )
                        )
                    pruned = self._prune(
                        new_profile, intervals, result, distribution
                    )
                    # Record every attempt — including pruned ones — so
                    # phase 2's in-context history steers the LLM away from
                    # rewrites that already failed to reach the interval.
                    history.setdefault(j, []).append(
                        {
                            "sql": template.sql,
                            "min_cost": new_profile.min_cost,
                            "max_cost": new_profile.max_cost,
                            "accepted": not pruned,
                        }
                    )
                    if pruned:
                        result.pruned += 1
                        pruned_count += 1
                        continue
                    new_profiles.append(new_profile)
                    result.accepted.append(template)
                    accepted += 1
                if telemetry.enabled:
                    span.set(
                        attempts=attempts, accepted=accepted,
                        pruned=pruned_count,
                    )
                    telemetry.count("refine.attempts", attempts)
                    telemetry.count("refine.accepted", accepted)
                    telemetry.count("refine.pruned", pruned_count)
        return new_profiles

    def _refine_for_intervals_batch(
        self,
        intervals: list[int],
        phase: RefinementPhase,
        result: RefinementResult,
        distribution: CostDistribution,
        history: dict[int, list[dict]],
        profile_samples: int | None,
    ) -> list[TemplateProfile]:
        """Parallel variant of :meth:`_refine_for_intervals`.

        Produces bit-identical results to the serial loop: LLM rewrites run
        first in the exact serial order (the simulated LLM's fault stream is
        call-order dependent), candidate profiling fans out (safe — profiles
        are per-template seeded and nothing in the serial loop reads state a
        profile writes), and prune/accept bookkeeping replays sequentially
        in serial order.
        """
        telemetry = current_telemetry()
        counters = {j: {"attempts": 0, "accepted": 0, "pruned": 0} for j in intervals}
        tasks: list[tuple[int, SqlTemplate]] = []
        for j in intervals:
            low, high = distribution.interval_bounds(j)
            ranked = sorted(
                (p for p in result.profiles if p.is_usable),
                key=lambda p: p.closeness(
                    low, high, use_variety=self.config.use_variety_factor
                ),
                reverse=True,
            )
            for profile in ranked[: phase.templates_per_interval]:
                new_sql = self._llm_refine(
                    profile, (low, high), None, distribution.cost_type
                )
                result.refine_calls += 1
                counters[j]["attempts"] += 1
                if not new_sql or (
                    new_sql.strip() == profile.template.sql.strip()
                ):
                    continue
                tasks.append((j, self._make_template(profile.template, new_sql)))
        candidate_profiles = self.profiler.profile_many(
            [template for _, template in tasks], profile_samples
        )
        new_profiles: list[TemplateProfile] = []
        for (j, template), new_profile in zip(tasks, candidate_profiles):
            if new_profile.quarantined:
                result.quarantined.append(
                    QuarantineRecord.from_profile(new_profile, stage="refine")
                )
            pruned = self._prune(new_profile, intervals, result, distribution)
            history.setdefault(j, []).append(
                {
                    "sql": template.sql,
                    "min_cost": new_profile.min_cost,
                    "max_cost": new_profile.max_cost,
                    "accepted": not pruned,
                }
            )
            if pruned:
                result.pruned += 1
                counters[j]["pruned"] += 1
                continue
            new_profiles.append(new_profile)
            result.accepted.append(new_profile.template)
            counters[j]["accepted"] += 1
        if telemetry.enabled:
            for j in intervals:
                low, high = distribution.interval_bounds(j)
                with telemetry.span(
                    "refine.interval", interval=j, low=low, high=high,
                    with_history=phase.use_history,
                ) as span:
                    span.set(**counters[j])
                telemetry.count("refine.attempts", counters[j]["attempts"])
                telemetry.count("refine.accepted", counters[j]["accepted"])
                telemetry.count("refine.pruned", counters[j]["pruned"])
        return new_profiles

    def _llm_refine(
        self,
        profile: TemplateProfile,
        interval: tuple[float, float],
        history: list[dict] | None,
        cost_type: str,
    ) -> str:
        payload = {
            "task": "refine_template",
            "schema": self.schema,
            "template": profile.template.sql,
            "target_interval": list(interval),
            "cost_summary": profile.cost_summary(),
            "history": history or [],
            "cost_type": cost_type,
        }
        prompt = refine_template_prompt(
            profile.template.sql,
            profile.cost_summary(),
            interval,
            history,
            payload,
        )
        response = self.llm.complete(prompt, task="refine_template")
        return extract_sql(response.text)

    def _make_template(self, parent: SqlTemplate, sql: str) -> SqlTemplate:
        self._refined_counter += 1
        return parent.with_sql(sql, f"{parent.template_id}_r{self._refined_counter}")

    # -- pruning (Eq. 4) ------------------------------------------------------------

    def _prune(
        self,
        new_profile: TemplateProfile,
        target_intervals: list[int],
        result: RefinementResult,
        distribution: CostDistribution,
    ) -> bool:
        """True if the refined template should be discarded."""
        if not new_profile.is_usable:
            return True
        if self.config.strict_spec_refinement:
            spec = getattr(self, "_specs_by_id", {}).get(
                new_profile.template.spec_id
            )
            if spec is not None:
                satisfied, _ = check_template(new_profile.template.sql, spec)
                if not satisfied:
                    return True
        # Keep if any observed cost lands in an underrepresented interval.
        for cost in new_profile.costs:
            interval = distribution.interval_of(cost)
            if interval is not None and interval in target_intervals:
                return False
        # Keep if it reduces the overall distribution distance.
        current_costs = [c for p in result.profiles for c in p.costs]
        before = distribution.wasserstein(current_costs)
        after = distribution.wasserstein(current_costs + new_profile.costs)
        if after < before:
            return False
        # Keep stepping stones: a variant that lands meaningfully closer to
        # an uncovered interval than its parent lets the next refinement
        # round compound transforms instead of restarting from the seed.
        parent = next(
            (
                p
                for p in result.profiles
                if p.template.template_id == new_profile.template.parent_id
            ),
            None,
        )
        if parent is not None and parent.is_usable:
            from .profiler import interval_distance

            for j in target_intervals:
                low, high = distribution.interval_bounds(j)
                new_gap = min(
                    interval_distance(c, low, high) for c in new_profile.costs
                )
                parent_gap = min(
                    interval_distance(c, low, high) for c in parent.costs
                )
                if new_gap < 0.7 * parent_gap:
                    return False
        return True
