"""Step 1 of the template generator: database schema summarisation.

Extracts the three metadata categories the paper describes — table-level
(names, sizes, tuple counts), column-level (names, types, distinct counts),
and constraint-level (primary/foreign keys, indexes) — both as a structured
payload for prompts and as human-readable text.
"""

from __future__ import annotations

from repro.sqldb import Database


def schema_payload(db: Database) -> dict:
    """The machine-readable schema summary carried in every LLM prompt."""
    catalog = db.catalog
    tables = []
    for name in catalog.table_names:
        meta = catalog.table(name)
        columns = []
        for column in meta.columns:
            stats = column.stats
            entry: dict = {
                "name": column.name,
                "type": column.sql_type.value,
                "ndv": int(stats.distinct_count) if stats else None,
            }
            if stats is not None and isinstance(stats.min_value, (int, float)):
                entry["min"] = float(stats.min_value)
                entry["max"] = float(stats.max_value)
            columns.append(entry)
        tables.append(
            {
                "name": name,
                "rows": meta.row_count,
                "pages": meta.page_count,
                "primary_key": list(meta.primary_key),
                "indexes": [i.column for i in catalog.indexes_of(name)],
                "columns": columns,
            }
        )
    join_edges = [
        {
            "table": fk.table,
            "column": fk.column,
            "ref_table": fk.ref_table,
            "ref_column": fk.ref_column,
        }
        for fk in catalog.foreign_keys
    ]
    return {"database": db.name, "tables": tables, "join_edges": join_edges}


def schema_text(db: Database) -> str:
    """A compact human-readable schema summary (prompt prose)."""
    catalog = db.catalog
    lines = [f"Database '{db.name}' with {len(catalog.table_names)} tables:"]
    for name in catalog.table_names:
        meta = catalog.table(name)
        columns = ", ".join(
            f"{c.name} {c.sql_type.value}"
            + (f" (ndv={int(c.stats.distinct_count)})" if c.stats else "")
            for c in meta.columns
        )
        pk = f"; pk=({', '.join(meta.primary_key)})" if meta.primary_key else ""
        lines.append(f"  {name} [{meta.row_count} rows{pk}]: {columns}")
    if catalog.foreign_keys:
        lines.append("Foreign keys:")
        for fk in catalog.foreign_keys:
            lines.append(f"  {fk}")
    return "\n".join(lines)
