"""The customized SQL template generator (paper Section 4).

Steps 1-5: summarize the schema, sample a join path compatible with the
spec, build the prompt, invoke the LLM, then run the check-and-rewrite loop
(Algorithm 1) until the template is executable and spec-compliant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.llm import LLMClient, SimulatedLLM, extract_sql, template_generation_prompt
from repro.obs import current as current_telemetry
from repro.sqldb import Database
from repro.workload import (
    SqlTemplate,
    TemplateSpec,
    check_template,
    infer_placeholder_bindings,
)
from .check_rewrite import RewriteTrace, check_and_rewrite, spec_to_payload
from .config import BarberConfig
from .join_paths import sample_join_path
from .schema_summary import schema_payload
from .validation import template_error


@dataclass
class TemplateGenerationReport:
    """Outcome of generating a batch of templates."""

    traces: list[RewriteTrace] = field(default_factory=list)

    @property
    def alignment_accuracy(self) -> float:
        """Fraction of templates whose final SQL satisfies its spec
        (the paper's Template Alignment Accuracy metric)."""
        if not self.traces:
            return 0.0
        return sum(t.final_ok for t in self.traces) / len(self.traces)

    def cumulative_correct(self, max_attempts: int) -> dict[str, list[int]]:
        """Figure 8a data: cumulative spec/syntax-correct template counts
        after each rewrite attempt index (0 = the initial generation)."""
        spec_counts, syntax_counts = [], []
        for attempt in range(max_attempts):
            spec_ok = syntax_ok = 0
            for trace in self.traces:
                first_spec = trace.first_spec_ok_attempt()
                first_syntax = trace.first_syntax_ok_attempt()
                spec_ok += first_spec is not None and first_spec <= attempt
                syntax_ok += first_syntax is not None and first_syntax <= attempt
            spec_counts.append(spec_ok)
            syntax_counts.append(syntax_ok)
        return {"specification": spec_counts, "syntax": syntax_counts}


class CustomizedTemplateGenerator:
    """Generates spec-conforming SQL templates for one target database."""

    def __init__(
        self,
        db: Database,
        llm: LLMClient | None = None,
        config: BarberConfig | None = None,
    ):
        self.db = db
        self.config = config or BarberConfig()
        self.llm = llm if llm is not None else SimulatedLLM(seed=self.config.seed)
        self._rng = np.random.default_rng(self.config.seed)
        self._schema = schema_payload(db)

    @property
    def schema(self) -> dict:
        return self._schema

    def generate(self, spec: TemplateSpec) -> tuple[SqlTemplate | None, RewriteTrace]:
        """Steps 2-5 for one spec: sample path, prompt, generate, rewrite."""
        telemetry = current_telemetry()
        with telemetry.span("template.generate", spec_id=spec.spec_id) as span:
            num_joins = spec.num_joins if spec.num_joins is not None else int(
                self._rng.integers(0, 3)
            )
            join_path = sample_join_path(
                self.db, num_joins, self._rng, num_tables=spec.num_tables
            )
            payload = {
                "task": "generate_template",
                "schema": self._schema,
                "join_path": join_path,
                "spec": spec_to_payload(spec),
            }
            prompt = template_generation_prompt(
                self._schema, join_path, spec.to_prompt_text(), payload
            )
            response = self.llm.complete(prompt, task="generate_template")
            candidate = extract_sql(response.text)
            trace = check_and_rewrite(
                candidate, spec, self.db, self.llm, self._schema, self.config
            )
            template = self._finalize(trace.final_sql, spec)
            if telemetry.enabled:
                span.set(
                    attempts=len(trace.attempts),
                    rewrites=trace.rewrites,
                    final_ok=trace.final_ok,
                    usable=template is not None,
                )
                telemetry.count("generator.templates")
                if template is None:
                    telemetry.count("generator.dropped")
        return template, trace

    def generate_many(
        self, specs: list[TemplateSpec]
    ) -> tuple[list[SqlTemplate], TemplateGenerationReport]:
        """Generate one template per spec; broken finals are dropped."""
        templates: list[SqlTemplate] = []
        report = TemplateGenerationReport()
        for spec in specs:
            template, trace = self.generate(spec)
            report.traces.append(trace)
            if template is not None:
                templates.append(template)
        return templates, report

    def _finalize(self, sql: str, spec: TemplateSpec) -> SqlTemplate | None:
        """Build the SqlTemplate (with placeholder metadata) if executable."""
        if template_error(sql, self.db, self.config) is not None:
            return None
        template = SqlTemplate(
            template_id=f"{spec.spec_id}_t",
            sql=sql,
            spec_id=spec.spec_id,
        )
        template.placeholders = infer_placeholder_bindings(
            template.parse(), self.db.catalog
        )
        return template
