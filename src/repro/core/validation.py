"""Template executability checking (D.ValidateSyntax in Algorithm 1).

A template with placeholders cannot be planned directly, so validation
instantiates it with cheap probe values derived from column statistics and
asks the engine to parse, bind, and plan the result.  Any
:class:`~repro.sqldb.errors.SqlError` message is returned verbatim — it is
the DBMS feedback the LLM repairs against.
"""

from __future__ import annotations

from repro.sqldb import Database, SqlError
from repro.sqldb.types import SqlType
from repro.workload import PlaceholderInfo, SqlTemplate, infer_placeholder_bindings
from .config import BarberConfig


def probe_values(
    infos: list[PlaceholderInfo], db: Database, config: BarberConfig
) -> dict[str, object]:
    """Cheap representative values for each placeholder (midpoints)."""
    values: dict[str, object] = {}
    low, high = config.unbound_placeholder_range
    for info in infos:
        if info.table is None or info.column is None:
            values[info.name] = (low + high) // 2
            continue
        stats = db.catalog.column_stats(info.table, info.column)
        if stats is None or stats.min_value is None:
            values[info.name] = (low + high) // 2
            continue
        if info.sql_type is SqlType.TEXT:
            if info.operator == "like":
                sample = str(stats.min_value)
                values[info.name] = f"%{sample[:2]}%"
            elif stats.mcv_values:
                values[info.name] = stats.mcv_values[0]
            else:
                values[info.name] = stats.min_value
            continue
        midpoint = (float(stats.min_value) + float(stats.max_value)) / 2.0
        if info.sql_type in (SqlType.INTEGER, SqlType.BIGINT, SqlType.DATE):
            values[info.name] = int(midpoint)
        else:
            values[info.name] = midpoint
    return values


def template_error(
    sql: str, db: Database, config: BarberConfig
) -> str | None:
    """None if the template is executable, else the DBMS error message."""
    template = SqlTemplate(template_id="probe", sql=sql)
    try:
        statement = template.parse()
    except SqlError as exc:
        return str(exc)
    try:
        infos = infer_placeholder_bindings(statement, db.catalog)
        instantiated = SqlTemplate(
            template_id="probe", sql=sql, placeholders=infos
        ).instantiate(probe_values(infos, db, config))
    except (SqlError, KeyError) as exc:
        return str(exc)
    ok, error = db.validate(instantiated)
    return None if ok else error
