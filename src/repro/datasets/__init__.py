"""Datasets: TPC-H and IMDB generators plus fleet-derived distributions."""

from .fleets import (
    COST_RANGE,
    fleet_distribution,
    fleet_samples,
    normal_distribution,
    uniform_distribution,
)
from .imdb import build_imdb
from .registry import build_database, clear_cache, dataset_names
from .specs import NL_INSTRUCTIONS, redset_spec_workload
from .tpch import build_tpch

__all__ = [
    "COST_RANGE",
    "NL_INSTRUCTIONS",
    "build_database",
    "build_imdb",
    "build_tpch",
    "clear_cache",
    "dataset_names",
    "fleet_distribution",
    "fleet_samples",
    "normal_distribution",
    "redset_spec_workload",
    "uniform_distribution",
]
