"""Fleet-derived target cost distributions (Snowset and Redset stand-ins).

The paper derives its eight real-world target distributions from execution
statistics published by Snowflake (Snowset) and Amazon Redshift (Redset).
Those raw multi-terabyte logs are not redistributable, so this module models
their published *shapes* — heavy-tailed log-normal mixtures for cardinality
and execution time — and regenerates target histograms over the paper's
``[0, 10k]`` cost range.  Each named distribution is deterministic.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.workload import CostDistribution

COST_RANGE = (0.0, 10_000.0)


def _lognormal_mixture(
    rng: np.random.Generator,
    n: int,
    components: list[tuple[float, float, float]],
) -> np.ndarray:
    """Sample a mixture of log-normals: (weight, mu, sigma) components."""
    weights = np.array([w for w, _, _ in components], dtype=np.float64)
    weights = weights / weights.sum()
    choices = rng.choice(len(components), size=n, p=weights)
    samples = np.empty(n)
    for index, (_, mu, sigma) in enumerate(components):
        mask = choices == index
        samples[mask] = rng.lognormal(mu, sigma, int(mask.sum()))
    return samples


# The mixture shapes below are fit by eye to the published fleet analyses:
# Snowset cardinalities are dominated by small results with a long tail;
# the second cardinality mix is bimodal (point lookups vs. large scans);
# execution-time mixes skew low with a heavy tail (Redset more so).
_FLEET_MIXES: dict[str, list[tuple[float, float, float]]] = {
    "snowset_card_1": [(0.55, 5.2, 1.3), (0.35, 7.4, 0.9), (0.10, 8.9, 0.4)],
    "snowset_card_2": [(0.45, 4.4, 1.0), (0.40, 8.3, 0.7), (0.15, 6.6, 0.5)],
    "snowset_cost": [(0.60, 5.6, 1.2), (0.30, 7.8, 0.8), (0.10, 9.0, 0.3)],
    "redset_cost": [(0.70, 5.0, 1.4), (0.20, 7.6, 0.9), (0.10, 8.8, 0.5)],
}


def fleet_samples(name: str, n: int = 50_000, seed: int = 123) -> np.ndarray:
    """Raw cost samples from a named fleet model, clipped to the cost range."""
    if name not in _FLEET_MIXES:
        raise KeyError(
            f"unknown fleet {name!r}; available: {sorted(_FLEET_MIXES)}"
        )
    # zlib.crc32 is stable across processes (unlike hash(), which is
    # randomized per interpreter run and would make targets irreproducible).
    rng = np.random.default_rng(seed + zlib.crc32(name.encode()) % 1000)
    samples = _lognormal_mixture(rng, n, _FLEET_MIXES[name])
    return np.clip(samples, COST_RANGE[0], COST_RANGE[1])


def fleet_distribution(
    name: str,
    num_queries: int,
    num_intervals: int,
    cost_type: str,
    display_name: str | None = None,
) -> CostDistribution:
    """A target :class:`CostDistribution` derived from a fleet model."""
    samples = fleet_samples(name)
    return CostDistribution.from_samples(
        samples,
        COST_RANGE[0],
        COST_RANGE[1],
        num_queries,
        num_intervals,
        name=display_name or name,
        cost_type=cost_type,
    )


def uniform_distribution(num_queries: int, num_intervals: int,
                         cost_type: str = "plan_cost") -> CostDistribution:
    return CostDistribution.uniform(
        *COST_RANGE, num_queries, num_intervals, name="uniform",
        cost_type=cost_type,
    )


def normal_distribution(num_queries: int, num_intervals: int,
                        cost_type: str = "plan_cost") -> CostDistribution:
    return CostDistribution.normal(
        *COST_RANGE, num_queries, num_intervals, name="normal",
        cost_type=cost_type,
    )
