"""A deterministic IMDB (JOB schema) data generator.

All 21 tables of the Join Order Benchmark schema with their real column
names and foreign-key structure.  Reference columns use Zipf-skewed
popularity (a handful of famous movies attract most of the cast and info
rows), matching the skew that makes IMDB a hard optimizer benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.sqldb import Database, SqlType, Table

KIND_TYPES = ["movie", "tv series", "tv movie", "video movie",
              "tv mini series", "video game", "episode"]
COMP_CAST_TYPES = ["cast", "crew", "complete", "complete+verified"]
COMPANY_TYPES = ["distributors", "production companies",
                 "special effects companies", "miscellaneous companies"]
LINK_TYPES = ["follows", "followed by", "remake of", "remade as",
              "references", "referenced in", "spoofs", "spoofed in",
              "features", "featured in", "spin off from", "spin off",
              "version of", "similar to", "edited into", "edited from",
              "alternate language version of", "unknown link"]
ROLE_TYPES = ["actor", "actress", "producer", "writer", "cinematographer",
              "composer", "costume designer", "director", "editor",
              "miscellaneous crew", "production designer", "guest"]
INFO_KINDS = [f"info_kind_{i}" for i in range(40)]
COUNTRY_CODES = ["[us]", "[gb]", "[de]", "[fr]", "[jp]", "[in]", "[ca]", "[it]"]
GENDERS = ["m", "f", None]

# Base row counts at scale=1.0 (a compact but structurally faithful IMDB).
_BASE_ROWS = {
    "title": 4000,
    "name": 8000,
    "char_name": 6000,
    "company_name": 2000,
    "keyword": 3000,
    "cast_info": 30000,
    "movie_info": 15000,
    "movie_info_idx": 4000,
    "movie_keyword": 10000,
    "movie_companies": 8000,
    "person_info": 8000,
    "aka_name": 2000,
    "aka_title": 1000,
    "movie_link": 600,
    "complete_cast": 400,
}

DEFAULT_SCALE = 3.0


def _zipf_refs(rng: np.random.Generator, n: int, domain: int) -> list[int]:
    """Skewed foreign-key references: low ids are heavily popular."""
    raw = rng.zipf(1.3, n)
    return (np.minimum(raw, domain) - 1).astype(np.int64).tolist()


def build_imdb(scale: float = DEFAULT_SCALE, seed: int = 11) -> Database:
    """Build a fully-loaded, analyzed IMDB (JOB) database."""
    rng = np.random.default_rng(seed)
    rows = {k: max(int(v * scale), 10) for k, v in _BASE_ROWS.items()}
    db = Database("imdb")

    def lookup_table(name: str, column: str, values: list[str]) -> None:
        db.create_table(
            Table.from_dict(
                name,
                {"id": list(range(len(values))), column: values},
                {"id": SqlType.INTEGER, column: SqlType.TEXT},
            ),
            primary_key=["id"],
        )

    lookup_table("kind_type", "kind", KIND_TYPES)
    lookup_table("comp_cast_type", "kind", COMP_CAST_TYPES)
    lookup_table("company_type", "kind", COMPANY_TYPES)
    lookup_table("link_type", "link", LINK_TYPES)
    lookup_table("role_type", "role", ROLE_TYPES)
    lookup_table("info_type", "info", INFO_KINDS)

    n_title = rows["title"]
    db.create_table(
        Table.from_dict(
            "title",
            {
                "id": list(range(n_title)),
                "title": [f"Movie Title {i % 1500}" for i in range(n_title)],
                "kind_id": rng.integers(0, len(KIND_TYPES), n_title).tolist(),
                "production_year": np.clip(
                    rng.normal(1995, 18, n_title).astype(int), 1900, 2024
                ).tolist(),
                "episode_nr": [
                    int(v) if v < 50 else None
                    for v in rng.integers(0, 200, n_title)
                ],
            },
            {
                "id": SqlType.INTEGER,
                "title": SqlType.TEXT,
                "kind_id": SqlType.INTEGER,
                "production_year": SqlType.INTEGER,
                "episode_nr": SqlType.INTEGER,
            },
        ),
        primary_key=["id"],
    )

    n_name = rows["name"]
    db.create_table(
        Table.from_dict(
            "name",
            {
                "id": list(range(n_name)),
                "name": [f"Person {i % 3000} Name" for i in range(n_name)],
                "gender": rng.choice(
                    ["m", "f"], n_name, p=[0.62, 0.38]
                ).tolist(),
            },
            {"id": SqlType.INTEGER, "name": SqlType.TEXT, "gender": SqlType.TEXT},
        ),
        primary_key=["id"],
    )

    n_char = rows["char_name"]
    db.create_table(
        Table.from_dict(
            "char_name",
            {
                "id": list(range(n_char)),
                "name": [f"Character {i % 2000}" for i in range(n_char)],
            },
            {"id": SqlType.INTEGER, "name": SqlType.TEXT},
        ),
        primary_key=["id"],
    )

    n_company = rows["company_name"]
    db.create_table(
        Table.from_dict(
            "company_name",
            {
                "id": list(range(n_company)),
                "name": [f"Company {i % 800} Inc" for i in range(n_company)],
                "country_code": rng.choice(COUNTRY_CODES, n_company).tolist(),
            },
            {
                "id": SqlType.INTEGER,
                "name": SqlType.TEXT,
                "country_code": SqlType.TEXT,
            },
        ),
        primary_key=["id"],
    )

    n_keyword = rows["keyword"]
    db.create_table(
        Table.from_dict(
            "keyword",
            {
                "id": list(range(n_keyword)),
                "keyword": [f"keyword-{i}" for i in range(n_keyword)],
            },
            {"id": SqlType.INTEGER, "keyword": SqlType.TEXT},
        ),
        primary_key=["id"],
    )

    n_cast = rows["cast_info"]
    db.create_table(
        Table.from_dict(
            "cast_info",
            {
                "id": list(range(n_cast)),
                "person_id": _zipf_refs(rng, n_cast, n_name),
                "movie_id": _zipf_refs(rng, n_cast, n_title),
                "person_role_id": _zipf_refs(rng, n_cast, n_char),
                "role_id": rng.integers(0, len(ROLE_TYPES), n_cast).tolist(),
                "nr_order": rng.integers(1, 60, n_cast).tolist(),
            },
            {
                "id": SqlType.INTEGER,
                "person_id": SqlType.INTEGER,
                "movie_id": SqlType.INTEGER,
                "person_role_id": SqlType.INTEGER,
                "role_id": SqlType.INTEGER,
                "nr_order": SqlType.INTEGER,
            },
        ),
        primary_key=["id"],
    )

    def movie_attribute_table(
        name: str, count: int, extra: dict, extra_types: dict
    ) -> None:
        data = {
            "id": list(range(count)),
            "movie_id": _zipf_refs(rng, count, n_title),
            **extra,
        }
        types = {
            "id": SqlType.INTEGER,
            "movie_id": SqlType.INTEGER,
            **extra_types,
        }
        db.create_table(Table.from_dict(name, data, types), primary_key=["id"])

    n_minfo = rows["movie_info"]
    movie_attribute_table(
        "movie_info",
        n_minfo,
        {
            "info_type_id": rng.integers(0, len(INFO_KINDS), n_minfo).tolist(),
            "info": [f"info value {i % 997}" for i in range(n_minfo)],
        },
        {"info_type_id": SqlType.INTEGER, "info": SqlType.TEXT},
    )

    n_midx = rows["movie_info_idx"]
    movie_attribute_table(
        "movie_info_idx",
        n_midx,
        {
            "info_type_id": rng.integers(0, len(INFO_KINDS), n_midx).tolist(),
            "info": [f"{round(v, 1)}" for v in rng.uniform(1.0, 10.0, n_midx)],
        },
        {"info_type_id": SqlType.INTEGER, "info": SqlType.TEXT},
    )

    n_mkw = rows["movie_keyword"]
    movie_attribute_table(
        "movie_keyword",
        n_mkw,
        {"keyword_id": _zipf_refs(rng, n_mkw, n_keyword)},
        {"keyword_id": SqlType.INTEGER},
    )

    n_mc = rows["movie_companies"]
    movie_attribute_table(
        "movie_companies",
        n_mc,
        {
            "company_id": _zipf_refs(rng, n_mc, n_company),
            "company_type_id": rng.integers(0, len(COMPANY_TYPES), n_mc).tolist(),
        },
        {"company_id": SqlType.INTEGER, "company_type_id": SqlType.INTEGER},
    )

    n_pinfo = rows["person_info"]
    db.create_table(
        Table.from_dict(
            "person_info",
            {
                "id": list(range(n_pinfo)),
                "person_id": _zipf_refs(rng, n_pinfo, n_name),
                "info_type_id": rng.integers(0, len(INFO_KINDS), n_pinfo).tolist(),
                "info": [f"person info {i % 500}" for i in range(n_pinfo)],
            },
            {
                "id": SqlType.INTEGER,
                "person_id": SqlType.INTEGER,
                "info_type_id": SqlType.INTEGER,
                "info": SqlType.TEXT,
            },
        ),
        primary_key=["id"],
    )

    n_aka_name = rows["aka_name"]
    db.create_table(
        Table.from_dict(
            "aka_name",
            {
                "id": list(range(n_aka_name)),
                "person_id": _zipf_refs(rng, n_aka_name, n_name),
                "name": [f"Alias {i}" for i in range(n_aka_name)],
            },
            {
                "id": SqlType.INTEGER,
                "person_id": SqlType.INTEGER,
                "name": SqlType.TEXT,
            },
        ),
        primary_key=["id"],
    )

    n_aka_title = rows["aka_title"]
    movie_attribute_table(
        "aka_title",
        n_aka_title,
        {
            "title": [f"Alt Title {i}" for i in range(n_aka_title)],
            "kind_id": rng.integers(0, len(KIND_TYPES), n_aka_title).tolist(),
        },
        {"title": SqlType.TEXT, "kind_id": SqlType.INTEGER},
    )

    n_link = rows["movie_link"]
    movie_attribute_table(
        "movie_link",
        n_link,
        {
            "linked_movie_id": _zipf_refs(rng, n_link, n_title),
            "link_type_id": rng.integers(0, len(LINK_TYPES), n_link).tolist(),
        },
        {"linked_movie_id": SqlType.INTEGER, "link_type_id": SqlType.INTEGER},
    )

    n_cc = rows["complete_cast"]
    movie_attribute_table(
        "complete_cast",
        n_cc,
        {
            "subject_id": rng.integers(0, len(COMP_CAST_TYPES), n_cc).tolist(),
            "status_id": rng.integers(0, len(COMP_CAST_TYPES), n_cc).tolist(),
        },
        {"subject_id": SqlType.INTEGER, "status_id": SqlType.INTEGER},
    )

    for fk in (
        ("title", "kind_id", "kind_type", "id"),
        ("aka_title", "movie_id", "title", "id"),
        ("aka_name", "person_id", "name", "id"),
        ("cast_info", "person_id", "name", "id"),
        ("cast_info", "movie_id", "title", "id"),
        ("cast_info", "person_role_id", "char_name", "id"),
        ("cast_info", "role_id", "role_type", "id"),
        ("complete_cast", "movie_id", "title", "id"),
        ("complete_cast", "subject_id", "comp_cast_type", "id"),
        ("movie_companies", "movie_id", "title", "id"),
        ("movie_companies", "company_id", "company_name", "id"),
        ("movie_companies", "company_type_id", "company_type", "id"),
        ("movie_info", "movie_id", "title", "id"),
        ("movie_info", "info_type_id", "info_type", "id"),
        ("movie_info_idx", "movie_id", "title", "id"),
        ("movie_info_idx", "info_type_id", "info_type", "id"),
        ("movie_keyword", "movie_id", "title", "id"),
        ("movie_keyword", "keyword_id", "keyword", "id"),
        ("movie_link", "movie_id", "title", "id"),
        ("movie_link", "link_type_id", "link_type", "id"),
        ("person_info", "person_id", "name", "id"),
        ("person_info", "info_type_id", "info_type", "id"),
    ):
        db.add_foreign_key(*fk)
    return db
