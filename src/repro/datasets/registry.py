"""Dataset registry: build target databases by name, with caching.

Building and analyzing a dataset takes a few seconds, and experiment
harnesses request the same database repeatedly, so builds are memoized by
``(name, scale, seed)``.
"""

from __future__ import annotations

from typing import Callable

from repro.sqldb import Database
from . import imdb, tpch

_BUILDERS: dict[str, Callable[..., Database]] = {
    "tpch": tpch.build_tpch,
    "imdb": imdb.build_imdb,
}

_DEFAULT_SCALES = {
    "tpch": tpch.DEFAULT_SCALE,
    "imdb": imdb.DEFAULT_SCALE,
}

_CACHE: dict[tuple, Database] = {}


def dataset_names() -> list[str]:
    return sorted(_BUILDERS)


def build_database(
    name: str, scale: float | None = None, seed: int | None = None,
    cached: bool = True,
) -> Database:
    """Build (or fetch a cached) dataset by name ("tpch" or "imdb")."""
    if name not in _BUILDERS:
        raise KeyError(f"unknown dataset {name!r}; available: {dataset_names()}")
    scale = scale if scale is not None else _DEFAULT_SCALES[name]
    key = (name, scale, seed)
    if cached and key in _CACHE:
        return _CACHE[key]
    kwargs = {"scale": scale}
    if seed is not None:
        kwargs["seed"] = seed
    database = _BUILDERS[name](**kwargs)
    if cached:
        _CACHE[key] = database
    return database


def clear_cache() -> None:
    _CACHE.clear()
