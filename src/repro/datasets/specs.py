"""The Redset-style template specification workload.

The paper's experiments use a randomly selected Amazon Redshift workload of
24 SQL templates, each annotated with ``num_tables_accessed``, ``num_joins``
and ``num_aggregations``, plus three natural-language instructions — nested
subquery, predicate-count, and GROUP BY — randomly assigned so every
template carries at least one.  This module regenerates an equivalent spec
workload deterministically, scaled to the join-graph diameter of the target
database.
"""

from __future__ import annotations

import numpy as np

from repro.workload import TemplateSpec

NL_INSTRUCTIONS = (
    "The template must contain a nested subquery.",
    "The template must have exactly {n} predicate values.",
    "The template must use the GROUP BY operator.",
)

NUM_SPECS = 24


def redset_spec_workload(
    num_specs: int = NUM_SPECS,
    seed: int = 2024,
    max_joins: int = 4,
) -> list[TemplateSpec]:
    """Generate the 24-template Redset-style spec workload.

    Join/table/aggregation counts follow the fleet finding that most
    production templates are small (0-2 joins) with a tail of larger ones;
    every spec carries at least one of the three NL instructions.
    """
    rng = np.random.default_rng(seed)
    specs: list[TemplateSpec] = []
    join_choices = np.arange(0, max_joins + 1)
    join_weights = np.array([0.30, 0.30, 0.20, 0.12, 0.08][: max_joins + 1])
    join_weights = join_weights / join_weights.sum()
    for index in range(num_specs):
        num_joins = int(rng.choice(join_choices, p=join_weights))
        num_tables = num_joins + 1
        if num_joins >= 2 and rng.random() < 0.2:
            num_tables = num_joins  # one self-join
        num_aggregations = int(rng.choice([0, 1, 2, 3], p=[0.35, 0.3, 0.2, 0.15]))
        spec = TemplateSpec(
            spec_id=f"redset_{index:02d}",
            num_tables=num_tables,
            num_joins=num_joins,
            num_aggregations=num_aggregations,
        )
        instructions = _assign_instructions(rng)
        spec = spec.merged_with_instructions(*instructions)
        specs.append(spec)
    return specs


def _assign_instructions(rng: np.random.Generator) -> list[str]:
    """At least one (possibly several) of the three NL instructions."""
    picked: list[str] = []
    order = rng.permutation(len(NL_INSTRUCTIONS))
    for position, index in enumerate(order):
        take = position == 0 or rng.random() < 0.35
        if not take:
            continue
        text = NL_INSTRUCTIONS[index]
        if "{n}" in text:
            text = text.format(n=int(rng.integers(1, 4)))
        picked.append(text)
    return picked
