"""A deterministic TPC-H data generator for the embedded engine.

All eight TPC-H tables with the spec's key relationships and realistic value
distributions (skewed prices, date ranges, categorical segments).  The
``scale`` parameter mirrors the official scale factor: ``scale=1.0``
corresponds to SF1 row counts; the reproduction defaults to a much smaller
scale because the optimizer's estimates — not raw data volume — drive every
experiment.
"""

from __future__ import annotations

import numpy as np

from repro.sqldb import Database, SqlType, Table

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
MARKET_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
ORDER_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
PART_TYPES = [
    f"{a} {b} {c}"
    for a in ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
    for b in ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
    for c in ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
]
RETURN_FLAGS = ["R", "A", "N"]
LINE_STATUSES = ["O", "F"]
# Order dates span 1992-01-01 .. 1998-08-02, expressed as epoch days.
_DATE_LOW, _DATE_HIGH = 8035, 10440

# SF1 row counts, scaled linearly (region and nation are fixed size).
_SF1_ROWS = {
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}

DEFAULT_SCALE = 0.01


def table_rows(scale: float) -> dict[str, int]:
    """Row counts per table at the given scale factor."""
    counts = {name: max(int(n * scale), 10) for name, n in _SF1_ROWS.items()}
    counts["region"] = len(REGIONS)
    counts["nation"] = len(NATIONS)
    return counts


def build_tpch(scale: float = DEFAULT_SCALE, seed: int = 7) -> Database:
    """Build a fully-loaded, analyzed TPC-H database."""
    rng = np.random.default_rng(seed)
    rows = table_rows(scale)
    db = Database("tpch")

    db.create_table(
        Table.from_dict(
            "region",
            {
                "r_regionkey": list(range(len(REGIONS))),
                "r_name": REGIONS,
                "r_comment": [f"region comment {i}" for i in range(len(REGIONS))],
            },
            {
                "r_regionkey": SqlType.INTEGER,
                "r_name": SqlType.TEXT,
                "r_comment": SqlType.TEXT,
            },
        ),
        primary_key=["r_regionkey"],
    )

    db.create_table(
        Table.from_dict(
            "nation",
            {
                "n_nationkey": list(range(len(NATIONS))),
                "n_name": [n for n, _ in NATIONS],
                "n_regionkey": [r for _, r in NATIONS],
            },
            {
                "n_nationkey": SqlType.INTEGER,
                "n_name": SqlType.TEXT,
                "n_regionkey": SqlType.INTEGER,
            },
        ),
        primary_key=["n_nationkey"],
    )

    n_supplier = rows["supplier"]
    db.create_table(
        Table.from_dict(
            "supplier",
            {
                "s_suppkey": list(range(n_supplier)),
                "s_name": [f"Supplier#{i:09d}" for i in range(n_supplier)],
                "s_nationkey": rng.integers(0, len(NATIONS), n_supplier).tolist(),
                "s_acctbal": np.round(
                    rng.uniform(-999.99, 9999.99, n_supplier), 2
                ).tolist(),
            },
            {
                "s_suppkey": SqlType.INTEGER,
                "s_name": SqlType.TEXT,
                "s_nationkey": SqlType.INTEGER,
                "s_acctbal": SqlType.DOUBLE,
            },
        ),
        primary_key=["s_suppkey"],
    )

    n_customer = rows["customer"]
    db.create_table(
        Table.from_dict(
            "customer",
            {
                "c_custkey": list(range(n_customer)),
                "c_name": [f"Customer#{i:09d}" for i in range(n_customer)],
                "c_nationkey": rng.integers(0, len(NATIONS), n_customer).tolist(),
                "c_acctbal": np.round(
                    rng.uniform(-999.99, 9999.99, n_customer), 2
                ).tolist(),
                "c_mktsegment": rng.choice(MARKET_SEGMENTS, n_customer).tolist(),
            },
            {
                "c_custkey": SqlType.INTEGER,
                "c_name": SqlType.TEXT,
                "c_nationkey": SqlType.INTEGER,
                "c_acctbal": SqlType.DOUBLE,
                "c_mktsegment": SqlType.TEXT,
            },
        ),
        primary_key=["c_custkey"],
    )

    n_part = rows["part"]
    db.create_table(
        Table.from_dict(
            "part",
            {
                "p_partkey": list(range(n_part)),
                "p_name": [f"part {i % 500} name" for i in range(n_part)],
                "p_brand": [f"Brand#{1 + i % 25}" for i in range(n_part)],
                "p_type": rng.choice(PART_TYPES, n_part).tolist(),
                "p_size": rng.integers(1, 51, n_part).tolist(),
                "p_retailprice": np.round(
                    900.0 + rng.gamma(2.0, 150.0, n_part), 2
                ).tolist(),
            },
            {
                "p_partkey": SqlType.INTEGER,
                "p_name": SqlType.TEXT,
                "p_brand": SqlType.TEXT,
                "p_type": SqlType.TEXT,
                "p_size": SqlType.INTEGER,
                "p_retailprice": SqlType.DOUBLE,
            },
        ),
        primary_key=["p_partkey"],
    )

    n_partsupp = rows["partsupp"]
    db.create_table(
        Table.from_dict(
            "partsupp",
            {
                "ps_partkey": rng.integers(0, n_part, n_partsupp).tolist(),
                "ps_suppkey": rng.integers(0, n_supplier, n_partsupp).tolist(),
                "ps_availqty": rng.integers(1, 10_000, n_partsupp).tolist(),
                "ps_supplycost": np.round(
                    rng.uniform(1.0, 1000.0, n_partsupp), 2
                ).tolist(),
            },
            {
                "ps_partkey": SqlType.INTEGER,
                "ps_suppkey": SqlType.INTEGER,
                "ps_availqty": SqlType.INTEGER,
                "ps_supplycost": SqlType.DOUBLE,
            },
        ),
    )

    n_orders = rows["orders"]
    order_dates = rng.integers(_DATE_LOW, _DATE_HIGH, n_orders)
    db.create_table(
        Table.from_dict(
            "orders",
            {
                "o_orderkey": list(range(n_orders)),
                "o_custkey": rng.integers(0, n_customer, n_orders).tolist(),
                "o_orderstatus": rng.choice(
                    ["O", "F", "P"], n_orders, p=[0.49, 0.49, 0.02]
                ).tolist(),
                "o_totalprice": np.round(
                    1000.0 + rng.gamma(2.2, 60_000.0, n_orders) / 1000.0 * 150, 2
                ).tolist(),
                "o_orderdate": order_dates.tolist(),
                "o_orderpriority": rng.choice(ORDER_PRIORITIES, n_orders).tolist(),
            },
            {
                "o_orderkey": SqlType.INTEGER,
                "o_custkey": SqlType.INTEGER,
                "o_orderstatus": SqlType.TEXT,
                "o_totalprice": SqlType.DOUBLE,
                "o_orderdate": SqlType.DATE,
                "o_orderpriority": SqlType.TEXT,
            },
        ),
        primary_key=["o_orderkey"],
    )

    n_lineitem = rows["lineitem"]
    ship_dates = rng.integers(_DATE_LOW, _DATE_HIGH, n_lineitem)
    db.create_table(
        Table.from_dict(
            "lineitem",
            {
                "l_orderkey": rng.integers(0, n_orders, n_lineitem).tolist(),
                "l_partkey": rng.integers(0, n_part, n_lineitem).tolist(),
                "l_suppkey": rng.integers(0, n_supplier, n_lineitem).tolist(),
                "l_linenumber": (np.arange(n_lineitem) % 7 + 1).tolist(),
                "l_quantity": rng.integers(1, 51, n_lineitem).tolist(),
                "l_extendedprice": np.round(
                    rng.gamma(2.0, 18_000.0, n_lineitem) / 1000.0, 2
                ).tolist(),
                "l_discount": np.round(rng.uniform(0.0, 0.1, n_lineitem), 2).tolist(),
                "l_tax": np.round(rng.uniform(0.0, 0.08, n_lineitem), 2).tolist(),
                "l_returnflag": rng.choice(RETURN_FLAGS, n_lineitem).tolist(),
                "l_linestatus": rng.choice(LINE_STATUSES, n_lineitem).tolist(),
                "l_shipdate": ship_dates.tolist(),
                "l_commitdate": (ship_dates + rng.integers(1, 60, n_lineitem)).tolist(),
            },
            {
                "l_orderkey": SqlType.INTEGER,
                "l_partkey": SqlType.INTEGER,
                "l_suppkey": SqlType.INTEGER,
                "l_linenumber": SqlType.INTEGER,
                "l_quantity": SqlType.INTEGER,
                "l_extendedprice": SqlType.DOUBLE,
                "l_discount": SqlType.DOUBLE,
                "l_tax": SqlType.DOUBLE,
                "l_returnflag": SqlType.TEXT,
                "l_linestatus": SqlType.TEXT,
                "l_shipdate": SqlType.DATE,
                "l_commitdate": SqlType.DATE,
            },
        ),
    )

    for fk in (
        ("nation", "n_regionkey", "region", "r_regionkey"),
        ("supplier", "s_nationkey", "nation", "n_nationkey"),
        ("customer", "c_nationkey", "nation", "n_nationkey"),
        ("partsupp", "ps_partkey", "part", "p_partkey"),
        ("partsupp", "ps_suppkey", "supplier", "s_suppkey"),
        ("orders", "o_custkey", "customer", "c_custkey"),
        ("lineitem", "l_orderkey", "orders", "o_orderkey"),
        ("lineitem", "l_partkey", "part", "p_partkey"),
        ("lineitem", "l_suppkey", "supplier", "s_suppkey"),
    ):
        db.add_foreign_key(*fk)
    return db
