"""Hot-path acceleration for the SQLBarber cost loops.

Three pieces, composable but independent:

* :class:`ExplainCache` / :func:`normalize_sql` — memoize EXPLAIN results
  keyed by normalized SQL, invalidated by the catalog's statistics epoch;
* :class:`CompiledTemplate` — parse/bind a template once, re-plan per
  literal binding with no lexer/parser/binder on the hot path;
* :class:`ParallelProfiler` — fan template profiling across a thread or
  process pool with deterministic per-template seeding.

Exports resolve lazily (PEP 562): :mod:`repro.sqldb.database` imports the
cache module at import time, while :mod:`~repro.fastpath.compiled` imports
sqldb submodules — laziness keeps that cycle unwound.
"""

from __future__ import annotations

_EXPORTS = {
    "ExplainCache": ("repro.fastpath.cache", "ExplainCache"),
    "normalize_sql": ("repro.fastpath.cache", "normalize_sql"),
    "DEFAULT_CACHE_SIZE": ("repro.fastpath.cache", "DEFAULT_CACHE_SIZE"),
    "CompiledTemplate": ("repro.fastpath.compiled", "CompiledTemplate"),
    "literal_expression": ("repro.fastpath.compiled", "literal_expression"),
    "substitute_placeholders": ("repro.fastpath.compiled", "substitute_placeholders"),
    "ParallelProfiler": ("repro.fastpath.parallel", "ParallelProfiler"),
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attribute)
