"""Batched re-costing: replay the planner's decisions per binding.

:class:`CompiledTemplate` already hoists lexing, parsing, and binding out of
the per-binding loop, but each ``explain`` still deep-copies the whole bound
AST and runs the full planner — conjunct partitioning, subquery discovery,
operator counting, and statistics resolution are recomputed for every
binding even though only the literals change.

:class:`PlanReplayer` hoists the planner itself.  Built once per (template,
statistics epoch), it pre-partitions the WHERE/ON conjuncts exactly the way
:class:`~repro.sqldb.planner.Planner` would, pre-computes the selectivity
and operator-count contributions of every placeholder-free conjunct, and
records the static skeleton (sources, join conditions, residuals, aggregate
shape, ORDER BY/DISTINCT/LIMIT finalization).  Placeholder-bearing
conjuncts are *compiled*: their ``_estimate`` recursion is specialized at
build time into a closure over the per-binding literal constants, with
every placeholder-free subtree folded to a float up front.  Re-costing a
binding then only folds each placeholder's literal once and replays the
planner's greedy join-order search and cost arithmetic with scalar floats —
no AST substitution, no deep copies, no tree walks at all.

Correctness contract (the same one :mod:`repro.fastpath.compiled` carries,
enforced by ``tests/fastpath`` and the ``compiled_template`` fuzz oracle):
the replayed :class:`ExplainResult` is byte-identical to the cold
parse → bind → plan pipeline, including ``plan_text``.  Every float
operation is performed in the planner's order — conjunct selectivities fold
left-deep exactly as ``_estimate`` recurses over ``conjoin``'s AND tree,
join-condition selectivities multiply in list order, and the greedy search
uses the same strict-``<`` tie-breaks — so equality is exact, not
approximate.  Templates the replayer cannot model (subqueries, derived
tables, outer joins, placeholders outside WHERE/ON/HAVING) are detected at
build time and stay on the substitute-and-plan path.
"""

from __future__ import annotations

from typing import Mapping

from repro.sqldb import ast_nodes as ast
from repro.sqldb import cost as costs
from repro.sqldb.binder import BoundQuery
from repro.sqldb.explain import ExplainResult, explain_plan
from repro.sqldb.plan_nodes import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    HashJoinNode,
    IndexScanNode,
    LimitNode,
    NestedLoopJoinNode,
    Plan,
    PlanNode,
    ProjectNode,
    SeqScanNode,
    SortNode,
)
from repro.sqldb.planner import (
    _UNKNOWN_GROUP_NDV,
    _as_equi_condition,
    _binding_name,
    _collect_aggregates,
    _flatten_inner_joins,
    _has_outer_join,
    _indexable_column,
    _resolve_order_aliases,
    bindings_of,
    conjoin,
    shallow_walk,
    split_conjuncts,
)
from repro.sqldb.selectivity import (
    BOOL_EXPR_SELECTIVITY,
    EXISTS_SELECTIVITY,
    IN_SUBQUERY_SELECTIVITY,
    _column_stats,
    _estimate,
    constant_value,
    count_operators,
)
from repro.sqldb.stats import (
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    join_selectivity,
    like_selectivity,
)

from .compiled import literal_expression

_OPERATOR_NODES = (
    ast.BinaryOp,
    ast.UnaryOp,
    ast.Between,
    ast.Like,
    ast.IsNull,
    ast.FunctionCall,
    ast.CaseWhen,
)

_SUBQUERY_NODES = (ast.InSubquery, ast.Exists, ast.ScalarSubquery)


def _raw_op_count(expression: ast.Expression) -> int:
    """``count_operators`` without the final ``max(count, 1)``: the additive
    contribution of one conjunct to a conjoined filter's operator count."""
    count = 0
    for node in expression.walk():
        if isinstance(node, _OPERATOR_NODES):
            count += 1
        elif isinstance(node, ast.InList):
            count += max(len(node.items), 1)
    return count


def _placeholder_names(expression: ast.Expression) -> tuple[str, ...]:
    return tuple(
        node.name
        for node in expression.walk()
        if isinstance(node, ast.Placeholder)
    )


# -- compiled selectivity -----------------------------------------------------
#
# A "binding context" maps each placeholder name to ``(const, extra_ops)``:
# the value ``constant_value`` folds its rendered literal to, and the extra
# operator-count contribution of that literal's AST (1 for negative numbers,
# which render as ``UnaryOp('-', Literal)``; 0 otherwise).  The compilers
# below specialize ``constant_value`` / ``_estimate`` over the *bound* AST so
# that, per binding, evaluating a conjunct touches no AST at all — the same
# stats-method calls and float operations fire in the same order as they
# would on the substituted tree, so results are bit-identical.

_FLIPPED_OPS = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}

_ARITHMETIC = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b if b else None,
}


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _const_fn(static: bool, payload):
    """Normalize a compiled fold to a ``fn(ctx)`` callable."""
    if static:
        return lambda ctx: payload
    return payload


def _compile_const(expr: ast.Expression):
    """Compile ``constant_value(substitute(expr))`` for per-binding reuse.

    Returns ``(static, payload)``: when *static*, the fold is binding-
    independent and *payload* is the folded value; otherwise *payload* is an
    ``fn(ctx)`` computing it from the binding context.  Mirrors
    :func:`repro.sqldb.selectivity.constant_value` case for case — a
    placeholder's context constant equals ``constant_value`` of its rendered
    literal, and the fold is compositional, so the result matches folding
    the substituted AST exactly.
    """
    if isinstance(expr, ast.Placeholder):
        name = expr.name
        return False, lambda ctx: ctx[name][0]
    if isinstance(expr, ast.Literal):
        return True, constant_value(expr)
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        static, payload = _compile_const(expr.operand)

        def negate(value):
            if _is_number(value):
                return -value
            return None

        if static:
            return True, negate(payload)
        return False, lambda ctx: negate(payload(ctx))
    if isinstance(expr, ast.Cast):
        return _compile_const(expr.operand)
    if isinstance(expr, ast.BinaryOp) and expr.op in "+-*/":
        left_static, left = _compile_const(expr.left)
        right_static, right = _compile_const(expr.right)
        op = _ARITHMETIC[expr.op]

        def fold(a, b):
            if _is_number(a) and _is_number(b):
                try:
                    return op(a, b)
                except Exception:
                    return None
            return None

        if left_static and right_static:
            return True, fold(left, right)
        left_fn = _const_fn(left_static, left)
        right_fn = _const_fn(right_static, right)
        return False, lambda ctx: fold(left_fn(ctx), right_fn(ctx))
    return True, None


def _comparison_sel(op, left_stats, right_stats, left_const, right_const):
    """``selectivity._estimate_comparison`` after stats/const extraction."""
    if left_stats is None and right_stats is not None and left_const is not None:
        op = _FLIPPED_OPS.get(op, op)
        left_stats, right_const = right_stats, left_const
    if left_stats is not None and right_const is not None:
        if op == "=":
            return left_stats.eq_selectivity(right_const)
        if op == "<>":
            return 1.0 - left_stats.eq_selectivity(right_const)
        return left_stats.range_selectivity(op, right_const)
    if left_stats is not None and right_stats is not None:
        if op == "=":
            largest = max(
                left_stats.distinct_count, right_stats.distinct_count, 1.0
            )
            return 1.0 / largest
        return DEFAULT_RANGE_SELECTIVITY
    if op == "=":
        return DEFAULT_EQ_SELECTIVITY
    if op == "<>":
        return 1.0 - DEFAULT_EQ_SELECTIVITY
    return DEFAULT_RANGE_SELECTIVITY


def _compile_estimate(expr: ast.Expression, resolve):
    """Compile ``_estimate(substitute(expr), resolve)`` for per-binding reuse.

    Same ``(static, payload)`` contract as :func:`_compile_const`.  Column
    statistics are resolved at build time (substitution never creates a
    ``ColumnRef``, so they cannot change per binding); only constant folds
    of placeholder-bearing subtrees stay dynamic.
    """
    if isinstance(expr, ast.BinaryOp):
        if expr.op == "and":
            left_static, left = _compile_estimate(expr.left, resolve)
            right_static, right = _compile_estimate(expr.right, resolve)
            if left_static and right_static:
                return True, left * right
            left_fn = _const_fn(left_static, left)
            right_fn = _const_fn(right_static, right)
            return False, lambda ctx: left_fn(ctx) * right_fn(ctx)
        if expr.op == "or":
            left_static, left = _compile_estimate(expr.left, resolve)
            right_static, right = _compile_estimate(expr.right, resolve)
            if left_static and right_static:
                return True, left + right - left * right
            left_fn = _const_fn(left_static, left)
            right_fn = _const_fn(right_static, right)

            def or_sel(ctx):
                a = left_fn(ctx)
                b = right_fn(ctx)
                return a + b - a * b

            return False, or_sel
        if expr.op in ("=", "<>", "<", "<=", ">", ">="):
            op = expr.op
            left_stats = _column_stats(expr.left, resolve)
            right_stats = _column_stats(expr.right, resolve)
            left_static, left = _compile_const(expr.left)
            right_static, right = _compile_const(expr.right)
            if left_static and right_static:
                return True, _comparison_sel(
                    op, left_stats, right_stats, left, right
                )
            left_fn = _const_fn(left_static, left)
            right_fn = _const_fn(right_static, right)
            return False, lambda ctx: _comparison_sel(
                op, left_stats, right_stats, left_fn(ctx), right_fn(ctx)
            )
        return True, BOOL_EXPR_SELECTIVITY
    if isinstance(expr, ast.UnaryOp) and expr.op == "not":
        static, payload = _compile_estimate(expr.operand, resolve)
        if static:
            return True, 1.0 - payload
        return False, lambda ctx: 1.0 - payload(ctx)
    if isinstance(expr, ast.IsNull):
        stats = _column_stats(expr.operand, resolve)
        fraction = stats.null_fraction if stats else DEFAULT_EQ_SELECTIVITY
        return True, 1.0 - fraction if expr.negated else fraction
    if isinstance(expr, ast.Between):
        stats = _column_stats(expr.operand, resolve)
        low_static, low = _compile_const(expr.low)
        high_static, high = _compile_const(expr.high)
        negated = expr.negated

        def between_sel(low_const, high_const):
            if stats is not None and low_const is not None and high_const is not None:
                sel = stats.between_selectivity(low_const, high_const)
            else:
                sel = DEFAULT_RANGE_SELECTIVITY * 0.5
            return 1.0 - sel if negated else sel

        if low_static and high_static:
            return True, between_sel(low, high)
        low_fn = _const_fn(low_static, low)
        high_fn = _const_fn(high_static, high)
        return False, lambda ctx: between_sel(low_fn(ctx), high_fn(ctx))
    if isinstance(expr, ast.InList):
        stats = _column_stats(expr.operand, resolve)
        compiled = [_compile_const(item) for item in expr.items]
        negated = expr.negated

        def in_sel(consts):
            total = 0.0
            for value in consts:
                if stats is not None and value is not None:
                    total += stats.eq_selectivity(value)
                else:
                    total += DEFAULT_EQ_SELECTIVITY
            sel = min(total, 1.0)
            return 1.0 - sel if negated else sel

        if all(static for static, _ in compiled):
            return True, in_sel([payload for _, payload in compiled])
        item_fns = [_const_fn(static, payload) for static, payload in compiled]
        return False, lambda ctx: in_sel([fn(ctx) for fn in item_fns])
    if isinstance(expr, ast.InSubquery):
        sel = IN_SUBQUERY_SELECTIVITY
        return True, 1.0 - sel if expr.negated else sel
    if isinstance(expr, ast.Exists):
        sel = EXISTS_SELECTIVITY
        return True, 1.0 - sel if expr.negated else sel
    if isinstance(expr, ast.Like):
        pattern_static, pattern = _compile_const(expr.pattern)
        negated = expr.negated

        def like_sel(pattern_const):
            if isinstance(pattern_const, str):
                sel = like_selectivity(pattern_const)
            else:
                sel = like_selectivity("%abc%")
            return 1.0 - sel if negated else sel

        if pattern_static:
            return True, like_sel(pattern)
        pattern_fn = _const_fn(pattern_static, pattern)
        return False, lambda ctx: like_sel(pattern_fn(ctx))
    if isinstance(expr, ast.Literal):
        if expr.value is True:
            return True, 1.0
        if expr.value in (False, None):
            return True, 0.0
        return True, BOOL_EXPR_SELECTIVITY
    return True, BOOL_EXPR_SELECTIVITY


class _Conjunct:
    """One WHERE/ON/HAVING conjunct, compiled for per-binding re-costing.

    Selectivity is a build-time float for placeholder-free conjuncts and a
    compiled closure over the binding context otherwise.  The operator count
    is a static base (placeholders count zero operators) plus one extra
    ``UnaryOp`` per placeholder whose literal renders negative.
    """

    __slots__ = ("expr", "names", "_sel", "_sel_fn", "_ops")

    def __init__(self, expr: ast.Expression, resolve):
        self.expr = expr
        self.names = _placeholder_names(expr)
        if self.names:
            static, payload = _compile_estimate(expr, resolve)
            self._sel = payload if static else None
            self._sel_fn = None if static else payload
        else:
            self._sel = _estimate(expr, resolve)
            self._sel_fn = None
        self._ops = _raw_op_count(expr)

    def estimate(self, ctx) -> float:
        if self._sel_fn is None:
            return self._sel
        return self._sel_fn(ctx)

    def ops(self, ctx) -> int:
        if not self.names:
            return self._ops
        return self._ops + sum(ctx[name][1] for name in self.names)


class _ScanSpec:
    """The static part of one base-table scan."""

    __slots__ = (
        "binding",
        "table_name",
        "row_count",
        "page_count",
        "pushed",
        "bound_filter",
        "index_candidates",
        "static_node",
    )


class _ConditionSpec:
    """One equi-join condition with its precomputed selectivity factor."""

    __slots__ = ("bindings", "left_binding", "left_expr", "right_expr", "factor")


class _ResidualSpec:
    """A non-equi conjunct applied once its bindings are all joined."""

    __slots__ = ("conjunct", "bindings")


class PlanReplayer:
    """Per-binding planner replay for one compiled, bound template."""

    def __init__(self, database, bound: BoundQuery, render_types):
        self._db = database
        self._render_types = dict(render_types)
        self._planner = database._planner
        statement = bound.statement
        self._statement = statement
        self._output_names = bound.output_names
        self._output_types = bound.output_types
        catalog = database.catalog

        # Flatten the FROM clause and partition conjuncts exactly as
        # Planner._plan_flattened_joins does.
        sources_ast: list[ast.TableExpression] = []
        on_conjuncts: list[ast.Expression] = []
        _flatten_inner_joins(statement.from_clause, sources_ast, on_conjuncts)
        bindings = [_binding_name(s) for s in sources_ast]
        all_conjuncts = on_conjuncts + split_conjuncts(statement.where)

        # Placeholder names in statement walk order (ON before WHERE before
        # HAVING), so a missing binding raises the same KeyError the
        # substitute-and-plan path would hit first.
        dynamic_names: list[str] = []
        seen_names: set[str] = set()
        dynamic_sources = list(all_conjuncts)
        if statement.having is not None:
            dynamic_sources.append(statement.having)
        for clause in dynamic_sources:
            for name in _placeholder_names(clause):
                if name not in seen_names:
                    seen_names.add(name)
                    dynamic_names.append(name)
        self._dynamic_names = dynamic_names

        binding_tables = {
            s.binding_name: s.name
            for s in sources_ast
            if isinstance(s, ast.TableRef)
        }

        def resolve(binding, column):
            if binding is None or binding not in binding_tables:
                return None
            meta = catalog.table(binding_tables[binding])
            if not meta.has_column(column):
                return None
            return meta.column(column).stats

        self._resolve = resolve

        pushed: dict[str, list[_Conjunct]] = {b: [] for b in bindings}
        self._conditions: list[_ConditionSpec] = []
        self._residuals: list[_ResidualSpec] = []
        for conjunct in all_conjuncts:
            refs = bindings_of(conjunct)
            if len(refs) <= 1 and (not refs or next(iter(refs)) in pushed):
                target = next(iter(refs)) if refs else bindings[0]
                pushed[target].append(_Conjunct(conjunct, resolve))
                continue
            condition = _as_equi_condition(conjunct)
            if condition is not None:
                spec = _ConditionSpec()
                spec.bindings = condition.bindings
                spec.left_binding = condition.left_binding
                spec.left_expr = condition.left_expr
                spec.right_expr = condition.right_expr
                spec.factor = join_selectivity(
                    resolve(condition.left_expr.table, condition.left_expr.column),
                    resolve(condition.right_expr.table, condition.right_expr.column),
                )
                self._conditions.append(spec)
            else:
                spec = _ResidualSpec()
                spec.conjunct = _Conjunct(conjunct, resolve)
                spec.bindings = bindings_of(conjunct)
                self._residuals.append(spec)

        self._scans: list[_ScanSpec] = []
        for source in sources_ast:
            assert isinstance(source, ast.TableRef)
            spec = _ScanSpec()
            spec.binding = source.binding_name
            spec.table_name = source.name
            meta = catalog.table(source.name)
            spec.row_count = meta.row_count
            spec.page_count = meta.page_count
            spec.pushed = pushed[spec.binding]
            spec.bound_filter = conjoin([c.expr for c in spec.pushed]) if spec.pushed else None
            # Per pushed conjunct: the index an equality/range/IN shape over
            # this binding could use.  The indexed column is a property of
            # the conjunct's shape, so it is static even for placeholder-
            # bearing conjuncts; whether the literal folds to a constant
            # (NULL does not) is re-checked per binding via a compiled fold.
            spec.index_candidates = []
            for conjunct in spec.pushed:
                column = _indexable_column(conjunct.expr, spec.binding)
                recheck_fn = None
                if column is None and conjunct.names:
                    column, recheck_fn = _probe_index_shape(
                        conjunct.expr, spec.binding
                    )
                if column is None:
                    spec.index_candidates.append(None)
                    continue
                index = catalog.index_on(source.name, column)
                if index is None:
                    spec.index_candidates.append(None)
                    continue
                # (index, column, per-binding constant-fold check or None)
                spec.index_candidates.append((index, column, recheck_fn))
            if not any(c.names for c in spec.pushed):
                spec.static_node = self._build_scan(spec, {})
            else:
                spec.static_node = None
            self._scans.append(spec)

        # Aggregate / finalization shape (all static).
        self._aggregated = self._planner._needs_aggregation(statement)
        if self._aggregated:
            self._aggregate_calls = _collect_aggregates(statement)
            ndv_product = 1.0
            for expression in statement.group_by:
                if isinstance(expression, ast.ColumnRef):
                    stats = resolve(expression.table, expression.column)
                    ndv = stats.distinct_count if stats else _UNKNOWN_GROUP_NDV
                else:
                    ndv = _UNKNOWN_GROUP_NDV
                ndv_product *= max(ndv, 1.0)
            self._group_ndv_product = ndv_product if statement.group_by else None
            self._having = (
                _Conjunct(statement.having, resolve)
                if statement.having is not None
                else None
            )
        self._order_items = (
            _resolve_order_aliases(statement) if statement.order_by else None
        )
        self._project_ops = sum(
            count_operators(i.expression) for i in statement.select_items
        )
        if statement.distinct:
            ndv_product = 1.0
            for item in statement.select_items:
                expression = item.expression
                if isinstance(expression, ast.ColumnRef):
                    stats = resolve(expression.table, expression.column)
                    ndv = stats.distinct_count if stats else _UNKNOWN_GROUP_NDV
                else:
                    ndv = _UNKNOWN_GROUP_NDV
                ndv_product *= max(ndv, 1.0)
            self._distinct_ndv_product = ndv_product
        else:
            self._distinct_ndv_product = None

    # -- eligibility ------------------------------------------------------------

    @staticmethod
    def build(database, bound: BoundQuery, render_types) -> "PlanReplayer | None":
        """A replayer for *bound*, or ``None`` when the statement's plan
        shape cannot be replayed (the caller stays on the full planner)."""
        statement = bound.statement
        if not isinstance(statement, ast.SelectStatement):
            return None
        if statement.from_clause is None:
            return None
        if _has_outer_join(statement.from_clause):
            return None
        for item in statement.from_clause.walk():
            if isinstance(item, ast.DerivedTable):
                return None
        # Subqueries anywhere make plan cost depend on nested planning.
        clauses: list[ast.Expression] = [
            i.expression for i in statement.select_items
        ]
        if statement.where is not None:
            clauses.append(statement.where)
        if statement.having is not None:
            clauses.append(statement.having)
        clauses.extend(statement.group_by)
        clauses.extend(o.expression for o in statement.order_by)
        clauses.extend(
            j.condition
            for j in statement.from_clause.walk()
            if isinstance(j, ast.Join) and j.condition is not None
        )
        for clause in clauses:
            for node in shallow_walk(clause):
                if isinstance(node, _SUBQUERY_NODES + (ast.SelectStatement,)):
                    return None
        # Placeholders may only drive WHERE/ON conjuncts and HAVING; in the
        # select list, GROUP BY, or ORDER BY they would change projection
        # costs and sort keys, which this replay treats as static.
        static_clauses = [i.expression for i in statement.select_items]
        static_clauses.extend(statement.group_by)
        static_clauses.extend(o.expression for o in statement.order_by)
        for clause in static_clauses:
            for node in clause.walk():
                if isinstance(node, ast.Placeholder):
                    return None
        try:
            return PlanReplayer(database, bound, render_types)
        except Exception:
            return None

    # -- per-binding replay -------------------------------------------------------

    def explain(
        self,
        values: Mapping[str, object],
        literals: Mapping[str, ast.Expression] | None = None,
    ) -> ExplainResult:
        return explain_plan(self.plan(values, literals))

    def plan(
        self,
        values: Mapping[str, object],
        literals: Mapping[str, ast.Expression] | None = None,
    ) -> Plan:
        # The binding context: each placeholder's literal folded once.  The
        # caller may pass pre-rendered literal ASTs (the type-guard in
        # CompiledTemplate._replan already built them); any name it missed
        # is rendered here, with substitute_placeholders' exact KeyError.
        ctx: dict[str, tuple[object, int]] = {}
        render_types = self._render_types
        for name in self._dynamic_names:
            literal = literals.get(name) if literals is not None else None
            if literal is None:
                if name not in values:
                    raise KeyError(f"no value for placeholder {{{name}}}")
                literal = literal_expression(values[name], render_types.get(name))
            ctx[name] = (
                constant_value(literal),
                1 if isinstance(literal, ast.UnaryOp) else 0,
            )
        root = self._replay_joins(ctx)
        if self._aggregated:
            root = self._replay_aggregate(root, ctx)
        root = self._replay_finalize(root)
        return Plan(
            root=root,
            subplans={},
            output_names=self._output_names,
            output_types=self._output_types,
            use_vectorized=self._planner.use_vectorized,
        )

    # -- scans -------------------------------------------------------------------

    def _build_scan(self, spec: _ScanSpec, ctx) -> PlanNode:
        # Selectivity of the conjoined pushed filter: _estimate recurses the
        # left-deep AND tree, so factors fold left-to-right.
        factors = [c.estimate(ctx) for c in spec.pushed]
        if factors:
            sel = factors[0]
            for factor in factors[1:]:
                sel = sel * factor
            selectivity = float(min(max(sel, 0.0), 1.0))
        else:
            selectivity = 1.0
        est_rows = max(spec.row_count * selectivity, 0.0)
        if spec.pushed:
            raw = sum(c.ops(ctx) for c in spec.pushed)
            qual_ops = max(raw + (len(spec.pushed) - 1), 1)
        else:
            qual_ops = 0
        seq_cost = costs.seq_scan_cost(spec.page_count, spec.row_count, qual_ops)
        best: PlanNode = SeqScanNode(
            est_rows=est_rows,
            cost=seq_cost,
            table_name=spec.table_name,
            binding=spec.binding,
            filter=spec.bound_filter,
        )
        best_index: IndexScanNode | None = None
        for conjunct, candidate in zip(spec.pushed, spec.index_candidates):
            if candidate is None:
                continue
            index, column, recheck_fn = candidate
            if recheck_fn is not None and recheck_fn(ctx) is None:
                continue
            index_sel = conjunct.estimate(ctx)
            index_sel = float(min(max(index_sel, 0.0), 1.0))
            cost = costs.index_scan_cost(
                spec.page_count, spec.row_count, index_sel, qual_ops
            )
            node = IndexScanNode(
                est_rows=est_rows,
                cost=cost,
                table_name=spec.table_name,
                binding=spec.binding,
                index_name=index.name,
                index_column=column,
                filter=spec.bound_filter,
            )
            if best_index is None or node.cost.total < best_index.cost.total:
                best_index = node
        if best_index is not None and best_index.cost.total < best.cost.total:
            best = best_index
        return best

    def _scan_node(self, spec: _ScanSpec, ctx) -> PlanNode:
        if spec.static_node is not None:
            return spec.static_node
        return self._build_scan(spec, ctx)

    # -- join ordering -------------------------------------------------------------

    def _replay_joins(self, ctx) -> PlanNode:
        scans = [
            (spec.binding, self._scan_node(spec, ctx)) for spec in self._scans
        ]
        pending_residuals = list(self._residuals)
        if len(scans) == 1:
            binding, node = scans[0]
            return self._apply_ready_residuals(
                node, {binding}, pending_residuals, ctx
            )
        best = None
        for binding, node in scans:
            if best is None or node.est_rows < best[1].est_rows:
                best = (binding, node)
        current = best[1]
        joined = {best[0]}
        remaining = [(b, n) for b, n in scans if b != best[0]]
        pending_conditions = list(self._conditions)
        current = self._apply_ready_residuals(
            current, joined, pending_residuals, ctx
        )
        while remaining:
            choice = self._pick_next_join(
                current, joined, remaining, pending_conditions
            )
            binding, node, applicable = choice
            current = self._build_join(current, node, applicable, joined)
            joined.add(binding)
            remaining = [(b, n) for b, n in remaining if b != binding]
            for condition in applicable:
                pending_conditions.remove(condition)
            current = self._apply_ready_residuals(
                current, joined, pending_residuals, ctx
            )
        return current

    def _pick_next_join(self, current, joined, remaining, conditions):
        best = None
        for binding, node in remaining:
            applicable = [
                c
                for c in conditions
                if c.bindings <= (joined | {binding}) and binding in c.bindings
            ]
            selectivity = 1.0
            for condition in applicable:
                selectivity *= condition.factor
            out_rows = max(current.est_rows * node.est_rows * selectivity, 0.0)
            connected = bool(applicable)
            rank = (0.0 if connected else 1e18) + out_rows
            if best is None or rank < best[0]:
                best = (rank, binding, node, applicable)
        assert best is not None
        return best[1], best[2], best[3]

    def _build_join(self, left, right, conditions, left_bindings) -> PlanNode:
        selectivity = 1.0
        for condition in conditions:
            selectivity *= condition.factor
        out_rows = max(left.est_rows * right.est_rows * selectivity, 0.0)
        if conditions:
            left_keys, right_keys = [], []
            for condition in conditions:
                if condition.left_binding in left_bindings:
                    left_keys.append(condition.left_expr)
                    right_keys.append(condition.right_expr)
                else:
                    left_keys.append(condition.right_expr)
                    right_keys.append(condition.left_expr)
            cost = costs.hash_join_cost(
                left.cost, right.cost, left.est_rows, right.est_rows, out_rows
            )
            return HashJoinNode(
                est_rows=out_rows,
                cost=cost,
                left=left,
                right=right,
                left_keys=left_keys,
                right_keys=right_keys,
                join_type="inner",
                residual=None,
            )
        out_rows = max(left.est_rows * right.est_rows, 0.0)
        cost = costs.nested_loop_cost(
            left.cost, right.cost, left.est_rows, right.est_rows, out_rows
        )
        return NestedLoopJoinNode(
            est_rows=out_rows,
            cost=cost,
            left=left,
            right=right,
            condition=None,
            join_type="inner",
        )

    def _apply_ready_residuals(self, node, joined, residuals, ctx) -> PlanNode:
        ready = [r for r in residuals if r.bindings <= joined]
        for residual in ready:
            residuals.remove(residual)
        if not ready:
            return node
        # Planner._add_filter on conjoin(ready): selectivity folds left-deep,
        # operator count is the conjoined tree's.
        factors = [r.conjunct.estimate(ctx) for r in ready]
        sel = factors[0]
        for factor in factors[1:]:
            sel = sel * factor
        selectivity = float(min(max(sel, 0.0), 1.0))
        est_rows = max(node.est_rows * selectivity, 0.0)
        raw = sum(r.conjunct.ops(ctx) for r in ready)
        ops = max(raw + (len(ready) - 1), 1)
        cost = costs.Cost(
            node.cost.startup,
            node.cost.total + node.est_rows * ops * costs.CPU_OPERATOR_COST,
        )
        condition = conjoin([r.conjunct.expr for r in ready])
        return FilterNode(
            est_rows=est_rows, cost=cost, child=node, condition=condition
        )

    # -- aggregation and finalization ------------------------------------------------

    def _replay_aggregate(self, child: PlanNode, ctx) -> PlanNode:
        statement = self._statement
        if self._group_ndv_product is None:
            groups = 1.0
        else:
            groups = float(
                min(self._group_ndv_product, max(child.est_rows, 1.0))
            )
        cost = costs.aggregate_cost(
            child.cost, child.est_rows, groups, len(self._aggregate_calls)
        )
        est_rows = groups
        if self._having is not None:
            having_sel = self._having.estimate(ctx)
            est_rows *= float(min(max(having_sel, 0.0), 1.0))
            cost = cost.plus(groups * costs.CPU_OPERATOR_COST)
        return AggregateNode(
            est_rows=max(est_rows, 0.0),
            cost=cost,
            child=child,
            group_exprs=statement.group_by,
            aggregate_calls=self._aggregate_calls,
            having=statement.having,
        )

    def _replay_finalize(self, node: PlanNode) -> PlanNode:
        statement = self._statement
        if self._order_items is not None:
            node = SortNode(
                est_rows=node.est_rows,
                cost=costs.sort_cost(node.cost, node.est_rows),
                child=node,
                order_items=self._order_items,
            )
        node = ProjectNode(
            est_rows=node.est_rows,
            cost=costs.project_cost(node.cost, node.est_rows, self._project_ops),
            child=node,
            items=statement.select_items,
            output_names=self._output_names,
            output_types=self._output_types,
        )
        if self._distinct_ndv_product is not None:
            distinct_rows = float(
                min(self._distinct_ndv_product, max(node.est_rows, 1.0))
            )
            node = DistinctNode(
                est_rows=distinct_rows,
                cost=costs.aggregate_cost(
                    node.cost, node.est_rows, distinct_rows, 0
                ),
                child=node,
            )
        if statement.limit is not None or statement.offset is not None:
            limit = statement.limit if statement.limit is not None else node.est_rows
            offset = statement.offset or 0
            fetched = min(float(limit) + offset, max(node.est_rows, 0.0))
            node = LimitNode(
                est_rows=max(min(float(limit), node.est_rows - offset), 0.0),
                cost=costs.limit_cost(node.cost, node.est_rows, fetched),
                child=node,
                limit=statement.limit,
                offset=statement.offset,
            )
        return node


def _probe_index_shape(conjunct: ast.Expression, binding: str):
    """The ``(column, per-binding constant-fold check)`` an index could
    serve once the conjunct's placeholders are bound.

    Mirrors the BinaryOp arm of ``planner._indexable_column``: the column
    side is static, so only whether the opposite side folds to a constant
    (NULL literals do not) changes per binding.  Between/InList need no
    probe — ``_indexable_column`` accepts them without folding constants,
    so the bound AST already resolves them statically.  Substitution never
    creates a ``ColumnRef``, so at most one arm can ever match.
    """
    if isinstance(conjunct, ast.BinaryOp) and conjunct.op in (
        "=", "<", "<=", ">", ">=",
    ):
        left, right = conjunct.left, conjunct.right
        if isinstance(left, ast.ColumnRef) and left.table == binding:
            static, payload = _compile_const(right)
            return left.column, _const_fn(static, payload)
        if isinstance(right, ast.ColumnRef) and right.table == binding:
            static, payload = _compile_const(left)
            return right.column, _const_fn(static, payload)
    return None, None
