"""EXPLAIN result cache: LRU, epoch-invalidated, single-flight.

SQLBarber's cost-targeted loops call ``EXPLAIN`` thousands of times, and the
BO search revisits the same instantiated SQL often (perturbation around
known-good configurations, warm starts, duplicate proposals).  Estimates are
a pure function of (SQL text, catalog statistics), so they cache perfectly:

* entries are keyed by :func:`normalize_sql` of the statement, so textual
  noise (whitespace, a trailing semicolon) cannot split the cache;
* the whole cache is keyed to the catalog's *statistics epoch* — any DDL,
  data load, or re-analyze bumps the epoch and the next lookup drops every
  entry, so stale costs are impossible by construction;
* lookups are single-flight: when N threads miss on the same key at once,
  one computes and the rest wait, which keeps hit/miss counters identical
  between serial and parallel runs (no duplicated cold plans);
* hit/miss/eviction/invalidation counters are exported both through the
  ambient :mod:`repro.obs` telemetry (``sqldb.explain.cache.*``) and through
  :meth:`ExplainCache.stats` for telemetry-free benchmarking.

The cache stores whatever value the compute callback returns (in practice a
frozen :class:`~repro.sqldb.explain.ExplainResult`) and never mutates it, so
shared entries are safe across threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.obs import current as current_telemetry

DEFAULT_CACHE_SIZE = 8192


def normalize_sql(sql: str) -> str:
    """Canonical cache key: collapse whitespace outside string literals.

    Keeps string literals byte-exact (they are case- and space-sensitive),
    collapses every run of whitespace elsewhere to a single space, and drops
    a trailing semicolon.  Cheap (one pass) and collision-safe: two queries
    with the same normalized form tokenize identically.
    """
    out: list[str] = []
    in_string = False
    pending_space = False
    for ch in sql:
        if in_string:
            out.append(ch)
            if ch == "'":
                in_string = False
            continue
        if ch.isspace():
            pending_space = True
            continue
        if pending_space:
            if out:
                out.append(" ")
            pending_space = False
        out.append(ch)
        if ch == "'":
            in_string = True
    text = "".join(out)
    while text.endswith(";"):
        text = text[:-1].rstrip()
    return text


class ExplainCache:
    """A bounded, thread-safe, epoch-invalidated cache of EXPLAIN results."""

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE):
        if maxsize <= 0:
            raise ValueError("ExplainCache maxsize must be positive")
        self.maxsize = maxsize
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self._inflight: dict[str, threading.Event] = {}
        self._lock = threading.Lock()
        self._epoch: int | None = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # -- pickling: locks and in-flight state are process-local ----------------

    def __getstate__(self) -> dict:
        return {"maxsize": self.maxsize}

    def __setstate__(self, state: dict) -> None:
        self.__init__(maxsize=state["maxsize"])

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def contains(self, key: str) -> bool:
        """Whether *key* is cached (no LRU touch, no counters)."""
        with self._lock:
            return key in self._entries

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_rate": self.hits / max(self.hits + self.misses, 1),
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # -- the one lookup path ---------------------------------------------------

    def get_or_compute(self, key: str, epoch: int, compute):
        """Return the cached value for *key*, computing it on a miss.

        *epoch* is the catalog's current statistics epoch; when it differs
        from the epoch the cache last saw, every entry is dropped first.
        Concurrent misses on the same key are single-flighted: exactly one
        caller runs *compute*, the others block and read the stored value.
        Exceptions from *compute* propagate to the computing caller and are
        never cached; the waiters then race to recompute (matching the
        uncached path, where every caller would see the error).
        """
        telemetry = current_telemetry()
        while True:
            with self._lock:
                if self._epoch != epoch:
                    if self._entries:
                        self.invalidations += 1
                        telemetry.count("sqldb.explain.cache.invalidations")
                        self._entries.clear()
                    self._epoch = epoch
                value = self._entries.get(key)
                if value is not None:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    telemetry.count("sqldb.explain.cache.hits")
                    return value
                waiter = self._inflight.get(key)
                if waiter is None:
                    event = threading.Event()
                    self._inflight[key] = event
                    break
            waiter.wait()
        try:
            value = compute()
        except BaseException:
            with self._lock:
                done = self._inflight.pop(key, None)
            if done is not None:
                done.set()
            raise
        with self._lock:
            # A DDL may have landed while we were planning; only store the
            # entry if the epoch we planned under is still current.
            if self._epoch == epoch:
                self._entries[key] = value
                self._entries.move_to_end(key)
                while len(self._entries) > self.maxsize:
                    self._entries.popitem(last=False)
                    self.evictions += 1
                    telemetry.count("sqldb.explain.cache.evictions")
            self.misses += 1
            done = self._inflight.pop(key, None)
        if done is not None:
            done.set()
        telemetry.count("sqldb.explain.cache.misses")
        return value
