"""Compile a SQL template once, re-cost predicate bindings cheaply.

The cost-targeted loops (template profiling, Algorithm 2 refinement, the BO
predicate search) evaluate the *same* template text under thousands of
different literal bindings.  The cold path pays lexer + parser + binder +
planner for every binding; only the literals change, so everything up to
planning is recomputable work.

:class:`CompiledTemplate` hoists the invariant part: it parses the template
text once and binds it once in the binder's *template mode* (placeholders
bind to the type their rendered literal will have).  Re-costing a binding
then only (1) renders the instantiated SQL for the cache key, and on a cache
miss (2) deep-copies the bound AST with literal nodes substituted for the
placeholders and (3) runs the planner — no lexing, parsing, or name
resolution on the hot path.

Correctness contract (enforced by ``tests/fastpath``): the substituted AST
is structurally identical to what ``parse_select(instantiated_sql)`` +
``Binder.bind`` would produce, so the resulting :class:`ExplainResult` is
byte-identical to the cold pipeline.  Two guards protect the contract:

* compilation failures (e.g. a template the binder's template mode cannot
  type) surface as exceptions the caller treats as "use the cold path";
* a per-call type check compares each substituted literal's bound type to
  the type the template was compiled under and silently re-plans cold when
  they diverge (e.g. an out-of-int32-range value binding as BIGINT).

Statistics-epoch changes (DDL, data loads, re-analyze) invalidate the
compiled bind the same way they invalidate the EXPLAIN cache: the next call
recompiles against the current catalog.
"""

from __future__ import annotations

import datetime
import math
import threading
from dataclasses import fields as dataclass_fields
from typing import Mapping

from repro.obs import current as current_telemetry
from repro.sqldb import ast_nodes as ast
from repro.sqldb.binder import Binder, BoundQuery, _literal_type
from repro.sqldb.errors import BindError
from repro.sqldb.explain import ExplainResult, explain_plan
from repro.sqldb.parser import parse_select
from repro.sqldb.types import SqlType, days_to_date


def literal_expression(value: object, sql_type: SqlType | None = None) -> ast.Expression:
    """The AST the parser would produce for ``render_literal(value, sql_type)``.

    Mirrors :func:`repro.workload.template.render_literal` rule for rule;
    notably the parser represents negative numbers as unary minus over the
    absolute value, never as a negative literal token.
    """
    if value is None:
        return ast.Literal(None)
    if isinstance(value, bool):
        return ast.Literal(value)
    if isinstance(value, datetime.date):
        return ast.Literal(value.isoformat())
    if isinstance(value, float):
        if sql_type in (SqlType.INTEGER, SqlType.BIGINT):
            return _numeric_literal(int(round(value)))
        return _numeric_literal(float(value))
    if isinstance(value, int):
        if sql_type is SqlType.DATE:
            return ast.Literal(days_to_date(value).isoformat())
        if sql_type is SqlType.DOUBLE:
            return _numeric_literal(float(value))
        return _numeric_literal(int(value))
    return ast.Literal(str(value))


def _numeric_literal(value: int | float) -> ast.Expression:
    if isinstance(value, float) and not math.isfinite(value):
        # repr(inf/nan) lexes as a bare identifier, which the cold path
        # rejects as an unknown column; fail the same way.
        name = repr(value).lstrip("-")
        raise BindError(f'column "{name}" does not exist')
    negative = value < 0 or (isinstance(value, float) and math.copysign(1.0, value) < 0)
    if negative:
        return ast.UnaryOp("-", ast.Literal(-value))
    return ast.Literal(value)


def bound_literal_type(expression: ast.Expression) -> SqlType:
    """The type the cold binder would assign to a substituted literal."""
    if isinstance(expression, ast.UnaryOp):
        return bound_literal_type(expression.operand)
    assert isinstance(expression, ast.Literal)
    return _literal_type(expression.value)


def substitute_placeholders(
    node: object,
    values: Mapping[str, object],
    render_types: Mapping[str, SqlType | None],
):
    """A deep copy of *node* with every Placeholder replaced by its literal.

    Non-placeholder leaves (strings, numbers, enums) are shared, not copied:
    binding never mutates them.  Each placeholder occurrence gets a fresh
    literal node, so repeated placeholders stay independent.
    """
    if isinstance(node, ast.Placeholder):
        if node.name not in values:
            raise KeyError(f"no value for placeholder {{{node.name}}}")
        return literal_expression(values[node.name], render_types.get(node.name))
    if isinstance(node, ast.Node):
        kwargs = {
            f.name: _substitute_value(getattr(node, f.name), values, render_types)
            for f in dataclass_fields(node)
        }
        return type(node)(**kwargs)
    return node


def _substitute_value(value, values, render_types):
    if isinstance(value, ast.Node):
        return substitute_placeholders(value, values, render_types)
    if isinstance(value, list):
        return [_substitute_value(item, values, render_types) for item in value]
    if isinstance(value, tuple):
        return tuple(_substitute_value(item, values, render_types) for item in value)
    return value


class CompiledTemplate:
    """A template parsed and bound once, re-plannable per literal binding."""

    def __init__(self, database, template, placeholder_types: dict[str, SqlType]):
        """*placeholder_types* maps each placeholder to the *bound* type of
        its rendered literal (what the binder's template mode needs), as
        opposed to the column types recorded on the template's
        :class:`~repro.workload.template.PlaceholderInfo` entries, which
        drive literal rendering.  Raises :class:`SqlError` when the template
        cannot be compiled; callers fall back to the cold path permanently.
        """
        self._db = database
        self._template = template
        self._placeholder_types = dict(placeholder_types)
        self._render_types = {
            info.name: info.sql_type for info in template.placeholders
        }
        # Per-placeholder (name, expected bound type, render type), hoisted
        # out of the per-binding type-guard loop in _replan.
        self._guard_specs = [
            (
                name,
                self._placeholder_types.get(name, SqlType.INTEGER),
                self._render_types.get(name),
            )
            for name in template.placeholder_names
        ]
        self._lock = threading.Lock()
        self._state: tuple[int, BoundQuery, object | None] | None = None
        self._bound()  # compile eagerly so failures surface at build time

    @property
    def template(self):
        return self._template

    def _bound(self) -> BoundQuery:
        return self._compiled_state()[1]

    def _replayer(self):
        """The pre-resolved planner replay for the current statistics epoch,
        or ``None`` when the statement's plan shape cannot be replayed."""
        return self._compiled_state()[2]

    def _compiled_state(self) -> tuple[int, BoundQuery, object | None]:
        epoch = self._db.catalog.statistics_epoch
        with self._lock:
            if self._state is None or self._state[0] != epoch:
                from .batch import PlanReplayer

                statement = parse_select(self._template.sql)
                binder = Binder(
                    self._db.catalog, placeholder_types=self._placeholder_types
                )
                bound = binder.bind(statement)
                replayer = PlanReplayer.build(self._db, bound, self._render_types)
                self._state = (epoch, bound, replayer)
            return self._state

    def explain(self, values: Mapping[str, object]) -> ExplainResult:
        """EXPLAIN the template instantiated with *values*.

        Byte-identical to ``database.explain(template.instantiate(values))``
        — same result, same errors, same cache interaction — minus the
        lex/parse/bind work on cache misses.
        """
        sql = self._template.instantiate(values)
        return self._db.explain_estimates(
            sql, compute=lambda: self._replan(sql, values)
        )

    def explain_many(self, bindings) -> list[ExplainResult]:
        """EXPLAIN the template under every binding in *bindings*.

        Equivalent to ``[self.explain(values) for values in bindings]`` —
        same results, same errors, same telemetry counters, same cache
        interaction — and counted as one batched re-costing pass.  The
        per-binding work is a :class:`~repro.fastpath.batch.PlanReplayer`
        replay when the plan shape supports it, so re-costing thousands of
        bindings costs one planner resolution plus a scalar cost replay per
        binding.  With the EXPLAIN cache disabled there is no cache state
        to maintain, so the batch also skips the per-call SQL rendering and
        cache dispatch; with it enabled every binding goes through the
        normal cache-aware path (hits and stored entries must match).
        """
        bindings = list(bindings)
        telemetry = current_telemetry()
        telemetry.count("fastpath.compiled.batches")
        telemetry.count("fastpath.compiled.batched_explains", len(bindings))
        db = self._db
        replayer = self._replayer()
        if replayer is None or db._explain_cache_enabled:
            return [self.explain(values) for values in bindings]
        results: list[ExplainResult] = []
        for values in bindings:
            literals: dict[str, object] = {}
            mismatch = False
            deferred_bind_error: BindError | None = None
            # Mirror the per-call error order: instantiate's per-name
            # errors (missing placeholder, integer overflow) fire in place;
            # BindError only ever comes from _replan's type guard, which
            # runs after the whole statement rendered — defer it.
            for name, expected, render_type in self._guard_specs:
                if name not in values:
                    raise KeyError(f"no value for placeholder {{{name}}}")
                try:
                    literal = literal_expression(values[name], render_type)
                except BindError as exc:
                    if deferred_bind_error is None:
                        deferred_bind_error = exc
                    continue
                literals[name] = literal
                if bound_literal_type(literal) is not expected:
                    mismatch = True
                    break
            if mismatch:
                # Rare re-plan-cold binding: take the full per-call path
                # (including instantiation, whose errors take precedence).
                results.append(self.explain(values))
                continue
            if deferred_bind_error is not None:
                raise deferred_bind_error
            results.append(
                db._record_explain(
                    lambda r=replayer, v=values, l=literals: r.explain(v, l)
                )
            )
            telemetry.count("fastpath.compiled.explains")
            telemetry.count("fastpath.compiled.replayed")
        return results

    def _replan(self, sql: str, values: Mapping[str, object]) -> ExplainResult:
        bound = self._bound()
        literals: dict[str, object] = {}
        for name, expected, render_type in self._guard_specs:
            literal = literal_expression(values[name], render_type)
            literals[name] = literal
            if bound_literal_type(literal) is not expected:
                # The value binds differently than the compiled assumption
                # (e.g. out-of-int32-range); re-plan cold for this call.
                return explain_plan(self._db.plan(sql))
        replayer = self._replayer()
        if replayer is not None:
            result = replayer.explain(values, literals)
            telemetry = current_telemetry()
            telemetry.count("fastpath.compiled.explains")
            telemetry.count("fastpath.compiled.replayed")
            return result
        statement = substitute_placeholders(
            bound.statement, values, self._render_types
        )
        current_telemetry().count("fastpath.compiled.explains")
        replanned = BoundQuery(
            statement=statement,
            scope=bound.scope,
            output_names=list(bound.output_names),
            output_types=list(bound.output_types),
        )
        return explain_plan(self._db._planner.plan(replanned))
