"""Fan template profiling across a worker pool, deterministically.

Templates are profiled independently (Latin-hypercube samples per template,
one EXPLAIN per sample), so the profile stage parallelizes embarrassingly.
Determinism is preserved by construction rather than by luck:

* sampling uses a *per-template* RNG seeded from ``(config.seed, crc32 of
  the template id))`` (see ``TemplateProfiler``), so the values a template
  is probed with never depend on scheduling order or worker count;
* results come back in input order (``Executor.map`` semantics), and
  templates are submitted in contiguous chunks (:data:`CHUNK_UNITS_PER_WORKER`)
  so one pool task amortizes its IPC across many templates;
* telemetry counters are merged commutatively — sums do not depend on
  interleaving — and the shared single-flight EXPLAIN cache keeps hit/miss
  counts identical to a serial run.

Two backends:

* ``"thread"`` (default): workers share the parent's database, EXPLAIN
  cache, and metrics.  The full :class:`~repro.obs.telemetry.Telemetry`
  cannot be handed to pool threads — its tracer keeps a span stack that is
  explicitly not thread-safe, and the ambient contextvar does not propagate
  into pool threads anyway — so each task installs a metrics-only wrapper
  that forwards counters/gauges/observations into the parent registry under
  a lock and turns spans into no-ops.  Under the GIL this backend overlaps
  nothing CPU-bound; it exists for correctness testing and for engines
  whose EXPLAIN releases the GIL.
* ``"process"``: each worker gets a forked/pickled copy of the profiler
  (database included) and a fresh private :class:`Telemetry`; the parent
  merges each child's :class:`~repro.obs.metrics.MetricsRegistry` back in
  input order.  This is the backend that buys wall-clock speedup.  Child
  spans are not transported back, and each child warms its own EXPLAIN
  cache, so cache hit/miss totals can differ from a serial run (more cold
  misses) even though the profiles themselves are identical.

An unpicklable profiler (e.g. a closure cost metric) silently downgrades
``"process"`` to ``"thread"`` so callers never crash on configuration.
"""

from __future__ import annotations

import pickle
import threading
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from contextlib import nullcontext

from repro.obs.telemetry import NULL, Telemetry, current, use_telemetry

BACKENDS = ("thread", "process")

#: In-flight tasks admitted per worker.  Submitting everything up front
#: would queue the whole template list inside the pool; a bounded window
#: keeps admission control meaningful (a stuck task stalls its window slot,
#: not the process' memory) while still keeping every worker busy.
ADMISSION_WINDOW_PER_WORKER = 2

#: Work units (chunks) per worker when splitting a template list into
#: tasks.  One-template tasks drown in per-task overhead — pickling the
#: task and its result plus a pool round-trip costs more than profiling a
#: small template — so templates are submitted in contiguous chunks of
#: ``ceil(n / (workers * CHUNK_UNITS_PER_WORKER))``.  Four chunks per
#: worker keeps the tail balanced (the slowest worker finishes at most
#: ~1/4 of its share after the others drain) while amortizing IPC across
#: chunk_size templates.  Chunking cannot affect results: per-template
#: RNGs are seeded from the template id, telemetry merges are commutative,
#: and chunks preserve input order.
CHUNK_UNITS_PER_WORKER = 4


class _MetricsOnlyTelemetry:
    """Thread-safe facade forwarding metrics to a parent registry.

    Spans are no-ops (the parent tracer is single-threaded); metric writes
    are serialized by one lock shared across all pool workers.
    """

    enabled = True

    def __init__(self, metrics, lock: threading.Lock, profiler=None):
        self._metrics = metrics
        self._lock = lock
        # The parent's ExecProfileCollector (or None): it carries its own
        # lock and its aggregation is commutative, so workers record into
        # it directly.
        self.profiler = profiler

    def span(self, name, **attributes):
        return NULL.span(name, **attributes)

    def count(self, name, value=1, **labels) -> None:
        with self._lock:
            self._metrics.count(name, value, **labels)

    def gauge(self, name, value, **labels) -> None:
        with self._lock:
            self._metrics.gauge(name, value, **labels)

    def observe(self, name, value, **labels) -> None:
        with self._lock:
            self._metrics.observe(name, value, **labels)

    def event(self, name, **payload) -> None:
        # Suppressed: the parent replays progress events in input order
        # after gathering, so the event stream never depends on scheduling.
        pass

    def emit(self, event) -> None:
        pass

    def finish(self) -> None:
        pass


# -- process-backend worker state (one profiler copy per worker process) ------

_WORKER_PROFILER = None


def _process_init(profiler) -> None:
    global _WORKER_PROFILER
    _WORKER_PROFILER = profiler


def _process_profile(task):
    templates, num_samples, profile_operators = task
    telemetry = Telemetry(profile=profile_operators)
    with use_telemetry(telemetry):
        profiles = [
            _WORKER_PROFILER.profile(template, num_samples)
            for template in templates
        ]
    return profiles, telemetry.metrics, telemetry.profiler


class ParallelProfiler:
    """Run ``profiler.profile`` over many templates with a worker pool."""

    def __init__(self, profiler, workers: int, backend: str = "thread"):
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown parallel backend {backend!r}; expected one of {BACKENDS}"
            )
        self.profiler = profiler
        self.workers = max(int(workers), 1)
        self.backend = backend

    def profile_many(self, templates, num_samples: int | None = None) -> list:
        """Profiles for *templates*, in input order, bit-identical to
        ``[profiler.profile(t, num_samples) for t in templates]``."""
        templates = list(templates)
        if self.workers <= 1 or len(templates) <= 1:
            return [self.profiler.profile(t, num_samples) for t in templates]
        backend = self.backend
        if backend == "process" and not _picklable(self.profiler):
            backend = "thread"
        if backend == "process":
            return self._profile_process(templates, num_samples)
        return self._profile_thread(templates, num_samples)

    def _watchdog(self):
        """A Watchdog over the profiler's governor board, or None.

        Thread backend only: workers share the parent's board, so a stuck
        query is visible and cancellable from here.  Process workers run
        their own interpreter — their board never leaves the child.
        """
        board = getattr(self.profiler, "board", None)
        timeout = getattr(
            self.profiler.config, "watchdog_timeout_seconds", None
        )
        if board is None or timeout is None:
            return None
        from repro.governor import Watchdog

        return Watchdog(board, timeout)

    def _profile_thread(self, templates, num_samples) -> list:
        parent = current()
        if parent.enabled:
            worker_telemetry = _MetricsOnlyTelemetry(
                parent.metrics, threading.Lock(),
                profiler=getattr(parent, "profiler", None),
            )
        else:
            worker_telemetry = NULL

        def run(chunk):
            with use_telemetry(worker_telemetry):
                return [
                    self.profiler.profile(template, num_samples)
                    for template in chunk
                ]

        watchdog = self._watchdog()
        with watchdog or nullcontext():
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                chunked = _bounded_map(
                    pool,
                    run,
                    _chunks(templates, self.workers),
                    self._admission_limit(),
                )
        results = [profile for chunk in chunked for profile in chunk]
        if watchdog is not None and watchdog.cancellations and parent.enabled:
            parent.metrics.count(
                "governor.watchdog_cancellations", watchdog.cancellations
            )
        self._replay_events(parent, results)
        return results

    def _profile_process(self, templates, num_samples) -> list:
        parent = current()
        parent_collector = getattr(parent, "profiler", None)
        chunks = _chunks(templates, self.workers)
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(chunks)),
            initializer=_process_init,
            initargs=(self.profiler,),
        ) as pool:
            outcomes = _bounded_map(
                pool,
                _process_profile,
                [
                    (chunk, num_samples, parent_collector is not None)
                    for chunk in chunks
                ],
                self._admission_limit(),
            )
        profiles = []
        for chunk_profiles, metrics, collector in outcomes:
            profiles.extend(chunk_profiles)
            if parent.enabled:
                parent.metrics.merge(metrics)
            if parent_collector is not None and collector is not None:
                parent_collector.merge(collector)
        self._replay_events(parent, profiles)
        return profiles

    @staticmethod
    def _replay_events(parent, profiles) -> None:
        """Re-publish per-template progress events in input order.

        Worker telemetry suppresses events (scheduling order must not leak
        into the stream); the payloads are pure functions of the returned
        profiles, so replaying here reproduces the serial stream exactly.
        """
        if not parent.enabled:
            return
        from repro.core.profiler import emit_profile_events

        for profile in profiles:
            emit_profile_events(parent, profile)

    def _admission_limit(self) -> int:
        return max(self.workers * ADMISSION_WINDOW_PER_WORKER, 2)


def _chunks(items: list, workers: int) -> list[list]:
    """Split *items* into contiguous work units of roughly equal size.

    Targets ``workers * CHUNK_UNITS_PER_WORKER`` chunks so per-task
    overhead (IPC, pickling, pool scheduling) is amortized over
    ``chunk_size`` items while the pool can still balance stragglers.
    Concatenating the chunks reproduces *items* exactly.
    """
    if not items:
        return []
    size = -(-len(items) // max(workers * CHUNK_UNITS_PER_WORKER, 1))
    return [items[i : i + size] for i in range(0, len(items), size)]


def _bounded_map(pool, fn, items, limit: int) -> list:
    """``pool.map`` semantics (input order) with bounded in-flight work.

    At most *limit* tasks are submitted at a time; a new task is admitted
    only when one completes.  Worker exceptions propagate exactly as with
    ``pool.map``.
    """
    items = list(items)
    results: list = [None] * len(items)
    pending: dict = {}
    next_index = 0
    while next_index < len(items) or pending:
        while next_index < len(items) and len(pending) < limit:
            future = pool.submit(fn, items[next_index])
            pending[future] = next_index
            next_index += 1
        done, _ = wait(pending, return_when=FIRST_COMPLETED)
        for future in done:
            results[pending.pop(future)] = future.result()
    return results


def _picklable(profiler) -> bool:
    try:
        pickle.dumps(profiler)
    except Exception:
        return False
    return True
