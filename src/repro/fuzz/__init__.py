"""Grammar-based differential fuzzing for the embedded SQL engine.

The subsystem has four parts, mirroring classic grammar fuzzers such as
pyrqg / SQLsmith adapted to a differential-testing setting:

* :mod:`repro.fuzz.grammar` — a seeded, schema-aware generator that grows
  SELECT statements directly as ASTs over the live :class:`Catalog` (so
  every statement is valid by construction) and renders them through
  :mod:`repro.sqldb.sql_render`;
* :mod:`repro.fuzz.oracles` — differential oracles asserting agreement
  between independent implementations of the same contract (cold pipeline
  vs compiled templates, cached vs uncached EXPLAIN, serial vs parallel
  profiling, render round-trips, executor-vs-estimator sanity);
* :mod:`repro.fuzz.shrink` — a delta-debugging shrinker that reduces a
  failing statement to a minimal reproducer;
* :mod:`repro.fuzz.corpus` — a JSON regression corpus replayed by pytest.

Entry point: ``python -m repro fuzz --seed S --budget N`` or
:class:`repro.fuzz.runner.FuzzRunner`.
"""

from .corpus import Corpus, CorpusEntry
from .grammar import (
    DML_SHAPES,
    GRAMMAR_VERSION,
    SELECT_SHAPES,
    FuzzGrammar,
    GeneratedStatement,
)
from .oracles import SKIPPED, Disagreement, Oracle, default_oracles
from .runner import FuzzReport, FuzzRunner, build_fuzz_database
from .shrink import clause_count, shrink_sql

__all__ = [
    "DML_SHAPES",
    "GRAMMAR_VERSION",
    "SELECT_SHAPES",
    "FuzzGrammar",
    "GeneratedStatement",
    "Oracle",
    "Disagreement",
    "SKIPPED",
    "default_oracles",
    "Corpus",
    "CorpusEntry",
    "FuzzReport",
    "FuzzRunner",
    "build_fuzz_database",
    "shrink_sql",
    "clause_count",
]
