"""Regression corpus: every shrunk fuzz failure becomes a pytest case.

Each entry is one JSON file under ``tests/fuzz/corpus/`` named
``<entry_id>.json``, where ``entry_id`` is a content hash of
``(oracle, sql)`` — appending the same failure twice is a no-op, and file
names stay stable across runs so the corpus diffs cleanly in review.
Entries carry the provenance needed to regenerate them: the seed, the
grammar version, and the statement index.

``tests/fuzz/test_corpus_replay.py`` replays every entry against the
standard fuzz database and fails if any past disagreement resurfaces.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from pathlib import Path

#: Default on-disk location, relative to the repository root.
DEFAULT_CORPUS_DIR = Path("tests/fuzz/corpus")


def entry_id_for(oracle: str, sql: str) -> str:
    return hashlib.sha256(f"{oracle}|{sql}".encode()).hexdigest()[:16]


@dataclass(frozen=True)
class CorpusEntry:
    """One regression case: a statement plus the oracle it once failed."""

    entry_id: str
    oracle: str
    sql: str
    detail: str = ""
    seed: int | None = None
    index: int | None = None
    grammar_version: str | None = None
    tightened_sql: str | None = None
    shrunk_from: str | None = None  # original statement before shrinking

    @classmethod
    def create(
        cls,
        oracle: str,
        sql: str,
        *,
        detail: str = "",
        seed: int | None = None,
        index: int | None = None,
        grammar_version: str | None = None,
        tightened_sql: str | None = None,
        shrunk_from: str | None = None,
    ) -> "CorpusEntry":
        return cls(
            entry_id=entry_id_for(oracle, sql),
            oracle=oracle,
            sql=sql,
            detail=detail,
            seed=seed,
            index=index,
            grammar_version=grammar_version,
            tightened_sql=tightened_sql,
            shrunk_from=shrunk_from,
        )

    def to_json(self) -> str:
        # sort_keys + no timestamps: the file content is a pure function of
        # the entry, so re-running the fuzzer never churns the corpus.
        return json.dumps(asdict(self), indent=2, sort_keys=True) + "\n"


class Corpus:
    """A directory of :class:`CorpusEntry` JSON files."""

    def __init__(self, path: str | Path = DEFAULT_CORPUS_DIR):
        self.path = Path(path)

    def entries(self) -> list[CorpusEntry]:
        out = []
        for file in sorted(self.path.glob("*.json")):
            out.append(self.load(file))
        return out

    @staticmethod
    def load(file: str | Path) -> CorpusEntry:
        data = json.loads(Path(file).read_text())
        known = {f.name for f in CorpusEntry.__dataclass_fields__.values()}
        return CorpusEntry(**{k: v for k, v in data.items() if k in known})

    def append(self, entry: CorpusEntry) -> Path | None:
        """Write *entry*; returns the new path, or None if already present."""
        self.path.mkdir(parents=True, exist_ok=True)
        target = self.path / f"{entry.entry_id}.json"
        if target.exists():
            return None
        target.write_text(entry.to_json())
        return target


__all__ = ["Corpus", "CorpusEntry", "DEFAULT_CORPUS_DIR", "entry_id_for"]
