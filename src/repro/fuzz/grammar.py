"""Seeded, schema-aware SQL grammar for the fuzzer.

The generator follows the pyrqg idiom — weighted productions drawn with a
seeded RNG — but grows the statement directly as a
:mod:`repro.sqldb.ast_nodes` tree over the live :class:`Catalog` instead of
splicing text.  That keeps every statement valid by construction: column
references come from the schema, join conditions follow declared foreign
keys (falling back to type-compatible column pairs), and literals are drawn
from the optimizer's own :class:`ColumnStats` (MCVs, histogram bounds,
min/max) so predicates land on realistic selectivities rather than always
matching zero rows.

Reproducibility contract: the statement at index *i* depends only on
``(seed, GRAMMAR_VERSION, schema)``.  Each statement gets its own
:class:`random.Random` seeded from that triple, so streams are prefix-stable
(``statements(200)`` is a prefix of ``statements(500)``) and independent of
how much randomness earlier statements consumed.  Bump
:data:`GRAMMAR_VERSION` whenever a production change would alter the stream;
corpus entries record the version they were generated under.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.fastpath.compiled import literal_expression
from repro.sqldb import ast_nodes as ast
from repro.sqldb.catalog import Catalog
from repro.sqldb.sql_render import render_statement
from repro.sqldb.stats import ColumnStats
from repro.sqldb.types import SqlType, days_to_date

GRAMMAR_VERSION = "2"  # v2: DML shapes (INSERT/UPDATE/DELETE)

# Statement-shape weights (pyrqg-style production table).
_SHAPES = [
    ("simple", 30),
    ("join", 20),
    ("aggregate", 14),
    ("union", 7),
    ("subquery", 11),
    ("derived", 7),
    ("insert", 6),
    ("update", 7),
    ("delete", 4),
]

#: The write-path shapes added in grammar v2.  Read-only harnesses (the
#: vec differential battery, tightening checks) filter these out; the DML
#: differential battery filters everything else out.
DML_SHAPES = frozenset({"insert", "update", "delete"})

#: The original read-only statement shapes.
SELECT_SHAPES = frozenset(name for name, _ in _SHAPES) - DML_SHAPES

_NUMERIC_OPS = ["=", "<>", "<", "<=", ">", ">="]
_TEXT_OPS = ["=", "<>", "<", ">"]


@dataclass(frozen=True)
class GeneratedStatement:
    """One fuzz case: the statement plus an optional tightened variant.

    ``tightened_sql`` is the same statement with one extra conjunct ANDed
    into the WHERE clause; by monotonicity it can never return *more* rows,
    which the execution oracle asserts.  None when the statement shape makes
    tightening non-monotonic (grouping, HAVING) or structurally awkward
    (set operations).
    """

    index: int
    sql: str
    shape: str
    tightened_sql: str | None = None


@dataclass(frozen=True)
class _Col:
    """A column visible in the current scope, under a specific binding."""

    binding: str
    table: str
    name: str
    sql_type: SqlType
    stats: ColumnStats | None

    def ref(self) -> ast.ColumnRef:
        return ast.ColumnRef(column=self.name, table=self.binding)


class FuzzGrammar:
    """Weighted-production statement generator over a live catalog."""

    def __init__(self, catalog: Catalog, seed: int = 0):
        if not catalog.table_names:
            raise ValueError("fuzz grammar needs at least one table")
        self.catalog = catalog
        self.seed = seed

    # -- public API ------------------------------------------------------------

    def statement(self, index: int) -> GeneratedStatement:
        """The statement at *index* — a pure function of (seed, version,
        schema, index)."""
        rng = self._rng(index)
        shape = _weighted(rng, _SHAPES)
        builder = getattr(self, f"_shape_{shape}")
        stmt, scope = builder(rng)
        tightened = self._tighten(stmt, scope, rng)
        return GeneratedStatement(
            index=index,
            sql=render_statement(stmt),
            shape=shape,
            tightened_sql=render_statement(tightened) if tightened else None,
        )

    def statements(
        self,
        count: int,
        start: int = 0,
        shapes: frozenset[str] | set[str] | None = None,
    ) -> list[GeneratedStatement]:
        """The first *count* statements from index *start* on.

        With *shapes*, the stream is filtered to those statement shapes:
        indexes keep advancing until *count* matching statements are
        collected, so the result is still a deterministic pure function of
        (seed, version, schema, shapes) — filtering never re-rolls any
        statement's RNG.  Every shape has positive weight, so the walk
        terminates.
        """
        if shapes is None:
            return [self.statement(start + i) for i in range(count)]
        out: list[GeneratedStatement] = []
        index = start
        while len(out) < count:
            gen = self.statement(index)
            if gen.shape in shapes:
                out.append(gen)
            index += 1
        return out

    def predicate(
        self,
        scope: list[_Col],
        rng: random.Random,
        depth: int = 0,
        allow_subqueries: bool = False,
    ) -> ast.Expression:
        """A boolean expression over *scope* — also the production driving
        the NULL three-valued-logic property tests."""
        roll = rng.random()
        if depth < 2 and roll < 0.30:
            left = self.predicate(scope, rng, depth + 1, allow_subqueries)
            right = self.predicate(scope, rng, depth + 1, allow_subqueries)
            return ast.BinaryOp(rng.choice(["and", "or"]), left, right)
        if depth < 2 and roll < 0.38:
            return ast.UnaryOp(
                "not", self.predicate(scope, rng, depth + 1, allow_subqueries)
            )
        if allow_subqueries and roll > 0.9:
            sub = self._subquery_predicate(scope, rng)
            if sub is not None:
                return sub
        return self._leaf_predicate(scope, rng)

    def columns_of(self, table: str, binding: str | None = None) -> list[_Col]:
        binding = binding or table
        meta = self.catalog.table(table)
        return [
            _Col(binding, table, c.name, c.sql_type, c.stats)
            for c in meta.columns
        ]

    def statement_rng(self, index: int) -> random.Random:
        """Public handle on the per-index RNG (used by the oracles to derive
        perturbations that stay reproducible)."""
        return self._rng(index)

    # -- internals -------------------------------------------------------------

    def _rng(self, index: int) -> random.Random:
        # str seeds hash via SHA-512: deterministic across runs and platforms.
        return random.Random(f"fuzz:{self.seed}:{GRAMMAR_VERSION}:{index}")

    def _pick_table(self, rng: random.Random) -> str:
        return rng.choice(sorted(self.catalog.table_names))

    # -- statement shapes ------------------------------------------------------

    def _shape_simple(self, rng) -> tuple[ast.SelectStatement, list[_Col]]:
        table = self._pick_table(rng)
        scope = self.columns_of(table, "t0")
        items = self._select_items(scope, rng)
        stmt = ast.SelectStatement(
            select_items=items,
            from_clause=ast.TableRef(table, alias="t0"),
            where=self._maybe_where(scope, rng, 0.8, allow_subqueries=False),
            distinct=rng.random() < 0.10 and self._plain_items(items),
        )
        self._order_limit(stmt, rng)
        return stmt, scope

    def _shape_join(self, rng) -> tuple[ast.SelectStatement, list[_Col]]:
        names = sorted(self.catalog.table_names)
        width = 2 if len(names) < 3 or rng.random() < 0.7 else 3
        tables = [rng.choice(names) for _ in range(width)]
        scopes = [
            self.columns_of(t, f"t{i}") for i, t in enumerate(tables)
        ]
        tree: ast.TableExpression = ast.TableRef(tables[0], alias="t0")
        visible = list(scopes[0])
        for i in range(1, width):
            join_type = _weighted(
                rng,
                [("inner", 50), ("left", 20), ("right", 10), ("full", 8), ("cross", 12)],
            )
            right = ast.TableRef(tables[i], alias=f"t{i}")
            condition = None
            if join_type != "cross":
                condition = self._join_condition(visible, scopes[i], rng)
                if condition is None:
                    join_type = "cross"
            tree = ast.Join(join_type, tree, right, condition)
            visible.extend(scopes[i])
        items = self._select_items(visible, rng)
        stmt = ast.SelectStatement(
            select_items=items,
            from_clause=tree,
            where=self._maybe_where(visible, rng, 0.7, allow_subqueries=False),
        )
        self._order_limit(stmt, rng)
        return stmt, visible

    def _shape_aggregate(self, rng) -> tuple[ast.SelectStatement, list[_Col]]:
        table = self._pick_table(rng)
        scope = self.columns_of(table, "t0")
        group_cols = rng.sample(scope, k=rng.choice([0, 1, 1, 2]))
        items = [ast.SelectItem(c.ref()) for c in group_cols]
        aggregates = self._aggregates(scope, rng, count=rng.choice([1, 1, 2]))
        for i, agg in enumerate(aggregates):
            items.append(ast.SelectItem(agg, alias=f"agg{i}"))
        stmt = ast.SelectStatement(
            select_items=items,
            from_clause=ast.TableRef(table, alias="t0"),
            where=self._maybe_where(scope, rng, 0.6, allow_subqueries=False),
            group_by=[c.ref() for c in group_cols],
        )
        if group_cols and rng.random() < 0.4:
            # HAVING reuses an aggregate that already appears in the select
            # list, the one combination every SQL engine accepts.
            agg = rng.choice(aggregates)
            stmt.having = ast.BinaryOp(
                rng.choice([">", ">=", "<"]),
                _copy_expression(agg),
                ast.Literal(rng.choice([0, 1, 2, 5])),
            )
        if rng.random() < 0.4:
            position = rng.randrange(len(items)) + 1
            stmt.order_by = [
                ast.OrderItem(ast.Literal(position), descending=rng.random() < 0.5)
            ]
        return stmt, scope

    def _shape_union(self, rng) -> tuple[ast.CompoundSelect, list[_Col]]:
        table = self._pick_table(rng)
        scope = self.columns_of(table, "t0")
        cols = rng.sample(scope, k=min(len(scope), rng.choice([1, 2, 2])))
        branches = []
        n_branches = rng.choice([2, 2, 3])
        for _ in range(n_branches):
            branches.append(
                ast.SelectStatement(
                    select_items=[ast.SelectItem(c.ref()) for c in cols],
                    from_clause=ast.TableRef(table, alias="t0"),
                    where=self._maybe_where(scope, rng, 0.9, allow_subqueries=False),
                )
            )
        ops = [
            rng.choice(["union", "union all"]) for _ in range(n_branches - 1)
        ]
        return ast.CompoundSelect(selects=branches, ops=ops), scope

    def _shape_subquery(self, rng) -> tuple[ast.SelectStatement, list[_Col]]:
        stmt, scope = self._shape_simple(rng)
        sub = self._subquery_predicate(scope, rng)
        if sub is not None:
            stmt.where = (
                sub if stmt.where is None else ast.BinaryOp("and", stmt.where, sub)
            )
        return stmt, scope

    def _shape_derived(self, rng) -> tuple[ast.SelectStatement, list[_Col]]:
        table = self._pick_table(rng)
        inner_scope = self.columns_of(table, "t0")
        cols = rng.sample(inner_scope, k=min(len(inner_scope), rng.choice([1, 2])))
        inner = ast.SelectStatement(
            select_items=[
                ast.SelectItem(c.ref(), alias=f"c{i}") for i, c in enumerate(cols)
            ],
            from_clause=ast.TableRef(table, alias="t0"),
            where=self._maybe_where(inner_scope, rng, 0.8, allow_subqueries=False),
        )
        # The derived table's columns keep their source statistics so outer
        # predicates still draw realistic literals.
        outer_scope = [
            _Col("d", table, f"c{i}", c.sql_type, c.stats)
            for i, c in enumerate(cols)
        ]
        if rng.random() < 0.5:
            items = [
                ast.SelectItem(
                    ast.FunctionCall("count", [ast.Star()]), alias="n"
                )
            ]
            outer_where = None
        else:
            items = [ast.SelectItem(c.ref()) for c in outer_scope]
            outer_where = self._maybe_where(
                outer_scope, rng, 0.5, allow_subqueries=False
            )
        stmt = ast.SelectStatement(
            select_items=items,
            from_clause=ast.DerivedTable(inner, alias="d"),
            where=outer_where,
        )
        return stmt, outer_scope

    # -- DML shapes ------------------------------------------------------------
    #
    # DML statements are valid by construction like the SELECT shapes: the
    # column list always covers every NOT NULL (and primary key) column, and
    # literals come from the target column's own statistics.  Tightening is
    # skipped (there is no monotone row-count relation to assert); instead
    # the DmlEpochOracle and the differential reference model check them.

    def _insert_columns(self, table: str, rng) -> list[_Col]:
        """Target columns: all NOT NULL / PK columns plus a random subset."""
        meta = self.catalog.table(table)
        scope = self.columns_of(table)
        required = {
            c.name
            for c in meta.columns
            if not c.column_type.nullable or c.name in meta.primary_key
        }
        chosen = [c for c in scope if c.name in required]
        optional = [c for c in scope if c.name not in required]
        for col in optional:
            if rng.random() < 0.7:
                chosen.append(col)
        if not chosen:
            chosen = [rng.choice(scope)]
        # Keep table column order so rendered SQL is stable.
        order = {c.name: i for i, c in enumerate(scope)}
        return sorted(chosen, key=lambda c: order[c.name])

    def _nullable(self, col: _Col) -> bool:
        meta = self.catalog.table(col.table)
        return (
            meta.column(col.name).column_type.nullable
            and col.name not in meta.primary_key
        )

    def _shape_insert(self, rng) -> tuple[ast.InsertStatement, list[_Col]]:
        table = self._pick_table(rng)
        targets = self._insert_columns(table, rng)
        names = [c.name for c in targets]
        if rng.random() < 0.2:
            # INSERT ... SELECT from the same table: types line up by
            # construction; LIMIT bounds the growth per statement.
            source = ast.SelectStatement(
                select_items=[
                    ast.SelectItem(ast.ColumnRef(column=c.name, table="s0"))
                    for c in targets
                ],
                from_clause=ast.TableRef(table, alias="s0"),
                where=self._maybe_where(
                    self.columns_of(table, "s0"), rng, 0.7,
                    allow_subqueries=False,
                ),
                limit=rng.choice([1, 2, 5]),
            )
            stmt = ast.InsertStatement(
                target=ast.TableRef(table), columns=names, source=source
            )
            return stmt, []
        rows = []
        for _ in range(rng.choice([1, 1, 2, 3])):
            row: list[ast.Expression] = []
            for col in targets:
                if self._nullable(col) and rng.random() < 0.1:
                    row.append(ast.Literal(None))
                else:
                    row.append(self._literal(col, rng))
            rows.append(row)
        stmt = ast.InsertStatement(
            target=ast.TableRef(table), columns=names, rows=rows
        )
        return stmt, []

    def _shape_update(self, rng) -> tuple[ast.UpdateStatement, list[_Col]]:
        table = self._pick_table(rng)
        # UPDATE targets bind under the bare table name (no alias).
        scope = self.columns_of(table)
        k = min(len(scope), rng.choice([1, 1, 2]))
        assignments = []
        for col in rng.sample(scope, k=k):
            roll = rng.random()
            if self._nullable(col) and roll < 0.08:
                value: ast.Expression = ast.Literal(None)
            elif col.sql_type.is_numeric and roll < 0.4:
                value = ast.BinaryOp(
                    rng.choice(["+", "-"]),
                    col.ref(),
                    ast.Literal(rng.choice([1, 2, 10])),
                )
            else:
                value = self._literal(col, rng)
            assignments.append(ast.Assignment(col.name, value))
        stmt = ast.UpdateStatement(
            target=ast.TableRef(table),
            assignments=assignments,
            where=self._maybe_where(scope, rng, 0.85, allow_subqueries=False),
        )
        return stmt, []

    def _shape_delete(self, rng) -> tuple[ast.DeleteStatement, list[_Col]]:
        table = self._pick_table(rng)
        scope = self.columns_of(table)
        stmt = ast.DeleteStatement(
            target=ast.TableRef(table),
            where=self._maybe_where(scope, rng, 0.9, allow_subqueries=False),
        )
        return stmt, []

    # -- clause helpers --------------------------------------------------------

    def _select_items(self, scope: list[_Col], rng) -> list[ast.SelectItem]:
        cols = rng.sample(scope, k=min(len(scope), rng.choice([1, 2, 2, 3])))
        items = []
        for i, col in enumerate(cols):
            expr: ast.Expression = col.ref()
            roll = rng.random()
            if roll < 0.08 and col.sql_type is SqlType.TEXT:
                expr = ast.FunctionCall(rng.choice(["length", "upper", "lower"]), [expr])
            elif roll < 0.14 and col.sql_type.is_numeric:
                expr = ast.FunctionCall("abs", [expr])
            elif roll < 0.20:
                expr = ast.FunctionCall(
                    "coalesce", [expr, self._literal(col, rng)]
                )
            elif roll < 0.26:
                expr = ast.CaseWhen(
                    whens=[(self._leaf_predicate(scope, rng), ast.Literal(1))],
                    default=ast.Literal(0),
                )
            alias = f"e{i}" if not isinstance(expr, ast.ColumnRef) else None
            items.append(ast.SelectItem(expr, alias=alias))
        return items

    @staticmethod
    def _plain_items(items: list[ast.SelectItem]) -> bool:
        return all(isinstance(i.expression, ast.ColumnRef) for i in items)

    def _maybe_where(
        self, scope, rng, probability: float, allow_subqueries: bool
    ) -> ast.Expression | None:
        if rng.random() >= probability:
            return None
        return self.predicate(scope, rng, allow_subqueries=allow_subqueries)

    def _order_limit(self, stmt: ast.SelectStatement, rng) -> None:
        if rng.random() < 0.4:
            positions = rng.sample(
                range(1, len(stmt.select_items) + 1),
                k=min(len(stmt.select_items), rng.choice([1, 1, 2])),
            )
            stmt.order_by = [
                ast.OrderItem(ast.Literal(p), descending=rng.random() < 0.4)
                for p in positions
            ]
        if rng.random() < 0.3:
            stmt.limit = rng.choice([1, 5, 10, 50])
            if rng.random() < 0.3:
                stmt.offset = rng.choice([1, 3, 10])

    def _aggregates(self, scope, rng, count: int) -> list[ast.Expression]:
        numeric = [c for c in scope if c.sql_type.is_numeric]
        out: list[ast.Expression] = []
        for _ in range(count):
            roll = rng.random()
            if roll < 0.3 or not numeric:
                out.append(ast.FunctionCall("count", [ast.Star()]))
            elif roll < 0.45:
                col = rng.choice(scope)
                out.append(
                    ast.FunctionCall(
                        "count", [col.ref()], distinct=rng.random() < 0.5
                    )
                )
            else:
                col = rng.choice(numeric)
                out.append(
                    ast.FunctionCall(
                        rng.choice(["sum", "avg", "min", "max"]), [col.ref()]
                    )
                )
        return out

    def _join_condition(
        self, left_scope: list[_Col], right_scope: list[_Col], rng
    ) -> ast.Expression | None:
        # Prefer declared foreign keys between any visible pair.
        candidates = []
        for fk in self.catalog.foreign_keys:
            for lc in left_scope:
                for rc in right_scope:
                    if (
                        fk.table == lc.table
                        and fk.column == lc.name
                        and fk.ref_table == rc.table
                        and fk.ref_column == rc.name
                    ) or (
                        fk.table == rc.table
                        and fk.column == rc.name
                        and fk.ref_table == lc.table
                        and fk.ref_column == lc.name
                    ):
                        candidates.append((lc, rc))
        if not candidates:
            candidates = [
                (lc, rc)
                for lc in left_scope
                for rc in right_scope
                if lc.sql_type.is_numeric and rc.sql_type.is_numeric
            ]
        if not candidates:
            return None
        lc, rc = rng.choice(candidates)
        return ast.BinaryOp("=", lc.ref(), rc.ref())

    def _subquery_predicate(self, scope, rng) -> ast.Expression | None:
        inner_table = self._pick_table(rng)
        inner_scope = self.columns_of(inner_table, "s0")
        kind = _weighted(rng, [("in", 45), ("exists", 30), ("scalar", 25)])
        inner_where = self._maybe_where(inner_scope, rng, 0.7, allow_subqueries=False)
        if kind == "exists":
            sub = ast.SelectStatement(
                select_items=[ast.SelectItem(ast.Literal(1))],
                from_clause=ast.TableRef(inner_table, alias="s0"),
                where=inner_where,
            )
            return ast.Exists(sub, negated=rng.random() < 0.3)
        numeric_outer = [c for c in scope if c.sql_type.is_numeric]
        numeric_inner = [c for c in inner_scope if c.sql_type.is_numeric]
        if kind == "scalar":
            if not numeric_outer or not numeric_inner:
                return None
            outer = rng.choice(numeric_outer)
            inner_col = rng.choice(numeric_inner)
            sub = ast.SelectStatement(
                select_items=[
                    ast.SelectItem(
                        ast.FunctionCall(
                            rng.choice(["min", "max", "avg"]), [inner_col.ref()]
                        )
                    )
                ],
                from_clause=ast.TableRef(inner_table, alias="s0"),
                where=inner_where,
            )
            return ast.BinaryOp(
                rng.choice(_NUMERIC_OPS), outer.ref(), ast.ScalarSubquery(sub)
            )
        # IN (subquery): operand and subquery column must be comparable.
        pairs = [
            (o, i)
            for o in scope
            for i in inner_scope
            if (o.sql_type.is_numeric and i.sql_type.is_numeric)
            or o.sql_type is i.sql_type
        ]
        if not pairs:
            return None
        outer, inner_col = rng.choice(pairs)
        sub = ast.SelectStatement(
            select_items=[ast.SelectItem(inner_col.ref())],
            from_clause=ast.TableRef(inner_table, alias="s0"),
            where=inner_where,
        )
        return ast.InSubquery(outer.ref(), sub, negated=rng.random() < 0.3)

    # -- leaf predicates and literals -----------------------------------------

    def _leaf_predicate(self, scope, rng) -> ast.Expression:
        col = rng.choice(scope)
        roll = rng.random()
        if roll < 0.12:
            return ast.IsNull(col.ref(), negated=rng.random() < 0.5)
        if col.sql_type is SqlType.TEXT:
            if roll < 0.35:
                return ast.Like(
                    col.ref(),
                    ast.Literal(self._like_pattern(col, rng)),
                    negated=rng.random() < 0.2,
                    case_insensitive=rng.random() < 0.2,
                )
            if roll < 0.55:
                return self._in_list(col, rng)
            if roll < 0.60:
                # NULL comparisons bind only against TEXT (literal NULL
                # types as TEXT); always-unknown predicates are a feature.
                return ast.BinaryOp("=", col.ref(), ast.Literal(None))
            return ast.BinaryOp(
                rng.choice(_TEXT_OPS), col.ref(), self._literal(col, rng)
            )
        if col.sql_type is SqlType.BOOLEAN:
            return ast.BinaryOp(
                "=", col.ref(), ast.Literal(rng.random() < 0.5)
            )
        # Numeric or date.
        if roll < 0.30:
            low, high = self._range_pair(col, rng)
            return ast.Between(
                col.ref(), low, high, negated=rng.random() < 0.2
            )
        if roll < 0.45:
            return self._in_list(col, rng)
        return ast.BinaryOp(
            rng.choice(_NUMERIC_OPS), col.ref(), self._literal(col, rng)
        )

    def _in_list(self, col: _Col, rng) -> ast.Expression:
        n = rng.choice([1, 2, 3, 4])
        items = [self._literal(col, rng) for _ in range(n)]
        if rng.random() < 0.15:
            items.append(ast.Literal(None))
        return ast.InList(col.ref(), items, negated=rng.random() < 0.25)

    def _like_pattern(self, col: _Col, rng) -> str:
        values = [v for v in (col.stats.mcv_values if col.stats else []) if v]
        if values and rng.random() < 0.8:
            value = str(rng.choice(values))
            if rng.random() < 0.5:
                return value[: max(1, len(value) // 2)] + "%"
            mid = value[len(value) // 3 : 2 * len(value) // 3] or value[:1]
            return f"%{mid}%"
        return rng.choice(["%a%", "z%", "%_x%", "%"])

    def _range_pair(self, col: _Col, rng) -> tuple[ast.Expression, ast.Expression]:
        a = self._draw_value(col, rng)
        b = self._draw_value(col, rng)
        if isinstance(a, (int, float)) and isinstance(b, (int, float)) and b < a:
            a, b = b, a
        return (
            literal_expression(a, col.sql_type),
            literal_expression(b, col.sql_type),
        )

    def _literal(self, col: _Col, rng) -> ast.Expression:
        return literal_expression(self._draw_value(col, rng), col.sql_type)

    def _draw_value(self, col: _Col, rng):
        """A literal value for *col*, drawn from its statistics.

        Mixes MCVs (hit the common values), histogram bounds (hit each
        selectivity decile), min/max edges, and occasional out-of-domain
        values (zero-row predicates)."""
        stats = col.stats
        if col.sql_type is SqlType.BOOLEAN:
            return rng.random() < 0.5
        if stats is None:
            return self._default_value(col, rng)
        roll = rng.random()
        if roll < 0.35 and stats.mcv_values:
            return _coerce(rng.choice(stats.mcv_values), col.sql_type)
        if (
            roll < 0.7
            and stats.histogram is not None
            and stats.histogram.num_buckets > 0
        ):
            bound = rng.choice(list(stats.histogram.bounds))
            return _coerce(float(bound), col.sql_type)
        if roll < 0.85 and stats.min_value is not None:
            edge = rng.choice([stats.min_value, stats.max_value])
            return _coerce(edge, col.sql_type)
        if roll < 0.95 and stats.max_value is not None and not isinstance(
            stats.max_value, str
        ):
            # Out of domain: just past the maximum.
            return _coerce(float(stats.max_value) + rng.choice([1, 17, 1000]), col.sql_type)
        return self._default_value(col, rng)

    @staticmethod
    def _default_value(col: _Col, rng):
        if col.sql_type in (SqlType.INTEGER, SqlType.BIGINT):
            return rng.randrange(0, 100)
        if col.sql_type is SqlType.DOUBLE:
            return rng.randrange(0, 10000) / 100.0
        if col.sql_type is SqlType.DATE:
            return rng.randrange(9500, 12000)  # days since epoch, ~1996-2002
        return rng.choice(["alpha", "omega", "zzz_fuzz"])

    # -- tightening ------------------------------------------------------------

    def _tighten(
        self, stmt, scope: list[_Col], rng
    ) -> ast.SelectStatement | None:
        """The statement with one extra AND-conjunct (row-count monotone).

        Grouped/HAVING statements are excluded: removing input rows can
        flip which groups pass a HAVING filter, so the row-count ordering
        no longer holds.
        """
        if not isinstance(stmt, ast.SelectStatement):
            return None
        if stmt.group_by or stmt.having or stmt.from_clause is None:
            return None
        if any(
            isinstance(i.expression, ast.FunctionCall)
            and i.expression.is_aggregate
            for i in stmt.select_items
        ):
            return None
        if not scope:
            return None
        extra = self._leaf_predicate(scope, rng)
        tightened = _copy_statement(stmt)
        tightened.where = (
            extra
            if tightened.where is None
            else ast.BinaryOp("and", tightened.where, extra)
        )
        return tightened


def _weighted(rng: random.Random, table: list[tuple[str, int]]) -> str:
    total = sum(w for _, w in table)
    roll = rng.random() * total
    for name, weight in table:
        roll -= weight
        if roll < 0:
            return name
    return table[-1][0]


def _coerce(value, sql_type: SqlType):
    """Convert a stats-layer value (numpy scalar, float days...) into the
    Python value :func:`literal_expression` renders canonically."""
    if sql_type in (SqlType.INTEGER, SqlType.BIGINT):
        return int(round(float(value)))
    if sql_type is SqlType.DOUBLE:
        return round(float(value), 4)
    if sql_type is SqlType.DATE:
        if isinstance(value, str):
            return value
        return int(round(float(value)))
    if isinstance(value, (int, float)):
        return str(value)
    return str(value)


def _copy_statement(stmt: ast.SelectStatement) -> ast.SelectStatement:
    import copy

    return copy.deepcopy(stmt)


def _copy_expression(expr: ast.Expression) -> ast.Expression:
    import copy

    return copy.deepcopy(expr)


__all__ = [
    "DML_SHAPES",
    "GRAMMAR_VERSION",
    "SELECT_SHAPES",
    "FuzzGrammar",
    "GeneratedStatement",
    "days_to_date",
]
