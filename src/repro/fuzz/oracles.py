"""Differential oracles for the fuzzer.

Each oracle asserts that two independent implementations of the same
contract agree on a generated statement:

* :class:`RoundTripOracle` — ``parse → render → parse`` is the identity on
  ASTs, and the rendered text plans to byte-identical estimates;
* :class:`ExplainCacheOracle` — cached, uncached, and post-epoch-bump
  EXPLAIN results are byte-identical;
* :class:`CompiledTemplateOracle` — templatizing the statement's WHERE
  literals and re-costing through :class:`CompiledTemplate` (the fastpath)
  matches the cold parse → bind → plan pipeline, on the original binding
  and on a perturbed one;
* :class:`ParallelProfilerOracle` — profiling templatized statements
  through :class:`ParallelProfiler` is bit-identical to the serial loop
  (batched: checked once over the accumulated templates at end of run);
* :class:`ExecutionOracle` — executor results are consistent with the
  estimator's invariants (finite non-negative costs, ``total >= startup``,
  LIMIT respected) and with predicate monotonicity (ANDing a conjunct
  never yields more rows);
* :class:`DmlEpochOracle` — committed DML bumps the statistics epoch, so
  a probe SELECT warmed into the EXPLAIN cache before the write re-costs
  after it and matches both the cold pipeline and the table's actual
  post-mutation row count;
* :class:`VecVsRowOracle` — the vectorized executor returns exactly the
  row executor's table (names, SQL types, dtypes, NULL masks, and rows in
  order, floats compared bit-level) on every vec-eligible plan.

``check`` returns None (pass), :data:`SKIPPED` (oracle not applicable to
this statement), or a string describing the disagreement.  An engine
exception escaping ``check`` is itself a finding — generated statements
are valid by construction — and is converted to a disagreement by the
runner.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BarberConfig
from repro.core.profiler import TemplateProfiler
from repro.fastpath.compiled import (
    CompiledTemplate,
    bound_literal_type,
    literal_expression,
)
from repro.fastpath.parallel import ParallelProfiler
from repro.sqldb import ast_nodes as ast
from repro.sqldb.database import Database
from repro.sqldb.errors import ConstraintError, SqlError
from repro.sqldb.explain import ExplainResult, explain_plan
from repro.sqldb.parser import parse_sql
from repro.sqldb.plan_nodes import PlanNode
from repro.sqldb.sql_render import render_statement
from repro.sqldb.vec import supports as vec_supports
from repro.workload.placeholders import infer_placeholder_bindings
from repro.workload.template import PlaceholderInfo, SqlTemplate

from .grammar import GeneratedStatement

#: Sentinel returned by ``check`` when the oracle does not apply.
SKIPPED = "__skipped__"


@dataclass
class Disagreement:
    """One oracle failure, optionally with a shrunk reproducer attached."""

    oracle: str
    sql: str
    detail: str
    index: int = -1
    shrunk_sql: str | None = None

    def to_dict(self) -> dict:
        return {
            "oracle": self.oracle,
            "sql": self.sql,
            "detail": self.detail,
            "index": self.index,
            "shrunk_sql": self.shrunk_sql,
        }


@dataclass
class OracleContext:
    db: Database
    seed: int = 0


class Oracle:
    """Base class; subclasses override :meth:`check` (and optionally
    :meth:`finish` for batched end-of-run checks)."""

    name = "oracle"
    #: Check every ``stride``-th statement (1 = every statement).
    stride = 1

    def check(self, ctx: OracleContext, gen: GeneratedStatement) -> str | None:
        raise NotImplementedError

    def finish(self, ctx: OracleContext) -> list[Disagreement]:
        return []


def _diff(label: str, a: ExplainResult, b: ExplainResult) -> str | None:
    if a == b:
        return None
    return (
        f"{label}: rows {a.estimated_rows} vs {b.estimated_rows}, "
        f"cost {a.startup_cost}/{a.total_cost} vs {b.startup_cost}/{b.total_cost}"
        + ("" if a.plan_text == b.plan_text else ", plan text differs")
    )


class RoundTripOracle(Oracle):
    """``render_statement`` is a faithful inverse of the parser."""

    name = "round_trip"

    def check(self, ctx, gen):
        original = parse_sql(gen.sql)
        rendered = render_statement(original)
        reparsed = parse_sql(rendered)
        if original != reparsed:
            return f"AST changed across render round-trip: {rendered!r}"
        cold_a = explain_plan(ctx.db.plan(gen.sql))
        cold_b = explain_plan(ctx.db.plan(rendered))
        return _diff("re-rendered text plans differently", cold_a, cold_b)


class ExplainCacheOracle(Oracle):
    """Cache hits, misses, and epoch-invalidated recomputes all agree."""

    name = "explain_cache"

    def check(self, ctx, gen):
        db = ctx.db
        cold = explain_plan(db.plan(gen.sql))
        first = db.explain_estimates(gen.sql)  # miss (or prior hit)
        second = db.explain_estimates(gen.sql)  # guaranteed hit
        detail = _diff("cold vs cached", cold, first) or _diff(
            "first vs second cached", first, second
        )
        if detail:
            return detail
        db.catalog.bump_statistics_epoch()
        recomputed = db.explain_estimates(gen.sql)  # new epoch: recompute
        return _diff("cached vs post-epoch-bump", cold, recomputed)


def templatize(sql: str, db: Database) -> tuple[SqlTemplate | None, dict]:
    """Replace outer-WHERE comparison literals with placeholders.

    Returns ``(template, values)`` with inferred placeholder bindings, or
    ``(None, {})`` when the statement has no templatizable literal (no
    WHERE, or only literal shapes the template machinery cannot re-render
    canonically).
    """
    statement = parse_sql(sql)
    if not isinstance(statement, ast.SelectStatement) or statement.where is None:
        return None, {}
    values: dict[str, object] = {}

    def lift(expr: ast.Expression) -> ast.Expression | None:
        """The placeholder for *expr* if it is a liftable literal."""
        value: object
        if isinstance(expr, ast.Literal):
            value = expr.value
        elif (
            isinstance(expr, ast.UnaryOp)
            and expr.op == "-"
            and isinstance(expr.operand, ast.Literal)
        ):
            value = -expr.operand.value  # type: ignore[operator]
        else:
            return None
        if value is None or isinstance(value, bool):
            return None
        name = f"p{len(values)}"
        values[name] = value
        return ast.Placeholder(name)

    def visit(expr: ast.Expression) -> None:
        if isinstance(expr, ast.BinaryOp):
            if expr.op in ("and", "or"):
                visit(expr.left)
                visit(expr.right)
                return
            lifted = lift(expr.right)
            if lifted is not None:
                expr.right = lifted
        elif isinstance(expr, ast.UnaryOp) and expr.op == "not":
            visit(expr.operand)
        elif isinstance(expr, ast.Between):
            low = lift(expr.low)
            if low is not None:
                expr.low = low
            high = lift(expr.high)
            if high is not None:
                expr.high = high
        elif isinstance(expr, ast.Like):
            pattern = lift(expr.pattern)
            if pattern is not None:
                expr.pattern = pattern

    visit(statement.where)
    if not values:
        return None, {}
    template_sql = render_statement(statement)
    template = SqlTemplate(template_id="fuzz", sql=template_sql)
    try:
        template.placeholders = infer_placeholder_bindings(
            template.parse(), db.catalog
        )
    except Exception:
        template.placeholders = [PlaceholderInfo(name) for name in values]
    have = {p.name for p in template.placeholders}
    template.placeholders = list(template.placeholders) + [
        PlaceholderInfo(name) for name in values if name not in have
    ]
    return template, values


class CompiledTemplateOracle(Oracle):
    """Compiled-template re-costing is byte-identical to the cold path."""

    name = "compiled_template"

    def check(self, ctx, gen):
        template, values = templatize(gen.sql, ctx.db)
        if template is None:
            return SKIPPED
        render_types = {p.name: p.sql_type for p in template.placeholders}
        types = {
            name: bound_literal_type(
                literal_expression(value, render_types.get(name))
            )
            for name, value in values.items()
        }
        compiled = CompiledTemplate(ctx.db, template, types)
        for binding in (values, _perturb(values)):
            instantiated = template.instantiate(binding)
            fast = compiled.explain(binding)
            cold = explain_plan(ctx.db.plan(instantiated))
            detail = _diff(f"compiled vs cold on {instantiated!r}", fast, cold)
            if detail:
                return detail
        return None


def _perturb(values: dict) -> dict:
    """A second, deterministic binding for the same template: numeric
    values shift, text/date values keep their original (still exercises
    the re-plan because the combined binding differs)."""
    out = {}
    for name, value in values.items():
        if isinstance(value, bool):
            out[name] = value
        elif isinstance(value, int):
            out[name] = value + 1
        elif isinstance(value, float):
            out[name] = value + 0.5
        else:
            out[name] = value
    return out


class ParallelProfilerOracle(Oracle):
    """Serial and parallel profiling produce bit-identical profiles.

    Template profiling is ~100x the cost of one EXPLAIN, so this oracle
    samples (``stride``) and defers the actual comparison to
    :meth:`finish`, where the accumulated templates are profiled as one
    batch — ``ParallelProfiler`` only fans out for 2+ templates.
    """

    name = "parallel_profiler"
    stride = 25
    max_templates = 8
    samples = 4

    def __init__(self):
        self._templates: list[SqlTemplate] = []

    def check(self, ctx, gen):
        if len(self._templates) >= self.max_templates:
            return SKIPPED
        template, values = templatize(gen.sql, ctx.db)
        if template is None:
            return SKIPPED
        template.template_id = f"fuzz_{gen.index}"
        self._templates.append(template)
        return None

    def finish(self, ctx):
        if len(self._templates) < 2:
            return []
        config = BarberConfig(seed=ctx.seed, workers=1)
        profiler = TemplateProfiler(ctx.db, config)
        serial = profiler.profile_many(self._templates, self.samples)
        parallel = ParallelProfiler(profiler, workers=2, backend="thread").profile_many(
            self._templates, self.samples
        )
        out = []
        for template, s, p in zip(self._templates, serial, parallel):
            if s.observations != p.observations or s.errors != p.errors:
                out.append(
                    Disagreement(
                        oracle=self.name,
                        sql=template.sql,
                        detail=(
                            f"serial vs parallel profile differs: "
                            f"{len(s.observations)} obs {s.costs[:4]} vs "
                            f"{len(p.observations)} obs {p.costs[:4]}"
                        ),
                    )
                )
        return out


class ExecutionOracle(Oracle):
    """Actual execution is consistent with the estimator's invariants."""

    name = "execution"

    def check(self, ctx, gen):
        db = ctx.db
        plan = db.plan(gen.sql)
        estimates = explain_plan(plan)
        detail = self._estimate_sanity(estimates, plan.root)
        if detail:
            return detail
        epoch_before = db.catalog.statistics_epoch
        try:
            result = db.execute(gen.sql)
        except ConstraintError:
            # A constraint rejection (duplicate key, NOT NULL) is a valid
            # execution outcome — but it must be a *complete* rollback:
            # nothing published, so the statistics epoch cannot have moved.
            if db.catalog.statistics_epoch != epoch_before:
                return (
                    "constraint violation advanced the statistics epoch "
                    f"({epoch_before} -> {db.catalog.statistics_epoch}): "
                    "partial effects were published"
                )
            return None
        rows = result.row_count
        statement = parse_sql(gen.sql)
        if (
            isinstance(statement, ast.SelectStatement)
            and statement.limit is not None
            and rows > statement.limit
        ):
            return f"LIMIT {statement.limit} but {rows} rows returned"
        if gen.tightened_sql is not None:
            tightened_rows = db.execute(gen.tightened_sql).row_count
            if tightened_rows > rows:
                return (
                    f"predicate tightening grew the result: {rows} rows -> "
                    f"{tightened_rows} rows for {gen.tightened_sql!r}"
                )
        return None

    def _estimate_sanity(self, estimates: ExplainResult, root: PlanNode) -> str | None:
        import math

        for value in (
            estimates.estimated_rows,
            estimates.startup_cost,
            estimates.total_cost,
        ):
            if not math.isfinite(value) or value < 0:
                return f"non-finite or negative estimate: {estimates}"
        if estimates.total_cost < estimates.startup_cost:
            return (
                f"total cost {estimates.total_cost} below startup "
                f"{estimates.startup_cost}"
            )
        return self._node_sanity(root)

    def _node_sanity(self, node: PlanNode) -> str | None:
        import math

        if not math.isfinite(node.est_rows) or node.est_rows < 0:
            return f"plan node {node.node_type} estimates {node.est_rows} rows"
        if node.cost.total < node.cost.startup:
            return (
                f"plan node {node.node_type} total cost {node.cost.total} "
                f"below startup {node.cost.startup}"
            )
        for child in node.children():
            detail = self._node_sanity(child)
            if detail:
                return detail
        return None


class DmlEpochOracle(Oracle):
    """Committed DML invalidates every cached costing of its target table.

    The stale-cache trap this hunts: a SELECT probe's EXPLAIN result is
    warmed into the cache, the statement mutates the table, and a later
    ``explain`` serves the pre-mutation estimate.  The engine's contract is
    that every committed DML bumps ``statistics_epoch`` (the cache key), so
    the post-DML probe must re-cost — and because ``note_mutation``
    refreshes the catalog row count, the fresh estimate of an unfiltered
    scan equals the table's actual row count exactly.
    """

    name = "dml_epoch"

    def check(self, ctx, gen):
        db = ctx.db
        statement = parse_sql(gen.sql)
        if not ast.is_dml(statement):
            return SKIPPED
        target = statement.target.name
        probe = f"SELECT * FROM {target}"
        db.explain_estimates(probe)  # warm the cache at the current epoch
        before = db.catalog.statistics_epoch
        rows_before = db.catalog.table(target).row_count
        try:
            db.execute(gen.sql)
        except ConstraintError:
            # Rejected statement: statement-level rollback means no commit,
            # no epoch bump, no row-count change — the warm cache entry is
            # still the correct one.
            if db.catalog.statistics_epoch != before:
                return (
                    "constraint violation bumped the statistics epoch "
                    f"({before} -> {db.catalog.statistics_epoch})"
                )
            if db.catalog.table(target).row_count != rows_before:
                return (
                    f"constraint violation changed {target} row count "
                    f"({rows_before} -> {db.catalog.table(target).row_count})"
                )
            return None
        after = db.catalog.statistics_epoch
        if after <= before:
            return (
                f"statistics_epoch did not advance across committed DML "
                f"({before} -> {after})"
            )
        cached = db.explain_estimates(probe)  # epoch moved: must re-cost
        cold = explain_plan(db.plan(probe))
        detail = _diff("post-DML cached vs cold probe", cached, cold)
        if detail:
            return detail
        actual = db.catalog.table(target).row_count
        if round(cached.estimated_rows) != actual:
            return (
                f"post-DML probe estimates {cached.estimated_rows} rows but "
                f"table {target} holds {actual} — stale costing served"
            )
        return None


class VecVsRowOracle(Oracle):
    """Row and vectorized execution of the same statement agree exactly.

    The strongest executor oracle: the two implementations share nothing
    below the plan tree, so any disagreement in rows, order, column
    metadata, or NULL masks is a real semantic bug in one of them.  Errors
    are compared by type only — a multi-batch vectorized run may surface a
    different batch's error first, so messages are not comparable in
    general (the differential battery pins messages in single-batch mode).
    """

    name = "vec_vs_row"

    def check(self, ctx, gen):
        db = ctx.db
        if not vec_supports(db.plan(gen.sql)):
            return SKIPPED
        row = self._outcome(db, gen.sql, vectorized=False)
        vec = self._outcome(db, gen.sql, vectorized=True)
        if row == vec:
            return None
        if row[0] != vec[0]:
            return f"row outcome {row[0]!r} vs vec outcome {vec[0]!r}"
        if row[0] == "error":
            return f"error type differs: row {row[1]} vs vec {vec[1]}"
        return self._table_diff(row[1], vec[1])

    @staticmethod
    def _outcome(db, sql: str, vectorized: bool):
        was_vectorized = db.use_vectorized
        batch_size = db.vec_batch_size
        db.set_vectorized(vectorized)
        try:
            table = db.execute(sql).table
        except SqlError as exc:
            return ("error", type(exc).__name__)
        finally:
            db.set_vectorized(was_vectorized, batch_size=batch_size)
        return (
            "ok",
            (
                tuple(table.column_names),
                tuple(c.sql_type for c in table.columns),
                tuple(str(c.data.dtype) for c in table.columns),
                tuple(
                    tuple(
                        repr(v) if isinstance(v, float) else v for v in row
                    )
                    for row in table.rows()
                ),
            ),
        )

    @staticmethod
    def _table_diff(a, b) -> str:
        if a[0] != b[0]:
            return f"column names differ: {a[0]} vs {b[0]}"
        if a[1] != b[1] or a[2] != b[2]:
            return f"column types differ: {a[1]}/{a[2]} vs {b[1]}/{b[2]}"
        if len(a[3]) != len(b[3]):
            return f"row count differs: row {len(a[3])} vs vec {len(b[3])}"
        for i, (row_r, vec_r) in enumerate(zip(a[3], b[3])):
            if row_r != vec_r:
                return f"row {i} differs: {row_r} vs {vec_r}"
        return "tables differ"


def default_oracles() -> list[Oracle]:
    """The standard oracle set, in execution order."""
    return [
        RoundTripOracle(),
        ExplainCacheOracle(),
        CompiledTemplateOracle(),
        ExecutionOracle(),
        DmlEpochOracle(),
        VecVsRowOracle(),
        ParallelProfilerOracle(),
    ]


__all__ = [
    "SKIPPED",
    "Oracle",
    "OracleContext",
    "Disagreement",
    "RoundTripOracle",
    "ExplainCacheOracle",
    "CompiledTemplateOracle",
    "DmlEpochOracle",
    "ParallelProfilerOracle",
    "ExecutionOracle",
    "VecVsRowOracle",
    "default_oracles",
    "templatize",
]
