"""The fuzz campaign driver.

:class:`FuzzRunner` wires the pieces together: generate ``budget``
statements from :class:`FuzzGrammar`, run every oracle over each one,
shrink failures with :func:`shrink_sql`, append shrunk reproducers to the
regression :class:`Corpus`, and emit a deterministic :class:`FuzzReport`.

Determinism contract (the acceptance bar): two runs with the same
``(seed, budget, schema, grammar version)`` produce byte-identical report
JSON.  The report therefore contains no timestamps or timings — wall-clock
numbers go to telemetry (``fuzz.*`` counters and histograms) instead.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

import numpy as np

from repro.obs import current as current_telemetry
from repro.sqldb import Database, SqlType, Table
from repro.sqldb.errors import SqlError

from .corpus import Corpus, CorpusEntry
from .grammar import GRAMMAR_VERSION, FuzzGrammar, GeneratedStatement
from .oracles import (
    SKIPPED,
    Disagreement,
    Oracle,
    OracleContext,
    default_oracles,
)
from .shrink import shrink_sql


def build_fuzz_database(seed: int = 0) -> Database:
    """The standard fuzz target: three tables with NULLs, foreign keys,
    dates, text, and skewed doubles — every type and stats shape the
    grammar knows how to exploit.  Deterministic in *seed*."""
    rng = np.random.default_rng(seed + 1729)
    db = Database("fuzzdb")
    n_users, n_orders, n_items = 120, 600, 90
    users = Table.from_dict(
        "users",
        {
            "user_id": list(range(n_users)),
            "name": [f"user_{i % 19}" for i in range(n_users)],
            "age": [
                None if i % 13 == 0 else int(a)
                for i, a in enumerate(rng.integers(18, 80, n_users))
            ],
            "city": [
                None if i % 11 == 0 else f"city_{i % 5}" for i in range(n_users)
            ],
        },
        {
            "user_id": SqlType.INTEGER,
            "name": SqlType.TEXT,
            "age": SqlType.INTEGER,
            "city": SqlType.TEXT,
        },
    )
    db.create_table(users, primary_key=["user_id"])
    orders = Table.from_dict(
        "orders",
        {
            "order_id": list(range(n_orders)),
            "user_id": rng.integers(0, n_users, n_orders).tolist(),
            "item_id": [
                None if i % 29 == 0 else int(v)
                for i, v in enumerate(rng.integers(0, n_items, n_orders))
            ],
            "amount": [
                None if i % 23 == 0 else float(v)
                for i, v in enumerate(rng.exponential(80.0, n_orders).round(2))
            ],
            "status": [
                ["new", "paid", "shipped", "done", "void"][i % 5]
                for i in range(n_orders)
            ],
            "order_date": [10800 + (i * 7) % 400 for i in range(n_orders)],
        },
        {
            "order_id": SqlType.INTEGER,
            "user_id": SqlType.INTEGER,
            "item_id": SqlType.INTEGER,
            "amount": SqlType.DOUBLE,
            "status": SqlType.TEXT,
            "order_date": SqlType.DATE,
        },
    )
    db.create_table(orders, primary_key=["order_id"])
    items = Table.from_dict(
        "items",
        {
            "item_id": list(range(n_items)),
            "label": [f"item_{i % 31}" for i in range(n_items)],
            "price": rng.uniform(1.0, 500.0, n_items).round(2).tolist(),
            "in_stock": [bool(i % 3) for i in range(n_items)],
        },
        {
            "item_id": SqlType.INTEGER,
            "label": SqlType.TEXT,
            "price": SqlType.DOUBLE,
            "in_stock": SqlType.BOOLEAN,
        },
    )
    db.create_table(items, primary_key=["item_id"])
    db.add_foreign_key("orders", "user_id", "users", "user_id")
    db.add_foreign_key("orders", "item_id", "items", "item_id")
    return db


@dataclass
class FuzzReport:
    """Deterministic summary of one fuzz campaign."""

    seed: int
    budget: int
    grammar_version: str
    database: str
    statements: int = 0
    invalid: int = 0
    shapes: dict = field(default_factory=dict)
    oracles: dict = field(default_factory=dict)  # name -> {checks, skips, fails}
    disagreements: list = field(default_factory=list)  # list[Disagreement]
    corpus_added: list = field(default_factory=list)  # list[str] entry ids

    @property
    def ok(self) -> bool:
        return not self.disagreements and self.invalid == 0

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "grammar_version": self.grammar_version,
            "database": self.database,
            "statements": self.statements,
            "invalid": self.invalid,
            "shapes": dict(sorted(self.shapes.items())),
            "oracles": {
                name: dict(sorted(stats.items()))
                for name, stats in sorted(self.oracles.items())
            },
            "disagreements": [d.to_dict() for d in self.disagreements],
            "corpus_added": sorted(self.corpus_added),
            "ok": self.ok,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


class FuzzRunner:
    """Run a fuzz campaign over one database."""

    def __init__(
        self,
        db: Database | None = None,
        seed: int = 0,
        oracles: list[Oracle] | None = None,
        corpus: Corpus | None = None,
        shrink: bool = True,
        grammar: FuzzGrammar | None = None,
    ):
        self.db = db if db is not None else build_fuzz_database(seed)
        self.seed = seed
        self.oracles = oracles if oracles is not None else default_oracles()
        self.corpus = corpus
        self.shrink = shrink
        self.grammar = grammar or FuzzGrammar(self.db.catalog, seed=seed)
        self.ctx = OracleContext(db=self.db, seed=seed)

    def run(self, budget: int) -> FuzzReport:
        telemetry = current_telemetry()
        report = FuzzReport(
            seed=self.seed,
            budget=budget,
            grammar_version=GRAMMAR_VERSION,
            database=self.db.name,
        )
        with telemetry.span("fuzz.run", seed=self.seed, budget=budget):
            for index in range(budget):
                gen = self.grammar.statement(index)
                report.statements += 1
                report.shapes[gen.shape] = report.shapes.get(gen.shape, 0) + 1
                telemetry.count("fuzz.statements", shape=gen.shape)
                started = time.perf_counter()
                self._check_statement(gen, report)
                telemetry.observe(
                    "fuzz.statement.seconds", time.perf_counter() - started
                )
            for oracle in self.oracles:
                for disagreement in oracle.finish(self.ctx):
                    telemetry.count("fuzz.disagreements", oracle=oracle.name)
                    self._record(disagreement, report)
        telemetry.count("fuzz.runs")
        return report

    # -- internals -------------------------------------------------------------

    def _check_statement(self, gen: GeneratedStatement, report: FuzzReport) -> None:
        telemetry = current_telemetry()
        ok, error = self.db.validate(gen.sql)
        if not ok:
            # Generated statements are valid by construction; a rejection is
            # a grammar/engine disagreement in its own right.
            report.invalid += 1
            telemetry.count("fuzz.invalid")
            self._record(
                Disagreement(
                    oracle="validity",
                    sql=gen.sql,
                    detail=f"generated statement rejected: {error}",
                    index=gen.index,
                ),
                report,
            )
            return
        for oracle in self.oracles:
            if gen.index % oracle.stride != 0:
                continue
            stats = report.oracles.setdefault(
                oracle.name, {"checks": 0, "skips": 0, "fails": 0}
            )
            try:
                outcome = oracle.check(self.ctx, gen)
            except SqlError as exc:
                outcome = f"engine error: {exc}"
            except (
                ArithmeticError,
                AttributeError,
                IndexError,
                KeyError,
                TypeError,
                ValueError,
            ) as exc:
                outcome = f"engine crash: {type(exc).__name__}: {exc}"
            if outcome == SKIPPED:
                stats["skips"] += 1
                telemetry.count("fuzz.skips", oracle=oracle.name)
                continue
            stats["checks"] += 1
            telemetry.count("fuzz.checks", oracle=oracle.name)
            if outcome is None:
                continue
            stats["fails"] += 1
            telemetry.count("fuzz.disagreements", oracle=oracle.name)
            disagreement = Disagreement(
                oracle=oracle.name,
                sql=gen.sql,
                detail=outcome,
                index=gen.index,
            )
            if self.shrink:
                disagreement.shrunk_sql = self._shrink(oracle, gen, disagreement)
            self._record(disagreement, report)

    def _shrink(
        self, oracle: Oracle, gen: GeneratedStatement, disagreement: Disagreement
    ) -> str | None:
        """Reduce ``gen.sql`` to a minimal statement still failing *oracle*.

        Tightening failures are not shrinkable (the failure is a property of
        the (statement, tightened statement) pair, not of one statement)."""
        if "tightening" in disagreement.detail:
            return None

        def still_fails(candidate_sql: str) -> bool:
            ok, _ = self.db.validate(candidate_sql)
            if not ok:
                return False
            candidate = GeneratedStatement(
                index=gen.index, sql=candidate_sql, shape=gen.shape
            )
            try:
                outcome = oracle.check(self.ctx, candidate)
            except SqlError:
                return True  # still blows up: still a reproducer
            except (ArithmeticError, AttributeError, IndexError, KeyError,
                    TypeError, ValueError):
                return True
            return outcome is not None and outcome != SKIPPED

        shrunk = shrink_sql(gen.sql, still_fails)
        current_telemetry().count("fuzz.shrinks")
        return shrunk

    def _record(self, disagreement: Disagreement, report: FuzzReport) -> None:
        report.disagreements.append(disagreement)
        if self.corpus is None:
            return
        entry = CorpusEntry.create(
            disagreement.oracle,
            disagreement.shrunk_sql or disagreement.sql,
            detail=disagreement.detail,
            seed=self.seed,
            index=disagreement.index,
            grammar_version=GRAMMAR_VERSION,
            shrunk_from=(
                disagreement.sql if disagreement.shrunk_sql else None
            ),
        )
        if self.corpus.append(entry) is not None:
            report.corpus_added.append(entry.entry_id)
            current_telemetry().count("fuzz.corpus.appended")


def replay_entry(db: Database, entry: CorpusEntry, seed: int = 0) -> str | None:
    """Re-check one corpus entry; None means the regression stayed fixed.

    Unknown oracle names fail loudly — a renamed oracle must migrate its
    corpus entries."""
    oracle_by_name = {o.name: o for o in default_oracles()}
    if entry.oracle == "validity":
        ok, error = db.validate(entry.sql)
        return None if ok else f"still rejected: {error}"
    oracle = oracle_by_name.get(entry.oracle)
    if oracle is None:
        return f"unknown oracle {entry.oracle!r}"
    gen = GeneratedStatement(
        index=entry.index if entry.index is not None else 0,
        sql=entry.sql,
        shape="corpus",
        tightened_sql=entry.tightened_sql,
    )
    ctx = OracleContext(db=db, seed=seed)
    try:
        outcome = oracle.check(ctx, gen)
    except SqlError as exc:
        return f"engine error: {exc}"
    if outcome is None or outcome == SKIPPED:
        return None
    return outcome


__all__ = [
    "FuzzRunner",
    "FuzzReport",
    "build_fuzz_database",
    "replay_entry",
]
