"""Delta-debugging shrinker: reduce a failing statement to a minimal one.

Classic greedy ddmin over the AST rather than the text: each round
enumerates structure-preserving simplifications (drop a UNION branch, drop
ORDER BY/LIMIT/DISTINCT, keep one select item, replace a join by one of its
sides, replace ``a AND b`` by ``a`` or ``b``, collapse BETWEEN/IN ...),
re-renders each candidate, and keeps the first one that still *fails* the
caller's predicate.  Rounds repeat until no candidate fails — a local
minimum, which for differential-oracle failures is virtually always the
global one because the oracles are monotone in statement structure.

The predicate receives SQL text and must return True only for candidates
that still reproduce the original failure (the runner's predicate also
requires the candidate to still be valid, so the shrinker cannot wander
into syntax errors).
"""

from __future__ import annotations

import copy
from typing import Callable

from repro.sqldb import ast_nodes as ast
from repro.sqldb.parser import parse_sql
from repro.sqldb.sql_render import render_statement

#: Upper bound on candidates tried per round, to keep shrinking O(seconds).
_MAX_CANDIDATES_PER_ROUND = 300


def shrink_sql(
    sql: str,
    still_fails: Callable[[str], bool],
    max_rounds: int = 50,
) -> str:
    """The smallest statement (by candidate order) still failing
    *still_fails*.  Returns *sql* unchanged when nothing smaller fails."""
    try:
        current = parse_sql(sql)
    except Exception:
        return sql
    current_sql = render_statement(current)
    for _ in range(max_rounds):
        improved = False
        for candidate in _candidates(current):
            candidate_sql = render_statement(candidate)
            if candidate_sql == current_sql:
                continue
            try:
                failed = still_fails(candidate_sql)
            except Exception:
                continue
            if failed:
                current, current_sql = candidate, candidate_sql
                improved = True
                break
        if not improved:
            return current_sql
    return current_sql


def clause_count(sql: str) -> int:
    """A size metric for reproducers: boolean leaves in WHERE/HAVING plus
    joins, grouping, ordering, set-operation branches, and extra select
    items.  A 'minimal' reproducer per the acceptance bar has <= 3."""
    statement = parse_sql(sql)
    if isinstance(statement, ast.CompoundSelect):
        return sum(clause_count(render_statement(s)) for s in statement.selects)
    if isinstance(statement, ast.InsertStatement):
        count = max(len(statement.rows) - 1, 0)
        if statement.source is not None:
            count += clause_count(render_statement(statement.source))
        return count
    if isinstance(statement, (ast.UpdateStatement, ast.DeleteStatement)):
        count = 0
        if isinstance(statement, ast.UpdateStatement):
            count += max(len(statement.assignments) - 1, 0)
        if statement.where is not None:
            count += _leaves(statement.where)
        return count
    count = 0
    count += max(len(statement.select_items) - 1, 0)
    if statement.where is not None:
        count += _leaves(statement.where)
    if statement.having is not None:
        count += _leaves(statement.having)
    count += len(statement.group_by)
    count += len(statement.order_by)
    if statement.limit is not None:
        count += 1
    if statement.from_clause is not None:
        count += _join_count(statement.from_clause)
    return count


def _leaves(expr: ast.Expression) -> int:
    if isinstance(expr, ast.BinaryOp) and expr.op in ("and", "or"):
        return _leaves(expr.left) + _leaves(expr.right)
    if isinstance(expr, ast.UnaryOp) and expr.op == "not":
        return _leaves(expr.operand)
    return 1


def _join_count(table: ast.TableExpression) -> int:
    if isinstance(table, ast.Join):
        return 1 + _join_count(table.left) + _join_count(table.right)
    if isinstance(table, ast.DerivedTable):
        return 1 + clause_count(render_statement(table.subquery))
    return 0


# -- candidate enumeration -----------------------------------------------------


def _candidates(statement):
    """Yield simplified copies of *statement*, most aggressive first."""
    emitted = 0
    for candidate in _statement_candidates(statement):
        yield candidate
        emitted += 1
        if emitted >= _MAX_CANDIDATES_PER_ROUND:
            return


def _statement_candidates(statement):
    if isinstance(statement, ast.InsertStatement):
        # Fewer VALUES rows, then a simplified source SELECT.  Candidates
        # that break the column/expression arity simply fail validation in
        # the caller's predicate and are discarded.
        if len(statement.rows) > 1:
            for i in range(len(statement.rows)):
                clone = copy.deepcopy(statement)
                clone.rows = [clone.rows[i]]
                yield clone
        if statement.source is not None:
            for sub in _statement_candidates(statement.source):
                clone = copy.deepcopy(statement)
                clone.source = sub
                yield clone
        return
    if isinstance(statement, (ast.UpdateStatement, ast.DeleteStatement)):
        if statement.where is not None:
            clone = copy.deepcopy(statement)
            clone.where = None
            yield clone
        if (
            isinstance(statement, ast.UpdateStatement)
            and len(statement.assignments) > 1
        ):
            for i in range(len(statement.assignments)):
                clone = copy.deepcopy(statement)
                clone.assignments = [clone.assignments[i]]
                yield clone
        if statement.where is not None:
            for expr in _expression_candidates(statement.where):
                clone = copy.deepcopy(statement)
                clone.where = expr
                yield clone
        return
    if isinstance(statement, ast.CompoundSelect):
        # Each branch alone, then the chain minus one branch.
        for branch in statement.selects:
            yield copy.deepcopy(branch)
        if len(statement.selects) > 2:
            for i in range(len(statement.selects)):
                clone = copy.deepcopy(statement)
                del clone.selects[i]
                del clone.ops[min(i, len(clone.ops) - 1)]
                yield clone
        for i, branch in enumerate(statement.selects):
            for simplified in _statement_candidates(branch):
                clone = copy.deepcopy(statement)
                clone.selects[i] = simplified
                yield clone
        return

    # Drop whole clauses, cheapest wins first.
    for attr, empty in (
        ("where", None),
        ("having", None),
        ("order_by", []),
        ("group_by", []),
        ("limit", None),
        ("offset", None),
    ):
        if getattr(statement, attr):
            clone = copy.deepcopy(statement)
            setattr(clone, attr, copy.copy(empty))
            if attr == "limit":
                clone.offset = None
            if attr == "group_by":
                # Grouping columns in the select list would no longer bind
                # as plain columns; keep only aggregate items if any.
                aggs = [
                    item
                    for item in clone.select_items
                    if _has_aggregate(item.expression)
                ]
                if aggs:
                    clone.select_items = aggs
                clone.having = None
                clone.order_by = []
            yield clone
    if statement.distinct:
        clone = copy.deepcopy(statement)
        clone.distinct = False
        yield clone

    # Fewer select items (keep order-by positions valid by dropping those).
    if len(statement.select_items) > 1:
        for i in range(len(statement.select_items)):
            clone = copy.deepcopy(statement)
            clone.select_items = [clone.select_items[i]]
            clone.order_by = []
            clone.group_by = []
            clone.having = None
            yield clone

    # Simplify the FROM clause: replace each join by one side — both as-is
    # (keeps the select list when it still binds) and as a compound
    # candidate with the select list collapsed to COUNT(*), which survives
    # dropping whichever table the remaining items referenced.
    if statement.from_clause is not None:
        for table in _table_candidates(statement.from_clause):
            clone = copy.deepcopy(statement)
            clone.from_clause = table
            yield clone
            reduced = copy.deepcopy(statement)
            reduced.from_clause = copy.deepcopy(table)
            reduced.select_items = [
                ast.SelectItem(ast.FunctionCall("count", [ast.Star()]))
            ]
            reduced.order_by = []
            reduced.group_by = []
            reduced.having = None
            reduced.distinct = False
            yield reduced

    # Simplify WHERE / HAVING expressions.
    if statement.where is not None:
        for expr in _expression_candidates(statement.where):
            clone = copy.deepcopy(statement)
            clone.where = expr
            yield clone
    if statement.having is not None:
        for expr in _expression_candidates(statement.having):
            clone = copy.deepcopy(statement)
            clone.having = expr
            yield clone


def _table_candidates(table: ast.TableExpression):
    if isinstance(table, ast.Join):
        yield copy.deepcopy(table.left)
        yield copy.deepcopy(table.right)
        for left in _table_candidates(table.left):
            yield ast.Join(
                table.join_type, left, copy.deepcopy(table.right), copy.deepcopy(table.condition)
            )
        for right in _table_candidates(table.right):
            yield ast.Join(
                table.join_type, copy.deepcopy(table.left), right, copy.deepcopy(table.condition)
            )
    elif isinstance(table, ast.DerivedTable):
        for sub in _statement_candidates(table.subquery):
            yield ast.DerivedTable(sub, table.alias)


def _expression_candidates(expr: ast.Expression):
    if isinstance(expr, ast.BinaryOp) and expr.op in ("and", "or"):
        yield copy.deepcopy(expr.left)
        yield copy.deepcopy(expr.right)
        for left in _expression_candidates(expr.left):
            yield ast.BinaryOp(expr.op, left, copy.deepcopy(expr.right))
        for right in _expression_candidates(expr.right):
            yield ast.BinaryOp(expr.op, copy.deepcopy(expr.left), right)
    elif isinstance(expr, ast.UnaryOp) and expr.op == "not":
        yield copy.deepcopy(expr.operand)
        for inner in _expression_candidates(expr.operand):
            yield ast.UnaryOp("not", inner)
    elif isinstance(expr, ast.Between):
        yield ast.BinaryOp(">=", copy.deepcopy(expr.operand), copy.deepcopy(expr.low))
        yield ast.BinaryOp("<=", copy.deepcopy(expr.operand), copy.deepcopy(expr.high))
    elif isinstance(expr, ast.InList) and len(expr.items) > 1:
        for item in expr.items:
            yield ast.InList(
                copy.deepcopy(expr.operand), [copy.deepcopy(item)], expr.negated
            )
    elif isinstance(expr, (ast.InSubquery, ast.Exists)):
        for sub in _statement_candidates(expr.subquery):
            clone = copy.deepcopy(expr)
            clone.subquery = sub
            yield clone


def _has_aggregate(expr: ast.Expression) -> bool:
    return any(
        isinstance(node, ast.FunctionCall) and node.is_aggregate
        for node in expr.walk()
    )


__all__ = ["shrink_sql", "clause_count"]
