"""repro.governor: engine-side resource governance.

PR 4 (``repro.resilience``) made the LLM transport survivable; this package
does the same for the embedded engine, which otherwise executes whatever an
LLM hallucinates — including unbounded cross products.  Four cooperating
pieces:

* :mod:`~repro.governor.context` — :class:`QueryGovernor`: per-query
  deadline, row budget, and memory budget, checked cooperatively at
  executor operator boundaries; ambient installation via
  :func:`use_governor` / :func:`current_governor`.
* :mod:`~repro.governor.quarantine` — :class:`TemplateGuard` /
  :class:`QuarantineRecord`: templates that strike out against the limits
  are benched for the rest of the run instead of crashing it.
* :mod:`~repro.governor.faults` — :class:`EngineFaultModel`: seeded slow
  operators, transient storage errors, and spurious cancellations, so the
  degradation paths are themselves testable.
* :mod:`~repro.governor.watchdog` — :class:`Watchdog`: an out-of-band
  wall-clock guard that converts a stuck profiling worker into a
  cooperative cancellation (and hence a quarantine strike).
"""

from .context import (
    GovernorBoard,
    GovernorLimits,
    QueryGovernor,
    clock_for,
    current_governor,
    use_governor,
)
from .faults import GOVERNOR_SEED_OFFSET, EngineFaultModel
from .quarantine import QuarantineRecord, TemplateGuard
from .watchdog import Watchdog

__all__ = [
    "EngineFaultModel",
    "GOVERNOR_SEED_OFFSET",
    "GovernorBoard",
    "GovernorLimits",
    "QuarantineRecord",
    "QueryGovernor",
    "TemplateGuard",
    "Watchdog",
    "clock_for",
    "current_governor",
    "use_governor",
]
