"""The query governor: deadlines, budgets, and cooperative cancellation.

A :class:`QueryGovernor` is the engine-side analogue of PostgreSQL's
``statement_timeout`` / ``work_mem`` pair: a per-query context carrying a
deadline, a row budget, and a memory budget.  The executor checks it at
every operator boundary (the materializing executor's equivalent of volcano
``next()`` calls) and inside the hash-join and nested-loop hot paths, so a
pathological query — an unbounded cross product, a hallucinated join — is
cancelled cooperatively instead of hanging the run.

Time comes from the :class:`~repro.resilience.clock.Clock` abstraction.  On
a :class:`~repro.resilience.clock.SimulatedClock` the timeline only moves
when charged, which makes every governor decision a pure function of the
query and its data: tests and chaos campaigns get bit-identical behaviour.
Production uses :class:`~repro.resilience.clock.SystemClock` and real
wall-clock deadlines.

Besides real elapsed time, the governor can charge *virtual* seconds per
processed row (``cost_per_row_seconds``).  This is what makes deadlines
deterministic under a simulated clock: a cross join that materializes a
million rows trips the same deadline at the same row, every run.

Installation is ambient (a :mod:`contextvars` variable), mirroring
:mod:`repro.obs`: the profiler installs a governor with
:func:`use_governor` around one query and the executor picks it up via
:func:`current_governor` without any signature plumbing.  Contexts are
per-thread, so the thread-backend parallel profiler gets one governor per
worker for free.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.sqldb.errors import (
    MemoryBudgetExceeded,
    QueryCancelled,
    QueryTimeout,
    RowBudgetExceeded,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.clock import Clock

#: Scan-shaped plan nodes: the only place storage faults can be injected.
SCAN_NODES = frozenset({"SeqScanNode", "IndexScanNode"})


@dataclass(frozen=True)
class GovernorLimits:
    """Per-query resource ceilings.  ``None`` disables the corresponding
    check; all-``None`` limits with no fault model make the governor a
    no-op (and callers should simply not install one)."""

    query_timeout_seconds: float | None = None
    memory_budget_bytes: int | None = None
    row_budget: int | None = None
    # Virtual seconds charged per processed row; > 0 makes deadlines
    # deterministic under SimulatedClock (see module docstring).
    cost_per_row_seconds: float = 0.0

    @property
    def enabled(self) -> bool:
        return (
            self.query_timeout_seconds is not None
            or self.memory_budget_bytes is not None
            or self.row_budget is not None
        )

    @staticmethod
    def from_config(config) -> "GovernorLimits":
        """Derive limits from a :class:`~repro.core.config.BarberConfig`."""
        memory = config.memory_budget_mb
        return GovernorLimits(
            query_timeout_seconds=config.query_timeout_seconds,
            memory_budget_bytes=(
                int(memory * 1024 * 1024) if memory is not None else None
            ),
            row_budget=config.row_budget,
            cost_per_row_seconds=config.governor_cost_per_row_seconds,
        )


def clock_for(name: str) -> "Clock":
    """Map a config clock name to a Clock instance.

    ``"simulated"`` returns a fresh zero-based :class:`SimulatedClock` —
    each query gets its own deterministic timeline.
    """
    # Imported lazily: the executor imports this module, and pulling in the
    # resilience package at import time would close a circular import with
    # repro.sqldb.
    from repro.resilience.clock import SimulatedClock, SystemClock

    if name == "simulated":
        return SimulatedClock()
    return SystemClock()


class QueryGovernor:
    """One query's resource-governance context.

    Not shared between concurrent queries; the only cross-thread access is
    :meth:`cancel` (a watchdog flipping the flag), which is guarded by the
    GIL-atomic write of a bool plus a string.
    """

    def __init__(
        self,
        limits: GovernorLimits,
        clock: "Clock | None" = None,
        faults=None,
        fault_rng=None,
    ):
        if clock is None:
            from repro.resilience.clock import SystemClock

            clock = SystemClock()
        self.limits = limits
        self.clock = clock
        self.faults = faults if (faults is not None and faults.active) else None
        self._fault_rng = fault_rng
        self._started = self.clock.now()
        self._charged_seconds = 0.0
        self.rows_processed = 0
        self.peak_bytes = 0
        self.faults_injected = 0
        self._cancelled = False
        self._cancel_reason: str | None = None

    # -- time --------------------------------------------------------------------

    def elapsed_seconds(self) -> float:
        """Real elapsed time plus virtual seconds charged for work done."""
        return (self.clock.now() - self._started) + self._charged_seconds

    # -- cooperative cancellation --------------------------------------------------

    def cancel(self, reason: str) -> None:
        """Request cancellation; the query raises at its next check.

        Safe to call from another thread (the watchdog's path).
        """
        self._cancel_reason = reason
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    # -- checks (the executor's entry points) ----------------------------------------

    def check(self) -> None:
        """Raise if cancelled or past the deadline.  Called at every
        operator boundary and periodically inside operator loops."""
        if self._cancelled:
            raise QueryCancelled(f"query cancelled: {self._cancel_reason}")
        timeout = self.limits.query_timeout_seconds
        if timeout is not None and self.elapsed_seconds() > timeout:
            raise QueryTimeout(
                f"query exceeded its {timeout:g}s deadline "
                f"(elapsed {self.elapsed_seconds():.3f}s)"
            )

    def begin_operator(self, node_name: str) -> None:
        """Pre-operator hook: fault injection, then the deadline check."""
        if self.faults is not None:
            self._inject_faults(node_name)
        self.check()

    def charge_rows(self, rows: int) -> None:
        """Account for *rows* processed rows; raise on a busted row budget."""
        self.rows_processed += rows
        if self.limits.cost_per_row_seconds:
            self._charged_seconds += rows * self.limits.cost_per_row_seconds
        budget = self.limits.row_budget
        if budget is not None and self.rows_processed > budget:
            raise RowBudgetExceeded(
                f"query processed {self.rows_processed} rows, over its "
                f"budget of {budget}"
            )

    def charge_frame(self, node_name: str, rows: int, est_bytes: int) -> None:
        """Post-operator hook: charge the materialized frame and re-check."""
        if est_bytes > self.peak_bytes:
            self.peak_bytes = est_bytes
        budget = self.limits.memory_budget_bytes
        if budget is not None and est_bytes > budget:
            raise MemoryBudgetExceeded(
                f"{node_name} materialized ~{est_bytes} bytes, over the "
                f"{budget}-byte memory budget"
            )
        self.charge_rows(rows)
        self.check()

    def admit(self, rows: int, est_bytes: int, node_name: str) -> None:
        """Pre-admission for operators that can predict their output size
        (the nested-loop cross product): refuse *before* materializing."""
        budget = self.limits.row_budget
        if budget is not None and self.rows_processed + rows > budget:
            raise RowBudgetExceeded(
                f"{node_name} would materialize {rows} rows, over the "
                f"row budget of {budget} "
                f"({self.rows_processed} already processed)"
            )
        mem = self.limits.memory_budget_bytes
        if mem is not None and est_bytes > mem:
            raise MemoryBudgetExceeded(
                f"{node_name} would materialize ~{est_bytes} bytes, over "
                f"the {mem}-byte memory budget"
            )
        if self.limits.cost_per_row_seconds:
            timeout = self.limits.query_timeout_seconds
            projected = (
                self.elapsed_seconds()
                + rows * self.limits.cost_per_row_seconds
            )
            if timeout is not None and projected > timeout:
                raise QueryTimeout(
                    f"{node_name} would run ~{projected:.3f}s of charged "
                    f"work, past the {timeout:g}s deadline"
                )
        self.check()

    # -- fault injection ----------------------------------------------------------------

    def _inject_faults(self, node_name: str) -> None:
        from repro.sqldb.errors import TransientStorageError

        model, rng = self.faults, self._fault_rng
        if rng is None:
            return
        if model.slow_operator_rate and rng.random() < model.slow_operator_rate:
            self.faults_injected += 1
            # Charged, not slept: real clocks must not pay injected latency
            # twice, and simulated clocks see it as deterministic elapsed time.
            self._charged_seconds += float(
                rng.uniform(0.0, model.slow_operator_seconds)
            )
        if (
            model.storage_error_rate
            and node_name in SCAN_NODES
            and rng.random() < model.storage_error_rate
        ):
            self.faults_injected += 1
            raise TransientStorageError(
                f"injected transient storage fault during {node_name}"
            )
        if model.cancel_rate and rng.random() < model.cancel_rate:
            self.faults_injected += 1
            self.cancel("injected spurious cancellation")

    def stats(self) -> dict:
        return {
            "rows_processed": self.rows_processed,
            "peak_bytes": self.peak_bytes,
            "elapsed_seconds": self.elapsed_seconds(),
            "faults_injected": self.faults_injected,
            "cancelled": self._cancelled,
        }


# -- ambient installation ------------------------------------------------------------

_ACTIVE: ContextVar = ContextVar("repro_governor", default=None)


def current_governor() -> QueryGovernor | None:
    """The governor of the calling context, or None (ungoverned)."""
    return _ACTIVE.get()


@contextmanager
def use_governor(governor: QueryGovernor | None):
    """Install *governor* as the ambient governor for the enclosed block."""
    token = _ACTIVE.set(governor)
    try:
        yield governor
    finally:
        _ACTIVE.reset(token)


class GovernorBoard:
    """Thread-safe registry of in-flight governors, for the watchdog.

    Registration is gated on :attr:`armed` so the fault-free fast path
    (no watchdog) pays nothing beyond one attribute read.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._active: dict[int, tuple[str, QueryGovernor, float]] = {}
        self._next = 0
        self.armed = False

    def register(self, key: str, governor: QueryGovernor, started: float) -> int:
        with self._lock:
            ticket = self._next
            self._next += 1
            self._active[ticket] = (key, governor, started)
        return ticket

    def unregister(self, ticket: int) -> None:
        with self._lock:
            self._active.pop(ticket, None)

    def snapshot(self) -> list[tuple[str, QueryGovernor, float]]:
        with self._lock:
            return list(self._active.values())
