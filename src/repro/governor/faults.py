"""Engine fault injection: the failure model of the embedded database.

Mirrors :class:`~repro.llm.faults.TransportFaultModel` one layer down: where
transport faults make LLM *calls* fail the way a remote API does, engine
faults make *query execution* misbehave the way a loaded database does —
operators run slow, storage reads hiccup transiently, and sessions get
cancelled out from under the client.  All rates default to zero, so an
ungoverned engine behaves exactly as before this model existed.

Draws come from a dedicated per-template RNG stream (seeded from
``(config.seed + GOVERNOR_SEED_OFFSET, crc32(template_id))`` by the
profiler), so injecting faults never perturbs the sampling streams and the
fault sequence for a template is identical whether it is profiled serially
or on a worker pool.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Seed-stream offset for the governor's fault RNG (cf. the transport
#: fault stream's ``seed + 7919``); keeps it disjoint from sampling RNGs.
GOVERNOR_SEED_OFFSET = 31


@dataclass(frozen=True)
class EngineFaultModel:
    """Per-operator fault probabilities for the embedded engine.

    ``slow_operator_rate`` charges a random latency (uniform in
    ``[0, slow_operator_seconds]``) to the governor's timeline — under a
    simulated clock this is how deadline storms are produced without real
    waiting.  ``storage_error_rate`` raises a retryable
    :class:`~repro.sqldb.errors.TransientStorageError` at scan nodes.
    ``cancel_rate`` flips the governor's cancel flag, simulating an
    administrator (or watchdog) killing the session.
    """

    slow_operator_rate: float = 0.0
    storage_error_rate: float = 0.0
    cancel_rate: float = 0.0
    # Upper bound on the injected per-operator latency (charged seconds).
    slow_operator_seconds: float = 0.05

    @property
    def active(self) -> bool:
        return (
            self.slow_operator_rate > 0
            or self.storage_error_rate > 0
            or self.cancel_rate > 0
        )

    @staticmethod
    def none() -> "EngineFaultModel":
        """A fault-free engine (the default)."""
        return EngineFaultModel()

    @staticmethod
    def storm(intensity: float = 0.3) -> "EngineFaultModel":
        """A mixed storm splitting *intensity* across the three classes.

        Cancellations are kept an order of magnitude rarer than the other
        two: a spurious cancel costs a whole query (and a strike), so equal
        shares would quarantine everything at moderate intensities.
        """
        share = intensity / 3.0
        return EngineFaultModel(
            slow_operator_rate=share,
            storage_error_rate=share,
            cancel_rate=share / 10.0,
        )
