"""Template quarantine: three strikes and the template sits out the run.

A template whose queries keep tripping governor limits is a *pathological
template* — the LLM hallucinated a cross product, or a refinement drifted
into an unbounded join.  Crashing the run on it throws away every healthy
template's work; silently retrying it burns the whole time budget.  The
middle path, which the paper gets for free from PostgreSQL's statement
timeouts, is quarantine: after ``quarantine_after`` resource strikes the
template is excluded from profiling, refinement, and search, and the run
carries a record of who was benched and why.

:class:`TemplateGuard` is the per-template bookkeeping: it mints one fresh
:class:`~repro.governor.context.QueryGovernor` per query (a new deadline
per statement, like ``statement_timeout``) and accumulates strikes.  Being
per-template makes the whole mechanism embarrassingly parallel — serial and
fanned-out profiling quarantine identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .context import GovernorLimits, QueryGovernor, clock_for


@dataclass
class QuarantineRecord:
    """Why one template was quarantined (rides on ``WorkloadResult``)."""

    template_id: str
    reason: str
    strikes: int
    # The placeholder bindings whose queries tripped a limit, in strike
    # order — the reproducer a human (or the LLM repair loop) needs.
    offending_bindings: list = field(default_factory=list)
    stage: str = "profile"

    def to_dict(self) -> dict:
        return {
            "template_id": self.template_id,
            "reason": self.reason,
            "strikes": self.strikes,
            "offending_bindings": [dict(b) for b in self.offending_bindings],
            "stage": self.stage,
        }

    @staticmethod
    def from_profile(profile, stage: str = "profile") -> "QuarantineRecord":
        """Lift the quarantine fields off a quarantined TemplateProfile."""
        return QuarantineRecord(
            template_id=profile.template.template_id,
            reason=profile.quarantine_reason or "resource limits exceeded",
            strikes=int(profile.resource_strikes),
            offending_bindings=list(profile.offending_bindings),
            stage=stage,
        )

    @staticmethod
    def from_dict(state: dict) -> "QuarantineRecord":
        return QuarantineRecord(
            template_id=state["template_id"],
            reason=state["reason"],
            strikes=int(state["strikes"]),
            offending_bindings=[dict(b) for b in state.get("offending_bindings", [])],
            stage=state.get("stage", "profile"),
        )


class TemplateGuard:
    """Per-template governor factory plus strike/quarantine bookkeeping."""

    def __init__(
        self,
        template_id: str,
        limits: GovernorLimits,
        clock_name: str = "system",
        quarantine_after: int = 3,
        faults=None,
        fault_rng=None,
    ):
        self.template_id = template_id
        self.limits = limits
        self.clock_name = clock_name
        self.quarantine_after = max(int(quarantine_after), 1)
        self.faults = faults
        self.fault_rng = fault_rng
        self.strikes = 0
        self.offending_bindings: list[dict] = []
        self.quarantined = False
        self.last_reason: str | None = None
        self.peak_bytes = 0

    def governor(self) -> QueryGovernor:
        """A fresh governor (fresh deadline) for one query of this template."""
        return QueryGovernor(
            self.limits,
            clock=clock_for(self.clock_name),
            faults=self.faults,
            fault_rng=self.fault_rng,
        )

    def observe(self, governor: QueryGovernor) -> None:
        """Fold one finished query's accounting into the template's."""
        if governor.peak_bytes > self.peak_bytes:
            self.peak_bytes = governor.peak_bytes

    def strike(self, error: Exception, bindings: dict) -> bool:
        """Record one resource strike; returns True once quarantined."""
        self.strikes += 1
        self.last_reason = f"{type(error).__name__}: {error}"
        self.offending_bindings.append(dict(bindings))
        if self.strikes >= self.quarantine_after:
            self.quarantined = True
        return self.quarantined

    def record(self, stage: str = "profile") -> QuarantineRecord:
        return QuarantineRecord(
            template_id=self.template_id,
            reason=self.last_reason or "resource limits exceeded",
            strikes=self.strikes,
            offending_bindings=list(self.offending_bindings),
            stage=stage,
        )
