"""The profiling watchdog: a stuck worker becomes a strike, not a hang.

Cooperative cancellation only works if somebody asks for it.  Inside one
process the executor's own deadline checks normally do, but two gaps
remain: a query stuck inside a single long numpy call between check
points, and a custom cost metric that never ticks the governor at all.
The watchdog closes both from the outside — a daemon thread that scans the
:class:`~repro.governor.context.GovernorBoard` of in-flight queries and
flips the cancel flag on any that has overrun its wall-clock allowance.
The worker then raises :class:`~repro.sqldb.errors.QueryCancelled` at its
next boundary, which the profiler converts into a quarantine strike — the
run completes, minus one template, instead of hanging.

The watchdog measures *real* time (``time.monotonic``), independent of the
governor's possibly-simulated clock, and is therefore nondeterministic by
nature.  It is off by default and never enabled in reproducibility tests;
deterministic deadline behaviour comes from the governor itself.
"""

from __future__ import annotations

import threading
import time

from .context import GovernorBoard


class Watchdog:
    """Cancel in-flight governors that outlive their wall-clock allowance."""

    def __init__(
        self,
        board: GovernorBoard,
        timeout_seconds: float,
        poll_seconds: float = 0.02,
    ):
        if timeout_seconds <= 0:
            raise ValueError(
                f"watchdog timeout must be positive (got {timeout_seconds})"
            )
        self.board = board
        self.timeout_seconds = float(timeout_seconds)
        self.poll_seconds = float(poll_seconds)
        self.cancellations = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def __enter__(self) -> "Watchdog":
        self.start()
        return self

    def __exit__(self, _exc_type, _exc, _tb) -> None:
        self.stop()

    def start(self) -> None:
        self.board.armed = True
        self._thread = threading.Thread(
            target=self._run, name="repro-governor-watchdog", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.board.armed = False

    def _run(self) -> None:
        while not self._stop.wait(self.poll_seconds):
            now = time.monotonic()
            for key, governor, started in self.board.snapshot():
                if governor.cancelled:
                    continue
                overrun = now - started
                if overrun > self.timeout_seconds:
                    governor.cancel(
                        f"watchdog: {key} stuck for {overrun:.2f}s "
                        f"(allowance {self.timeout_seconds:g}s)"
                    )
                    self.cancellations += 1
