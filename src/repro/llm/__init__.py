"""Simulated LLM service: completion client, prompts, faults, accounting."""

from .accounting import O3_MINI_PRICING, PricingModel, UsageMeter, count_tokens
from .client import LLMClient, LLMResponse, ScriptedLLM
from .errors import (
    PIPELINE_ABORT_ERRORS,
    BudgetExhausted,
    CircuitOpenError,
    LLMError,
    LLMExhaustedError,
    LLMMalformedResponseError,
    LLMRateLimitError,
    LLMRetryExhausted,
    LLMServerError,
    LLMTimeoutError,
    LLMTransportError,
)
from .faults import MALFORMED_RESPONSE, FaultModel, TransportFaultModel
from .prompts import (
    decode_payload,
    encode_payload,
    fix_execution_prompt,
    fix_semantics_prompt,
    refine_template_prompt,
    template_generation_prompt,
    validate_semantics_prompt,
)
from .simulated import SimulatedLLM, extract_json, extract_sql, spec_from_payload
from .synthesizer import SchemaModel, TemplateSynthesizer

__all__ = [
    "BudgetExhausted",
    "CircuitOpenError",
    "FaultModel",
    "LLMClient",
    "LLMError",
    "LLMExhaustedError",
    "LLMMalformedResponseError",
    "LLMRateLimitError",
    "LLMResponse",
    "LLMRetryExhausted",
    "LLMServerError",
    "LLMTimeoutError",
    "LLMTransportError",
    "MALFORMED_RESPONSE",
    "O3_MINI_PRICING",
    "PIPELINE_ABORT_ERRORS",
    "TransportFaultModel",
    "PricingModel",
    "SchemaModel",
    "ScriptedLLM",
    "SimulatedLLM",
    "TemplateSynthesizer",
    "UsageMeter",
    "count_tokens",
    "decode_payload",
    "encode_payload",
    "extract_json",
    "extract_sql",
    "fix_execution_prompt",
    "fix_semantics_prompt",
    "refine_template_prompt",
    "spec_from_payload",
    "template_generation_prompt",
    "validate_semantics_prompt",
]
