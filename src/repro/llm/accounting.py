"""Token counting, usage metering, and pricing.

The reproduction tracks LLM usage exactly the way the paper's cost study
(Table 2) does: prompt + completion tokens per call, converted to USD with a
per-million-token price list.  Token counts use a deterministic heuristic
(~4 characters per token) in lieu of a provider tokenizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def count_tokens(text: str) -> int:
    """Deterministic token estimate: ~4 characters/token, floor 1 per word."""
    if not text:
        return 0
    by_chars = len(text) // 4
    by_words = len(text.split())
    return max(by_chars, by_words, 1)


@dataclass(frozen=True)
class PricingModel:
    """USD per million tokens, input and output priced separately."""

    name: str = "o3-mini"
    usd_per_million_input: float = 1.10
    usd_per_million_output: float = 4.40

    def cost_usd(self, prompt_tokens: int, completion_tokens: int) -> float:
        return (
            prompt_tokens * self.usd_per_million_input
            + completion_tokens * self.usd_per_million_output
        ) / 1_000_000.0


O3_MINI_PRICING = PricingModel()


@dataclass
class UsageMeter:
    """Accumulates per-call token usage."""

    prompt_tokens: int = 0
    completion_tokens: int = 0
    num_calls: int = 0
    calls_by_task: dict[str, int] = field(default_factory=dict)
    # Per-task token spend — the raw material of the paper's Table-2 cost
    # breakdown: {task: {"prompt_tokens": int, "completion_tokens": int}}.
    tokens_by_task: dict[str, dict[str, int]] = field(default_factory=dict)

    def record(
        self, prompt_tokens: int, completion_tokens: int, task: str = "unknown"
    ) -> None:
        self.prompt_tokens += prompt_tokens
        self.completion_tokens += completion_tokens
        self.num_calls += 1
        self.calls_by_task[task] = self.calls_by_task.get(task, 0) + 1
        bucket = self.tokens_by_task.setdefault(
            task, {"prompt_tokens": 0, "completion_tokens": 0}
        )
        bucket["prompt_tokens"] += prompt_tokens
        bucket["completion_tokens"] += completion_tokens

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens

    def cost_usd(self, pricing: PricingModel = O3_MINI_PRICING) -> float:
        return pricing.cost_usd(self.prompt_tokens, self.completion_tokens)

    def task_cost_usd(
        self, task: str, pricing: PricingModel = O3_MINI_PRICING
    ) -> float:
        bucket = self.tokens_by_task.get(task)
        if bucket is None:
            return 0.0
        return pricing.cost_usd(
            bucket["prompt_tokens"], bucket["completion_tokens"]
        )

    def merge(self, other: "UsageMeter") -> None:
        self.prompt_tokens += other.prompt_tokens
        self.completion_tokens += other.completion_tokens
        self.num_calls += other.num_calls
        for task, count in other.calls_by_task.items():
            self.calls_by_task[task] = self.calls_by_task.get(task, 0) + count
        for task, tokens in other.tokens_by_task.items():
            bucket = self.tokens_by_task.setdefault(
                task, {"prompt_tokens": 0, "completion_tokens": 0}
            )
            bucket["prompt_tokens"] += tokens["prompt_tokens"]
            bucket["completion_tokens"] += tokens["completion_tokens"]

    def snapshot(self) -> dict:
        return {
            "prompt_tokens": self.prompt_tokens,
            "completion_tokens": self.completion_tokens,
            "total_tokens": self.total_tokens,
            "num_calls": self.num_calls,
            "calls_by_task": dict(self.calls_by_task),
            "tokens_by_task": {
                task: dict(tokens)
                for task, tokens in self.tokens_by_task.items()
            },
        }
