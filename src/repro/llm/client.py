"""The LLM client interface.

Everything above this layer (SQLBarber's template generator and refiner)
talks to an :class:`LLMClient` purely through prompt text in / response text
out, exactly as it would to a remote completion API.  The shipped
implementation is :class:`~repro.llm.simulated.SimulatedLLM`; a user with
API access can drop in a client that calls a real provider without touching
the rest of the system.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.obs import current as current_telemetry

from .accounting import UsageMeter, count_tokens


@dataclass(frozen=True)
class LLMResponse:
    """One completion: text plus token usage."""

    text: str
    prompt_tokens: int
    completion_tokens: int
    model: str

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


class LLMClient(abc.ABC):
    """Prompt-in, text-out completion interface with usage metering."""

    def __init__(self, model: str = "o3-mini"):
        self.model = model
        self.usage = UsageMeter()
        # Fault classes injected into the *latest* completion.  Reset by
        # complete(); fault-aware implementations (SimulatedLLM) append to
        # it so telemetry can flag hallucinated/corrupted outputs per call.
        self.last_faults: list[str] = []

    def complete(self, prompt: str, task: str = "unknown") -> LLMResponse:
        """Send *prompt* and return the completion, recording usage."""
        telemetry = current_telemetry()
        self.last_faults = []
        with telemetry.span("llm.call", task=task, model=self.model) as span:
            text = self._complete_text(prompt)
            response = LLMResponse(
                text=text,
                prompt_tokens=count_tokens(prompt),
                completion_tokens=count_tokens(text),
                model=self.model,
            )
            self.usage.record(
                response.prompt_tokens, response.completion_tokens, task
            )
            if telemetry.enabled:
                span.set(
                    prompt_tokens=response.prompt_tokens,
                    completion_tokens=response.completion_tokens,
                    fault_injected=bool(self.last_faults),
                    faults=list(self.last_faults),
                )
                telemetry.count("llm.calls", task=task)
                telemetry.count(
                    "llm.tokens.prompt", response.prompt_tokens, task=task
                )
                telemetry.count(
                    "llm.tokens.completion", response.completion_tokens, task=task
                )
                if self.last_faults:
                    telemetry.count("llm.faults", len(self.last_faults))
        return response

    @abc.abstractmethod
    def _complete_text(self, prompt: str) -> str:
        """Produce the completion text for *prompt*."""


class ScriptedLLM(LLMClient):
    """Replays canned responses in order — used for deterministic tests."""

    def __init__(self, responses: list[str], model: str = "scripted"):
        super().__init__(model=model)
        self._responses = list(responses)
        self._cursor = 0

    def _complete_text(self, prompt: str) -> str:
        if self._cursor >= len(self._responses):
            raise RuntimeError("ScriptedLLM ran out of responses")
        text = self._responses[self._cursor]
        self._cursor += 1
        return text
