"""The LLM client interface.

Everything above this layer (SQLBarber's template generator and refiner)
talks to an :class:`LLMClient` purely through prompt text in / response text
out, exactly as it would to a remote completion API.  The shipped
implementation is :class:`~repro.llm.simulated.SimulatedLLM`; a user with
API access can drop in a client that calls a real provider without touching
the rest of the system.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.obs import current as current_telemetry

from .accounting import UsageMeter, count_tokens
from .errors import LLMExhaustedError


@dataclass(frozen=True)
class LLMResponse:
    """One completion: text plus token usage."""

    text: str
    prompt_tokens: int
    completion_tokens: int
    model: str

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


class LLMClient(abc.ABC):
    """Prompt-in, text-out completion interface with usage metering."""

    def __init__(self, model: str = "o3-mini"):
        self.model = model
        self.usage = UsageMeter()
        # Fault classes injected into the *latest* completion.  Reset by
        # complete(); fault-aware implementations (SimulatedLLM) append to
        # it so telemetry can flag hallucinated/corrupted outputs per call.
        self.last_faults: list[str] = []

    def complete(self, prompt: str, task: str = "unknown") -> LLMResponse:
        """Send *prompt* and return the completion, recording usage."""
        telemetry = current_telemetry()
        self.last_faults = []
        with telemetry.span("llm.call", task=task, model=self.model) as span:
            try:
                text = self._complete_text(prompt)
            except Exception:
                # A failed call delivered nothing: faults noted mid-attempt
                # must not leak into the next call's telemetry.
                self.last_faults = []
                if telemetry.enabled:
                    telemetry.count("llm.call.errors", task=task)
                raise
            response = LLMResponse(
                text=text,
                prompt_tokens=count_tokens(prompt),
                completion_tokens=count_tokens(text),
                model=self.model,
            )
            self.usage.record(
                response.prompt_tokens, response.completion_tokens, task
            )
            if telemetry.enabled:
                span.set(
                    prompt_tokens=response.prompt_tokens,
                    completion_tokens=response.completion_tokens,
                    fault_injected=bool(self.last_faults),
                    faults=list(self.last_faults),
                )
                telemetry.count("llm.calls", task=task)
                telemetry.count(
                    "llm.tokens.prompt", response.prompt_tokens, task=task
                )
                telemetry.count(
                    "llm.tokens.completion", response.completion_tokens, task=task
                )
                if self.last_faults:
                    telemetry.count("llm.faults", len(self.last_faults))
        return response

    @abc.abstractmethod
    def _complete_text(self, prompt: str) -> str:
        """Produce the completion text for *prompt*."""

    # -- checkpoint hooks ---------------------------------------------------------
    #
    # Clients that consume randomness (or any other per-call state) expose
    # it here so a checkpointed pipeline can fast-forward a freshly built
    # client to the exact stream position of a saved run.  The base client
    # is stateless between calls.

    def rng_state(self) -> dict | None:
        """JSON-serializable call-stream state, or None when stateless."""
        return None

    def set_rng_state(self, state: dict) -> None:
        """Restore state captured by :meth:`rng_state`."""


class ScriptedLLM(LLMClient):
    """Replays canned responses in order — used for deterministic tests."""

    def __init__(self, responses: list[str], model: str = "scripted"):
        super().__init__(model=model)
        self._responses = list(responses)
        self._cursor = 0

    def _complete_text(self, prompt: str) -> str:
        if self._cursor >= len(self._responses):
            raise LLMExhaustedError(
                f"ScriptedLLM ran out of responses after "
                f"{len(self._responses)} calls"
            )
        text = self._responses[self._cursor]
        self._cursor += 1
        return text

    def rng_state(self) -> dict | None:
        return {"cursor": self._cursor}

    def set_rng_state(self, state: dict) -> None:
        self._cursor = int(state["cursor"])
