"""The LLM error taxonomy: content faults vs. transport faults vs. budgets.

SQLBarber's Algorithm 1 repairs *content* faults (bad SQL inside a
well-delivered completion).  Everything in this module is about the calls
that never deliver a usable completion at all: the API times out, sheds
load, returns a 5xx, truncates the stream, or the caller's spend ceiling is
reached.  :class:`~repro.resilience.ResilientLLMClient` retries the
retryable subset; the pipeline converts whatever escapes into a graceful
partial :class:`~repro.core.barber.WorkloadResult` instead of a stack
trace.
"""

from __future__ import annotations


class LLMError(Exception):
    """Base class for every failure raised by the LLM client stack."""


class LLMTransportError(LLMError):
    """A completion call failed before a usable response was delivered.

    ``retryable`` tells the resilience layer whether trying again can
    plausibly succeed (timeouts, rate limits, 5xx) or not.
    """

    retryable: bool = True


class LLMTimeoutError(LLMTransportError):
    """The call (or its enclosing deadline) ran out of time."""


class LLMRateLimitError(LLMTransportError):
    """The provider shed load; honour ``retry_after`` before retrying."""

    def __init__(self, message: str = "rate limited", retry_after: float | None = None):
        super().__init__(message)
        self.retry_after = retry_after


class LLMServerError(LLMTransportError):
    """A transient provider-side failure (HTTP 5xx class)."""

    def __init__(self, message: str = "server error", status: int = 500):
        super().__init__(message)
        self.status = status


class LLMMalformedResponseError(LLMTransportError):
    """The response arrived but is unusable (truncated or garbage payload)."""


class CircuitOpenError(LLMTransportError):
    """The per-task circuit breaker is open; the call was not attempted."""


class LLMExhaustedError(LLMError, RuntimeError):
    """A scripted/finite client has no responses left.

    Retrying cannot help (``RuntimeError`` ancestry keeps older callers
    that matched on it working).
    """

    retryable = False


class LLMRetryExhausted(LLMTransportError):
    """Every retry attempt failed; ``last_error`` is the final failure."""

    retryable = False

    def __init__(self, message: str, attempts: int, last_error: Exception | None = None):
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class BudgetExhausted(LLMError):
    """The run's token or dollar ceiling was reached.

    Raised *before* the call that would overspend, so the recorded usage
    never exceeds the configured limit by more than one in-flight call.
    """

    def __init__(
        self,
        message: str,
        *,
        tokens: int | None = None,
        max_tokens: int | None = None,
        cost_usd: float | None = None,
        max_cost_dollars: float | None = None,
    ):
        super().__init__(message)
        self.tokens = tokens
        self.max_tokens = max_tokens
        self.cost_usd = cost_usd
        self.max_cost_dollars = max_cost_dollars


#: Errors that abort a pipeline stage but must degrade gracefully: the
#: barber catches these, records the abort, and returns a partial (but
#: well-formed, possibly checkpoint-resumable) result.
PIPELINE_ABORT_ERRORS = (LLMError,)
