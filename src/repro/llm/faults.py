"""Fault injection: the hallucination model of the simulated LLM.

Real LLMs emit templates with syntax errors, invented identifiers, and spec
violations; SQLBarber's Algorithm 1 exists to repair exactly those.  The
:class:`FaultModel` controls how often each fault class appears and how fast
the rates decay as repair feedback accumulates (LLMs get demonstrably better
when shown their own error messages).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FaultModel:
    """Per-call fault probabilities and their per-attempt decay."""

    # Initial generation rates, tuned so that a fresh batch of templates
    # shows the paper's Figure 8a shape: only a small minority is
    # spec-compliant and roughly a third executes on the first try.
    semantic_rate: float = 0.90
    syntax_rate: float = 0.55
    hallucination_rate: float = 0.25
    repair_decay: float = 0.25

    def at_attempt(self, attempt: int) -> "FaultModel":
        """Rates after *attempt* rounds of feedback (attempt 0 = first try)."""
        factor = self.repair_decay**attempt if attempt > 0 else 1.0
        return FaultModel(
            semantic_rate=self.semantic_rate * factor,
            syntax_rate=self.syntax_rate * factor,
            hallucination_rate=self.hallucination_rate * factor,
            repair_decay=self.repair_decay,
        )

    @staticmethod
    def perfect() -> "FaultModel":
        """A fault-free model (useful for tests and ablations)."""
        return FaultModel(0.0, 0.0, 0.0, 0.0)


_SYNTAX_CORRUPTIONS = (
    "misspell_select",
    "misspell_from",
    "drop_paren",
    "double_comma",
    "trailing_and",
    "double_equals",
)


def corrupt_syntax(sql: str, rng: np.random.Generator) -> str:
    """Introduce one syntax error of a kind real models produce."""
    for _ in range(len(_SYNTAX_CORRUPTIONS)):
        kind = _SYNTAX_CORRUPTIONS[int(rng.integers(len(_SYNTAX_CORRUPTIONS)))]
        corrupted = _apply_syntax_corruption(sql, kind)
        if corrupted != sql:
            return corrupted
    return sql + " AND"  # guaranteed-broken fallback


def _apply_syntax_corruption(sql: str, kind: str) -> str:
    if kind == "misspell_select":
        return re.sub(r"\bSELECT\b", "SELEC", sql, count=1, flags=re.IGNORECASE)
    if kind == "misspell_from":
        return re.sub(r"\bFROM\b", "FORM", sql, count=1, flags=re.IGNORECASE)
    if kind == "drop_paren" and ")" in sql:
        index = sql.rfind(")")
        return sql[:index] + sql[index + 1 :]
    if kind == "double_comma" and ", " in sql:
        return sql.replace(", ", ", , ", 1)
    if kind == "trailing_and" and " WHERE " in sql.upper():
        return sql + " AND"
    if kind == "double_equals" and " = " in sql:
        return sql.replace(" = ", " == ", 1)
    return sql


def hallucinate_identifier(
    sql: str, column_names: set[str], rng: np.random.Generator
) -> str:
    """Replace one real column name with a plausible invented one."""
    present = [
        name
        for name in sorted(column_names)
        if re.search(rf"\b{re.escape(name)}\b", sql)
    ]
    if not present:
        return sql
    victim = present[int(rng.integers(len(present)))]
    suffixes = ("_ref", "_key", "_val", "_code")
    fake = victim + suffixes[int(rng.integers(len(suffixes)))]
    return re.sub(rf"\b{re.escape(victim)}\b", fake, sql, count=1)


def perturb_spec(spec: dict, rng: np.random.Generator) -> dict:
    """Misread the spec — the semantic-hallucination fault.

    Picks one constrained field and changes it so the generated template
    demonstrably violates the user's requirement.
    """
    perturbable: list[str] = []
    for key in ("num_joins", "num_tables", "num_aggregations", "num_predicates"):
        if spec.get(key) is not None:
            perturbable.append(key)
    for key in (
        "require_group_by",
        "require_nested_subquery",
        "require_order_by",
        "require_limit",
        "require_union",
    ):
        if spec.get(key):
            perturbable.append(key)
    if not perturbable:
        return dict(spec)
    field = perturbable[int(rng.integers(len(perturbable)))]
    mutated = dict(spec)
    if field.startswith("num_"):
        current = int(spec[field])
        delta = 1 if current == 0 else int(rng.choice([-1, 1]))
        mutated[field] = max(current + delta, 0)
    else:
        mutated[field] = False
    return mutated


def repair_syntax(sql: str) -> str:
    """Undo the known corruption classes (the simulated model's SQL skill)."""
    fixed = re.sub(r"\bSELEC\b", "SELECT", sql, flags=re.IGNORECASE)
    fixed = re.sub(r"\bFORM\b", "FROM", fixed, flags=re.IGNORECASE)
    fixed = fixed.replace("==", "=")
    fixed = re.sub(r",\s*,", ",", fixed)
    fixed = re.sub(r"\s+AND\s*$", "", fixed, flags=re.IGNORECASE)
    opens, closes = fixed.count("("), fixed.count(")")
    if opens > closes:
        for _ in range(opens - closes):
            fixed = _insert_missing_paren(fixed)
    elif closes > opens:
        for _ in range(closes - opens):
            index = fixed.rfind(")")
            fixed = fixed[:index] + fixed[index + 1 :]
    return fixed


_CLAUSE_KEYWORDS = (" from ", " where ", " group by ", " having ",
                    " order by ", " limit ")


def _insert_missing_paren(sql: str) -> str:
    """Close the innermost unmatched '(' before the next clause keyword."""
    depth = 0
    unmatched = -1
    for index, ch in enumerate(sql):
        if ch == "(":
            depth += 1
            unmatched = index
        elif ch == ")":
            depth -= 1
    if depth <= 0 or unmatched == -1:
        return sql + ")"
    tail = sql[unmatched:].lower()
    positions = [tail.find(k) for k in _CLAUSE_KEYWORDS if tail.find(k) != -1]
    if positions:
        insert_at = unmatched + min(positions)
        return sql[:insert_at] + ")" + sql[insert_at:]
    return sql + ")"


def repair_identifier(sql: str, error: str, column_names: set[str]) -> str:
    """Fix an unknown-column error by snapping to the closest real name."""
    match = re.search(r'column "?([\w.]+)"? does not exist', error)
    if match is None:
        match = re.search(r"column ([\w.]+) does not exist", error)
    if match is None:
        return sql
    bad = match.group(1).split(".")[-1]
    best, best_score = None, -1.0
    for name in column_names:
        score = _similarity(bad, name)
        if score > best_score:
            best, best_score = name, score
    if best is None:
        return sql
    return re.sub(rf"\b{re.escape(bad)}\b", best, sql)


def _similarity(a: str, b: str) -> float:
    """Cheap string similarity: shared prefix + length penalty."""
    prefix = 0
    for x, y in zip(a, b):
        if x != y:
            break
        prefix += 1
    return prefix - 0.1 * abs(len(a) - len(b))
