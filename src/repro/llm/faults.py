"""Fault injection: the hallucination model of the simulated LLM.

Real LLMs emit templates with syntax errors, invented identifiers, and spec
violations; SQLBarber's Algorithm 1 exists to repair exactly those.  The
:class:`FaultModel` controls how often each fault class appears and how fast
the rates decay as repair feedback accumulates (LLMs get demonstrably better
when shown their own error messages).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FaultModel:
    """Per-call fault probabilities and their per-attempt decay."""

    # Initial generation rates, tuned so that a fresh batch of templates
    # shows the paper's Figure 8a shape: only a small minority is
    # spec-compliant and roughly a third executes on the first try.
    semantic_rate: float = 0.90
    syntax_rate: float = 0.55
    hallucination_rate: float = 0.25
    repair_decay: float = 0.25

    def at_attempt(self, attempt: int) -> "FaultModel":
        """Rates after *attempt* rounds of feedback (attempt 0 = first try)."""
        factor = self.repair_decay**attempt if attempt > 0 else 1.0
        return FaultModel(
            semantic_rate=self.semantic_rate * factor,
            syntax_rate=self.syntax_rate * factor,
            hallucination_rate=self.hallucination_rate * factor,
            repair_decay=self.repair_decay,
        )

    @staticmethod
    def perfect() -> "FaultModel":
        """A fault-free model (useful for tests and ablations)."""
        return FaultModel(0.0, 0.0, 0.0, 0.0)


@dataclass(frozen=True)
class TransportFaultModel:
    """Per-call transport-fault probabilities (the layer *below* content).

    Content faults (above) corrupt the SQL inside a delivered completion;
    transport faults make the call itself fail the way a remote API does:
    timeouts, rate limits, transient 5xx errors, truncated streams, and
    malformed (non-completion) payloads.  All rates default to zero, so a
    plain :class:`~repro.llm.simulated.SimulatedLLM` behaves exactly as it
    did before this model existed.  Injection draws come from a dedicated
    RNG stream, keeping the content stream byte-identical whether or not a
    storm is configured.
    """

    timeout_rate: float = 0.0
    rate_limit_rate: float = 0.0
    server_error_rate: float = 0.0
    truncation_rate: float = 0.0
    malformed_rate: float = 0.0
    # Retry-After hint attached to injected rate-limit errors (seconds).
    retry_after_seconds: float = 0.05

    @property
    def active(self) -> bool:
        return (
            self.timeout_rate > 0
            or self.rate_limit_rate > 0
            or self.server_error_rate > 0
            or self.truncation_rate > 0
            or self.malformed_rate > 0
        )

    @staticmethod
    def none() -> "TransportFaultModel":
        """A fault-free transport (the default)."""
        return TransportFaultModel()

    @staticmethod
    def storm(intensity: float = 0.3) -> "TransportFaultModel":
        """A mixed storm splitting *intensity* across all five classes."""
        share = intensity / 5.0
        return TransportFaultModel(
            timeout_rate=share,
            rate_limit_rate=share,
            server_error_rate=share,
            truncation_rate=share,
            malformed_rate=share,
        )


#: The payload an injected "malformed response" delivers: a load balancer
#: answered instead of the model.  Deterministic so tests can match it.
MALFORMED_RESPONSE = "<html><body>502 Bad Gateway</body></html>"


def truncate_completion(text: str, rng: np.random.Generator) -> str:
    """Cut a completion short the way a dropped stream does.

    Fenced completions lose their closing fence (leaving an odd number of
    ``` markers); everything else loses its tail.  The result is always a
    strict prefix, detectable by the client-side response validator.
    """
    fence = text.rfind("```")
    if fence > 0 and text.count("```") >= 2:
        # Cut at or shortly before the closing fence, never before the end
        # of the opening one, so the odd fence count survives for the
        # validator to spot.
        opening_end = text.find("```") + 3
        low = max(opening_end, fence - 20)
        span = fence - low
        cut = fence - (int(rng.integers(0, span + 1)) if span > 0 else 0)
        return text[:cut]
    if len(text) <= 1:
        return ""
    return text[: max(len(text) // 2, 1)]


_SYNTAX_CORRUPTIONS = (
    "misspell_select",
    "misspell_from",
    "drop_paren",
    "double_comma",
    "trailing_and",
    "double_equals",
)


def corrupt_syntax(sql: str, rng: np.random.Generator) -> str:
    """Introduce one syntax error of a kind real models produce."""
    for _ in range(len(_SYNTAX_CORRUPTIONS)):
        kind = _SYNTAX_CORRUPTIONS[int(rng.integers(len(_SYNTAX_CORRUPTIONS)))]
        corrupted = _apply_syntax_corruption(sql, kind)
        if corrupted != sql:
            return corrupted
    return sql + " AND"  # guaranteed-broken fallback


def _apply_syntax_corruption(sql: str, kind: str) -> str:
    if kind == "misspell_select":
        return re.sub(r"\bSELECT\b", "SELEC", sql, count=1, flags=re.IGNORECASE)
    if kind == "misspell_from":
        return re.sub(r"\bFROM\b", "FORM", sql, count=1, flags=re.IGNORECASE)
    if kind == "drop_paren" and ")" in sql:
        index = sql.rfind(")")
        return sql[:index] + sql[index + 1 :]
    if kind == "double_comma" and ", " in sql:
        return sql.replace(", ", ", , ", 1)
    if kind == "trailing_and" and " WHERE " in sql.upper():
        return sql + " AND"
    if kind == "double_equals" and " = " in sql:
        return sql.replace(" = ", " == ", 1)
    return sql


def hallucinate_identifier(
    sql: str, column_names: set[str], rng: np.random.Generator
) -> str:
    """Replace one real column name with a plausible invented one."""
    present = [
        name
        for name in sorted(column_names)
        if re.search(rf"\b{re.escape(name)}\b", sql)
    ]
    if not present:
        return sql
    victim = present[int(rng.integers(len(present)))]
    suffixes = ("_ref", "_key", "_val", "_code")
    fake = victim + suffixes[int(rng.integers(len(suffixes)))]
    return re.sub(rf"\b{re.escape(victim)}\b", fake, sql, count=1)


def perturb_spec(spec: dict, rng: np.random.Generator) -> dict:
    """Misread the spec — the semantic-hallucination fault.

    Picks one constrained field and changes it so the generated template
    demonstrably violates the user's requirement.
    """
    perturbable: list[str] = []
    for key in ("num_joins", "num_tables", "num_aggregations", "num_predicates"):
        if spec.get(key) is not None:
            perturbable.append(key)
    for key in (
        "require_group_by",
        "require_nested_subquery",
        "require_order_by",
        "require_limit",
        "require_union",
    ):
        if spec.get(key):
            perturbable.append(key)
    if not perturbable:
        return dict(spec)
    field = perturbable[int(rng.integers(len(perturbable)))]
    mutated = dict(spec)
    if field.startswith("num_"):
        current = int(spec[field])
        delta = 1 if current == 0 else int(rng.choice([-1, 1]))
        mutated[field] = max(current + delta, 0)
    else:
        mutated[field] = False
    return mutated


def repair_syntax(sql: str) -> str:
    """Undo the known corruption classes (the simulated model's SQL skill)."""
    fixed = re.sub(r"\bSELEC\b", "SELECT", sql, flags=re.IGNORECASE)
    fixed = re.sub(r"\bFORM\b", "FROM", fixed, flags=re.IGNORECASE)
    fixed = fixed.replace("==", "=")
    fixed = re.sub(r",\s*,", ",", fixed)
    fixed = re.sub(r"\s+AND\s*$", "", fixed, flags=re.IGNORECASE)
    opens, closes = fixed.count("("), fixed.count(")")
    if opens > closes:
        for _ in range(opens - closes):
            fixed = _insert_missing_paren(fixed)
    elif closes > opens:
        for _ in range(closes - opens):
            index = fixed.rfind(")")
            fixed = fixed[:index] + fixed[index + 1 :]
    return fixed


_CLAUSE_KEYWORDS = (" from ", " where ", " group by ", " having ",
                    " order by ", " limit ")


def _insert_missing_paren(sql: str) -> str:
    """Close the innermost unmatched '(' before the next clause keyword."""
    depth = 0
    unmatched = -1
    for index, ch in enumerate(sql):
        if ch == "(":
            depth += 1
            unmatched = index
        elif ch == ")":
            depth -= 1
    if depth <= 0 or unmatched == -1:
        return sql + ")"
    tail = sql[unmatched:].lower()
    positions = [tail.find(k) for k in _CLAUSE_KEYWORDS if tail.find(k) != -1]
    if positions:
        insert_at = unmatched + min(positions)
        return sql[:insert_at] + ")" + sql[insert_at:]
    return sql + ")"


def repair_identifier(sql: str, error: str, column_names: set[str]) -> str:
    """Fix an unknown-column error by snapping to the closest real name."""
    match = re.search(r'column "?([\w.]+)"? does not exist', error)
    if match is None:
        match = re.search(r"column ([\w.]+) does not exist", error)
    if match is None:
        return sql
    bad = match.group(1).split(".")[-1]
    best, best_score = None, -1.0
    for name in column_names:
        score = _similarity(bad, name)
        if score > best_score:
            best, best_score = name, score
    if best is None:
        return sql
    return re.sub(rf"\b{re.escape(bad)}\b", best, sql)


def _similarity(a: str, b: str) -> float:
    """Cheap string similarity: shared prefix + length penalty."""
    prefix = 0
    for x, y in zip(a, b):
        if x != y:
            break
        prefix += 1
    return prefix - 0.1 * abs(len(a) - len(b))
