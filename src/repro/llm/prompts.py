"""Prompt construction and payload encoding.

Prompts combine a human-readable instruction section with a machine-readable
``<payload>…</payload>`` JSON block, the way production systems use
structured prompting.  The simulated LLM reads only the payload; a real LLM
would read the prose.  Both carry the same information: database schema
summary, sampled join path, spec text, templates, error messages, profiling
costs, and refinement history.
"""

from __future__ import annotations

import json
import re

_PAYLOAD_RE = re.compile(r"<payload>(.*?)</payload>", re.DOTALL)


def encode_payload(payload: dict) -> str:
    return f"<payload>{json.dumps(payload, sort_keys=True)}</payload>"


def decode_payload(prompt: str) -> dict:
    match = _PAYLOAD_RE.search(prompt)
    if match is None:
        raise ValueError("prompt carries no <payload> block")
    return json.loads(match.group(1))


def _schema_section(schema: dict) -> str:
    lines = ["## DATABASE SCHEMA"]
    for table in schema.get("tables", []):
        columns = ", ".join(
            f"{c['name']} {c['type']} (ndv={c.get('ndv', '?')})"
            for c in table.get("columns", [])
        )
        lines.append(f"- {table['name']} ({table.get('rows', '?')} rows): {columns}")
    edges = schema.get("join_edges", [])
    if edges:
        lines.append("## JOIN GRAPH")
        for edge in edges:
            lines.append(
                f"- {edge['table']}.{edge['column']} = "
                f"{edge['ref_table']}.{edge['ref_column']}"
            )
    return "\n".join(lines)


def template_generation_prompt(
    schema: dict, join_path: list[dict], spec_text: str, payload: dict
) -> str:
    """Step 3 of the paper: schema + join path + user spec -> prompt."""
    path_text = (
        "\n".join(
            f"- join {e['table']}.{e['column']} with "
            f"{e['ref_table']}.{e['ref_column']}"
            for e in join_path
        )
        or "- (single-table template, no joins)"
    )
    return (
        "You are an expert SQL engineer. Generate ONE SQL template for the\n"
        "database below. Use {placeholder} markers for predicate values.\n\n"
        f"{_schema_section(schema)}\n\n"
        "## SUGGESTED JOIN PATH\n"
        f"{path_text}\n\n"
        "## SPECIFICATION\n"
        f"{spec_text}\n\n"
        "Respond with the SQL template only.\n"
        f"{encode_payload(payload)}"
    )


def validate_semantics_prompt(template_sql: str, spec_text: str, payload: dict) -> str:
    """Algorithm 1, ValidateSemantics: does the template satisfy the spec?"""
    return (
        "Check whether the SQL template satisfies every requirement of the\n"
        "specification. Reason step by step, then answer with a JSON object\n"
        '{"satisfied": bool, "violations": [string, ...]}.\n\n'
        "## TEMPLATE\n"
        f"{template_sql}\n\n"
        "## SPECIFICATION\n"
        f"{spec_text}\n"
        f"{encode_payload(payload)}"
    )


def fix_semantics_prompt(
    template_sql: str, spec_text: str, violations: list[str], payload: dict
) -> str:
    """Algorithm 1, FixSemantics: rewrite the template to honour the spec."""
    violation_text = "\n".join(f"- {v}" for v in violations) or "- (unspecified)"
    return (
        "The SQL template below violates its specification. Rewrite it so\n"
        "every requirement is satisfied, keeping the general query intent.\n\n"
        "## TEMPLATE\n"
        f"{template_sql}\n\n"
        "## SPECIFICATION\n"
        f"{spec_text}\n\n"
        "## VIOLATIONS\n"
        f"{violation_text}\n"
        f"{encode_payload(payload)}"
    )


def fix_execution_prompt(template_sql: str, error: str, payload: dict) -> str:
    """Algorithm 1, FixExecution: repair using the DBMS error message."""
    return (
        "The SQL template below fails on the target database. Fix it using\n"
        "the error message; change as little as possible.\n\n"
        "## TEMPLATE\n"
        f"{template_sql}\n\n"
        "## DBMS ERROR\n"
        f"{error}\n"
        f"{encode_payload(payload)}"
    )


def refine_template_prompt(
    template_sql: str,
    cost_summary: dict,
    target_interval: tuple[float, float],
    history: list[dict] | None,
    payload: dict,
) -> str:
    """Algorithm 2, RefineTemplate: shift a template toward a cost interval."""
    history_text = ""
    if history:
        lines = ["## PREVIOUS ATTEMPTS (template -> observed cost range)"]
        for entry in history:
            lines.append(
                f"- costs [{entry.get('min_cost', '?')}, {entry.get('max_cost', '?')}]"
                f" from: {entry.get('sql', '')[:200]}"
            )
        history_text = "\n".join(lines) + "\n\n"
    return (
        "Rewrite the SQL template so that its instantiated queries can reach\n"
        f"costs inside [{target_interval[0]:.1f}, {target_interval[1]:.1f}].\n"
        "The current template produces the cost profile shown below.\n\n"
        "## TEMPLATE\n"
        f"{template_sql}\n\n"
        "## OBSERVED COST PROFILE\n"
        f"{json.dumps(cost_summary)}\n\n"
        f"{history_text}"
        "Respond with the rewritten SQL template only.\n"
        f"{encode_payload(payload)}"
    )
