"""Cost-directed template transformations (the RefineTemplate verb).

Given a template, its observed cost profile, and a target cost interval, the
simulated LLM rewrites the template so its reachable cost range moves toward
the interval: heavier (add joins, drop LIMIT), lighter (add LIMIT near the
target, add selective fixed predicates, aggregate down), or finer-grained
(add an extra placeholder predicate).  History entries let it avoid
re-proposing rewrites that already failed — the in-context-learning effect
Algorithm 2's phase 2 relies on.
"""

from __future__ import annotations

import numpy as np

from repro.sqldb import ast_nodes as ast
from repro.sqldb.parser import parse_select
from repro.sqldb.sql_render import render_statement
from .synthesizer import NUMERIC_TYPES, SchemaModel


def refine_sql(
    sql: str,
    schema: dict,
    target_interval: tuple[float, float],
    cost_summary: dict,
    history: list[dict] | None,
    rng: np.random.Generator,
    cost_type: str = "plan_cost",
) -> str:
    """Return a rewritten template aimed at *target_interval*."""
    model = SchemaModel(schema)
    low, high = float(target_interval[0]), float(target_interval[1])
    try:
        compound = parse_select(sql)
    except Exception:
        compound = None  # unparseable input: transforms will no-op below
    if isinstance(compound, ast.CompoundSelect):
        return _refine_compound(
            sql, compound, model, (low, high), history, rng
        )
    observed_min = float(cost_summary.get("min", 0.0) or 0.0)
    observed_max = float(cost_summary.get("max", 0.0) or 0.0)
    if observed_max <= 0.0 and observed_min <= 0.0:
        direction = "reshape"
    elif observed_max < low:
        direction = "heavier"
    elif observed_min > high:
        direction = "lighter"
    else:
        direction = "reshape"

    seen = {sql.strip()}
    for entry in history or []:
        seen.add(str(entry.get("sql", "")).strip())

    transforms = _transforms_for(direction, cost_type)
    order = rng.permutation(len(transforms)) if direction == "reshape" else range(
        len(transforms)
    )
    for index in order:
        transform = transforms[index]
        try:
            candidate = transform(sql, model, (low, high), rng, cost_summary)
        except Exception:
            continue
        if candidate is None:
            continue
        candidate = candidate.strip()
        if candidate and candidate not in seen:
            return candidate
    # Everything known was tried before: fall back to a fresh placeholder
    # predicate, perturbing until novel.
    for _ in range(5):
        try:
            candidate = _add_placeholder_predicate(
                sql, model, (low, high), rng, cost_summary
            )
        except Exception:
            break
        if candidate and candidate.strip() not in seen:
            return candidate
    return sql


def _refine_compound(
    sql: str,
    statement: ast.CompoundSelect,
    model: SchemaModel,
    interval: tuple[float, float],
    history: list[dict] | None,
    rng: np.random.Generator,
) -> str:
    """Refine a UNION template by editing its first branch.

    Only select-list-preserving edits are safe across a UNION (every branch
    must keep the same column count), so the compound path is limited to
    predicate additions on the first branch.
    """
    seen = {sql.strip()}
    for entry in history or []:
        seen.add(str(entry.get("sql", "")).strip())
    first_sql = render_statement(statement.selects[0])
    for _ in range(5):
        try:
            refined = _add_placeholder_predicate(
                first_sql, model, interval, rng
            )
        except Exception:
            return sql
        if not refined:
            return sql
        tail = "".join(
            f" {op.upper()} {render_statement(branch)}"
            for op, branch in zip(statement.ops, statement.selects[1:])
        )
        candidate = refined + tail
        if candidate.strip() not in seen:
            return candidate
    return sql


def _transforms_for(direction: str, cost_type: str):
    if direction == "heavier":
        if cost_type == "cardinality":
            # Aggregation and LIMIT cap output cardinality hard; lifting them
            # matters more than widening the join tree.
            return [
                _remove_limit,
                _remove_grouping,
                _add_join,
                _add_placeholder_predicate,
            ]
        return [_remove_limit, _add_join, _remove_grouping, _add_placeholder_predicate]
    if direction == "lighter":
        if cost_type == "cardinality":
            return [
                _add_limit,
                _add_grouping,
                _drop_join,
                _add_selective_predicate,
                _add_placeholder_predicate,
            ]
        return [
            _drop_join,
            _add_selective_predicate,
            _add_limit,
            _add_grouping,
            _add_placeholder_predicate,
        ]
    return [_add_placeholder_predicate, _widen_to_between, _add_limit, _add_join]


# -- individual transforms ------------------------------------------------------


def _remove_limit(sql, model, interval, rng, summary=None):
    statement = parse_select(sql)
    if statement.limit is None:
        return None
    statement.limit = None
    statement.offset = None
    return render_statement(statement)


def _add_limit(sql, model, interval, rng, summary=None):
    statement = parse_select(sql)
    low, high = interval
    target = max(int(low + (high - low) * (0.25 + 0.5 * rng.random())), 1)
    statement.limit = target
    return render_statement(statement)


def _placed_tables(statement: ast.SelectStatement) -> dict[str, str]:
    """alias -> table name for the outer FROM clause."""
    placed: dict[str, str] = {}
    if statement.from_clause is None:
        return placed
    for node in statement.from_clause.walk():
        if isinstance(node, ast.TableRef):
            placed[node.binding_name] = node.name
    return placed


def _column_ndv(model: SchemaModel, table: str, column: str) -> float:
    for entry in model.table(table).columns:
        if entry["name"] == column:
            return float(entry.get("ndv") or 1.0)
    return 1.0


def _add_join(sql, model: SchemaModel, interval, rng, summary=None):
    """Join one more table, chosen to move the cost toward the interval.

    Candidates are (a) fresh tables reachable over a FK edge — cost gain is
    roughly one extra scan — and (b) FK-side *self-joins*, which multiply
    rows by the key's average fan-out and can amplify cost far beyond any
    single scan.  Each candidate carries a back-of-envelope cost-gain
    estimate and the one landing closest to the interval midpoint wins.
    """
    statement = parse_select(sql)
    placed = _placed_tables(statement)
    if not placed:
        return None
    tables = set(placed.values())
    # (estimated cost gain, new_table, new_column, anchor_table, anchor_column)
    candidates: list[tuple[float, str, str, str, str]] = []
    for edge in model.edges_touching(tables):
        if edge["table"] in tables and edge["ref_table"] not in tables:
            gain = model.table(edge["ref_table"]).scan_cost_estimate()
            candidates.append(
                (gain, edge["ref_table"], edge["ref_column"],
                 edge["table"], edge["column"])
            )
        elif edge["ref_table"] in tables and edge["table"] not in tables:
            gain = model.table(edge["table"]).scan_cost_estimate()
            candidates.append(
                (gain, edge["table"], edge["column"],
                 edge["ref_table"], edge["ref_column"])
            )
        elif edge["table"] in tables:
            # FK-FK self-join: rows multiply by the key's average fan-out.
            info = model.table(edge["table"])
            ndv = _column_ndv(model, edge["table"], edge["column"])
            amplified = info.rows * (info.rows / max(ndv, 1.0))
            gain = info.scan_cost_estimate() + amplified * 0.01
            candidates.append(
                (gain, edge["table"], edge["column"],
                 edge["table"], edge["column"])
            )
    if not candidates:
        return None
    low, high = interval
    observed = float((summary or {}).get("mean") or 0.0)
    if observed and observed < low:
        mid = (low + high) / 2.0
        candidates.sort(key=lambda c: abs(observed + c[0] - mid))
    else:
        candidates.sort(key=lambda c: c[0], reverse=True)
    _, new_table, new_column, anchor_table, anchor_column = candidates[0]
    anchor_alias = next(a for a, t in placed.items() if t == anchor_table)
    new_alias = _fresh_alias(placed)
    condition = ast.BinaryOp(
        "=",
        ast.ColumnRef(column=new_column, table=new_alias),
        ast.ColumnRef(column=anchor_column, table=anchor_alias),
    )
    statement.from_clause = ast.Join(
        "inner",
        statement.from_clause,
        ast.TableRef(name=new_table, alias=new_alias),
        condition,
    )
    return render_statement(statement)


def _fresh_alias(placed: dict[str, str]) -> str:
    index = len(placed)
    while f"t{index}" in placed:
        index += 1
    return f"t{index}"


def _remove_grouping(sql, model, interval, rng, summary=None):
    statement = parse_select(sql)
    if not statement.group_by:
        return None
    group_exprs = list(statement.group_by)
    statement.group_by = []
    statement.having = None
    statement.order_by = []
    # Replace the aggregate select list with the raw grouped columns plus
    # whatever plain columns the grouping used.
    items = [ast.SelectItem(expression=g) for g in group_exprs]
    statement.select_items = items or statement.select_items
    return render_statement(statement)


def _add_grouping(sql, model: SchemaModel, interval, rng, summary=None):
    statement = parse_select(sql)
    if statement.group_by:
        return None
    placed = _placed_tables(statement)
    if not placed:
        return None
    candidates = []
    for alias, table_name in placed.items():
        for column in model.table(table_name).columns:
            ndv = float(column.get("ndv") or 1e9)
            candidates.append((ndv, alias, column["name"]))
    if not candidates:
        return None
    candidates.sort()
    _, alias, column = candidates[0]
    group_ref = ast.ColumnRef(column=column, table=alias)
    statement.group_by = [group_ref]
    statement.select_items = [
        ast.SelectItem(expression=group_ref),
        ast.SelectItem(
            expression=ast.FunctionCall("count", [ast.Star()]), alias="cnt"
        ),
    ]
    statement.order_by = []
    statement.limit = None
    return render_statement(statement)


def _drop_join(sql, model: SchemaModel, interval, rng, summary=None):
    """Remove one joined table (and every reference to it).

    The join tree the synthesizer builds is left-deep, so candidate drops are
    the right side of each join along the spine, tried outermost-first.  A
    drop only succeeds when GROUP BY / HAVING / ORDER BY do not depend on the
    dropped binding; SELECT items and WHERE conjuncts that do are removed.
    """
    from repro.sqldb.planner import bindings_of, conjoin, split_conjuncts

    probe = parse_select(sql)
    if not isinstance(probe.from_clause, ast.Join):
        return None
    spine_length = 0
    node = probe.from_clause
    while isinstance(node, ast.Join):
        spine_length += 1
        node = node.left
    for drop_index in range(spine_length):
        statement = parse_select(sql)  # fresh copy per attempt
        parent = None
        join = statement.from_clause
        for _ in range(drop_index):
            parent, join = join, join.left
        if not isinstance(join, ast.Join) or not isinstance(
            join.right, ast.TableRef
        ):
            continue
        alias = join.right.binding_name
        blocked = any(
            alias in bindings_of(expr)
            for expr in (
                list(statement.group_by)
                + ([statement.having] if statement.having else [])
                + [o.expression for o in statement.order_by]
            )
        )
        if blocked:
            continue
        if parent is None:
            statement.from_clause = join.left
        else:
            parent.left = join.left
        # An outer join's ON condition may still reference the dropped
        # binding (chained joins); such candidates are not droppable.
        dangling = any(
            isinstance(n, ast.Join)
            and n.condition is not None
            and alias in bindings_of(n.condition)
            for n in statement.from_clause.walk()
        )
        if dangling:
            continue
        statement.select_items = [
            item
            for item in statement.select_items
            if alias not in bindings_of(item.expression)
        ] or [ast.SelectItem(ast.FunctionCall("count", [ast.Star()]), alias="cnt")]
        if statement.where is not None:
            kept = [
                c
                for c in split_conjuncts(statement.where)
                if alias not in bindings_of(c)
            ]
            statement.where = conjoin(kept)
        return render_statement(statement)
    return None


def _numeric_columns_in(statement, model: SchemaModel, prefer_indexed=False):
    placed = _placed_tables(statement)
    columns = []
    indexed = []
    for alias, table_name in placed.items():
        if table_name not in model.tables:
            continue
        table = model.table(table_name)
        for column in table.columns:
            if column.get("type") in NUMERIC_TYPES and column.get("min") is not None:
                columns.append((alias, column))
                if table.is_indexed(column["name"]):
                    indexed.append((alias, column))
    if prefer_indexed and indexed:
        # An indexed column lets the optimizer switch to an index scan, so a
        # selective predicate there can push cost *below* the seq-scan floor.
        return indexed
    return columns


def _add_selective_predicate(sql, model: SchemaModel, interval, rng, summary=None):
    statement = parse_select(sql)
    columns = _numeric_columns_in(statement, model, prefer_indexed=True)
    if not columns:
        return None
    alias, column = columns[int(rng.integers(len(columns)))]
    low = float(column["min"])
    high = float(column["max"])
    cut = low + (high - low) * (0.02 + 0.45 * rng.random())
    predicate = ast.BinaryOp(
        "<=",
        ast.ColumnRef(column=column["name"], table=alias),
        ast.Literal(round(cut, 4)),
    )
    statement.where = (
        predicate
        if statement.where is None
        else ast.BinaryOp("and", statement.where, predicate)
    )
    return render_statement(statement)


def _next_placeholder(statement) -> str:
    used = set(ast.find_placeholders(statement))
    index = 1
    while f"p_{index}" in used:
        index += 1
    return f"p_{index}"


def _add_placeholder_predicate(sql, model: SchemaModel, interval, rng, summary=None):
    statement = parse_select(sql)
    prefer_indexed = bool(rng.random() < 0.6)
    columns = _numeric_columns_in(statement, model, prefer_indexed=prefer_indexed)
    if not columns:
        return None
    alias, column = columns[int(rng.integers(len(columns)))]
    name = _next_placeholder(statement)
    op = ["<", ">", "<=", ">="][int(rng.integers(4))]
    predicate = ast.BinaryOp(
        op,
        ast.ColumnRef(column=column["name"], table=alias),
        ast.Placeholder(name),
    )
    statement.where = (
        predicate
        if statement.where is None
        else ast.BinaryOp("and", statement.where, predicate)
    )
    return render_statement(statement)


def _widen_to_between(sql, model: SchemaModel, interval, rng, summary=None):
    """Replace a single-placeholder comparison with a two-placeholder
    BETWEEN, doubling the control the predicate search has over the column."""
    statement = parse_select(sql)
    if statement.where is None:
        return None
    target: ast.BinaryOp | None = None
    for node in statement.where.walk():
        if (
            isinstance(node, ast.BinaryOp)
            and node.op in ("<", ">", "<=", ">=")
            and isinstance(node.right, ast.Placeholder)
            and isinstance(node.left, ast.ColumnRef)
        ):
            target = node
            break
    if target is None:
        return None
    second = _next_placeholder(statement)
    replacement = ast.Between(
        operand=target.left,
        low=ast.Placeholder(target.right.name),
        high=ast.Placeholder(second),
    )
    statement.where = _replace_node(statement.where, target, replacement)
    return render_statement(statement)


def _replace_node(root, old, new):
    if root is old:
        return new
    if isinstance(root, ast.BinaryOp):
        root.left = _replace_node(root.left, old, new)
        root.right = _replace_node(root.right, old, new)
    elif isinstance(root, ast.UnaryOp):
        root.operand = _replace_node(root.operand, old, new)
    return root
