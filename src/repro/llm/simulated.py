"""The simulated LLM: a drop-in completion client with SQL skills.

:class:`SimulatedLLM` implements the :class:`~repro.llm.client.LLMClient`
contract.  It parses the structured payload of each prompt and performs the
requested verb — template generation, semantic validation, semantic repair,
syntax repair, or cost-directed refinement — with deliberate, configurable
imperfection supplied by :mod:`repro.llm.faults`.  From the caller's point of
view it behaves exactly like a remote completion API: text in, text out,
tokens billed.
"""

from __future__ import annotations

import json
import re

import numpy as np

from repro.obs import current as current_telemetry
from repro.sqldb.errors import SqlError
from repro.sqldb.parser import parse_select
from repro.workload.analyzer import check_template
from repro.workload.spec import TemplateSpec
from .client import LLMClient
from .errors import LLMRateLimitError, LLMServerError, LLMTimeoutError
from .faults import (
    MALFORMED_RESPONSE,
    FaultModel,
    TransportFaultModel,
    corrupt_syntax,
    hallucinate_identifier,
    perturb_spec,
    repair_identifier,
    repair_syntax,
    truncate_completion,
)
from .prompts import decode_payload
from .refine import refine_sql
from .synthesizer import SchemaModel, TemplateSynthesizer

_SQL_FENCE_RE = re.compile(r"```(?:sql)?\s*(.*?)```", re.DOTALL)


def extract_sql(text: str) -> str:
    """Pull the SQL statement out of a completion (code fences, prose)."""
    match = _SQL_FENCE_RE.search(text)
    if match:
        return match.group(1).strip().rstrip(";")
    lines = [
        line
        for line in text.splitlines()
        if line.strip() and not line.lstrip().startswith("--")
    ]
    return "\n".join(lines).strip().rstrip(";")


def extract_json(text: str) -> dict:
    """Pull the first JSON object out of a completion."""
    start = text.find("{")
    end = text.rfind("}")
    if start == -1 or end == -1:
        raise ValueError("completion carries no JSON object")
    return json.loads(text[start : end + 1])


_SPEC_FIELDS = (
    "num_tables",
    "num_joins",
    "num_aggregations",
    "num_predicates",
    "require_group_by",
    "require_nested_subquery",
    "require_order_by",
    "require_limit",
    "require_complex_scalar",
    "require_union",
)


def spec_from_payload(payload_spec: dict) -> TemplateSpec:
    kwargs = {k: payload_spec.get(k) for k in _SPEC_FIELDS}
    return TemplateSpec(spec_id=str(payload_spec.get("spec_id", "spec")), **kwargs)


class SimulatedLLM(LLMClient):
    """A deterministic, fault-injected stand-in for a completion API."""

    def __init__(
        self,
        seed: int = 0,
        fault_model: FaultModel | None = None,
        validation_noise: float = 0.03,
        model: str = "o3-mini-simulated",
        transport_faults: TransportFaultModel | None = None,
    ):
        super().__init__(model=model)
        self._rng = np.random.default_rng(seed)
        self._synthesizer = TemplateSynthesizer(seed=seed + 1)
        self.fault_model = fault_model if fault_model is not None else FaultModel()
        self.validation_noise = validation_noise
        self.transport_faults = (
            transport_faults
            if transport_faults is not None
            else TransportFaultModel()
        )
        # Transport draws come from their own stream so enabling a storm
        # never shifts the content RNG (and vice versa).
        self._transport_rng = np.random.default_rng(seed + 7919)

    # -- dispatch -----------------------------------------------------------------

    def _complete_text(self, prompt: str) -> str:
        model = self.transport_faults
        draws = self._transport_rng.random(5) if model.active else None
        if draws is not None:
            self._maybe_raise_transport(model, draws)
        text = self._dispatch(prompt)
        if draws is not None:
            text = self._maybe_corrupt_transport(text, model, draws)
        return text

    def _maybe_raise_transport(
        self, model: TransportFaultModel, draws
    ) -> None:
        """Faults that kill the call before any content is produced."""
        telemetry = current_telemetry()
        if draws[0] < model.timeout_rate:
            telemetry.count("llm.transport.injected", kind="timeout")
            raise LLMTimeoutError("simulated request timeout")
        if draws[1] < model.rate_limit_rate:
            telemetry.count("llm.transport.injected", kind="rate_limit")
            raise LLMRateLimitError(
                "simulated 429: rate limited",
                retry_after=model.retry_after_seconds,
            )
        if draws[2] < model.server_error_rate:
            telemetry.count("llm.transport.injected", kind="server_error")
            raise LLMServerError("simulated 503: overloaded", status=503)

    def _maybe_corrupt_transport(
        self, text: str, model: TransportFaultModel, draws
    ) -> str:
        """Faults that deliver the response, but broken."""
        telemetry = current_telemetry()
        if draws[3] < model.truncation_rate:
            telemetry.count("llm.transport.injected", kind="truncated")
            self.last_faults.append("transport:truncated")
            return truncate_completion(text, self._transport_rng)
        if draws[4] < model.malformed_rate:
            telemetry.count("llm.transport.injected", kind="malformed")
            self.last_faults.append("transport:malformed")
            return MALFORMED_RESPONSE
        return text

    def _dispatch(self, prompt: str) -> str:
        payload = decode_payload(prompt)
        task = payload.get("task")
        handlers = {
            "generate_template": self._generate_template,
            "validate_semantics": self._validate_semantics,
            "fix_semantics": self._fix_semantics,
            "fix_execution": self._fix_execution,
            "refine_template": self._refine_template,
        }
        if task not in handlers:
            raise ValueError(f"simulated LLM cannot handle task {task!r}")
        return handlers[task](payload)

    # -- verbs ----------------------------------------------------------------------

    def _generate_template(self, payload: dict) -> str:
        schema = payload["schema"]
        spec = dict(payload.get("spec") or {})
        join_path = payload.get("join_path")
        rates = self.fault_model
        effective_spec = spec
        if self._rng.random() < rates.semantic_rate:
            effective_spec = perturb_spec(spec, self._rng)
            if effective_spec != spec:
                join_path = None  # the misread spec re-derives its own path
                self.last_faults.append("semantic")
        sql = self._synthesizer.synthesize(schema, join_path, effective_spec)
        sql = self._apply_output_faults(sql, schema, rates)
        return self._wrap_sql(sql, "Here is a SQL template for your schema.")

    def _validate_semantics(self, payload: dict) -> str:
        spec = spec_from_payload(payload.get("spec") or {})
        template_sql = payload["template"]
        satisfied, violations = check_template(template_sql, spec)
        if self._rng.random() < self.validation_noise:
            # Occasional mis-judgement, as a real LLM judge would produce.
            if satisfied:
                satisfied, violations = False, ["judged non-compliant (spurious)"]
            else:
                satisfied, violations = True, []
        return json.dumps({"satisfied": bool(satisfied), "violations": violations})

    def _fix_semantics(self, payload: dict) -> str:
        schema = payload["schema"]
        spec = dict(payload.get("spec") or {})
        attempt = int(payload.get("attempt", 1))
        rates = self.fault_model.at_attempt(attempt)
        effective_spec = spec
        if self._rng.random() < rates.semantic_rate:
            effective_spec = perturb_spec(spec, self._rng)
            if effective_spec != spec:
                self.last_faults.append("semantic")
        sql = self._synthesizer.synthesize(schema, None, effective_spec)
        sql = self._apply_output_faults(sql, schema, rates)
        return self._wrap_sql(sql, "Rewritten template addressing the violations.")

    def _fix_execution(self, payload: dict) -> str:
        schema = payload["schema"]
        template_sql = payload["template"]
        error = str(payload.get("error", ""))
        attempt = int(payload.get("attempt", 1))
        column_names = SchemaModel(schema).all_column_names()
        fixed = repair_syntax(template_sql)
        if "does not exist" in error:
            fixed = repair_identifier(fixed, error, column_names)
        try:
            parse_select(fixed)
        except SqlError:
            # The damage is beyond patching: regenerate against the spec.
            rates = self.fault_model.at_attempt(attempt + 1)
            fixed = self._synthesizer.synthesize(
                schema, None, dict(payload.get("spec") or {})
            )
            fixed = self._apply_output_faults(fixed, schema, rates)
        return self._wrap_sql(fixed, "Template repaired from the DBMS error.")

    def _refine_template(self, payload: dict) -> str:
        schema = payload["schema"]
        sql = refine_sql(
            payload["template"],
            schema,
            tuple(payload["target_interval"]),
            payload.get("cost_summary") or {},
            payload.get("history") or [],
            self._rng,
            cost_type=payload.get("cost_type", "plan_cost"),
        )
        # Refinement output skips the check-and-rewrite loop in Algorithm 2,
        # so keep a small residual fault rate: broken refinements get pruned.
        rates = self.fault_model.at_attempt(3)
        sql = self._apply_output_faults(sql, schema, rates)
        return self._wrap_sql(sql, "Refined template targeting the interval.")

    # -- checkpoint hooks ---------------------------------------------------------

    def rng_state(self) -> dict | None:
        """All three RNG stream positions, for bit-identical resume."""
        return {
            "content": self._rng.bit_generator.state,
            "synthesizer": self._synthesizer.rng.bit_generator.state,
            "transport": self._transport_rng.bit_generator.state,
        }

    def set_rng_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state["content"]
        self._synthesizer.rng.bit_generator.state = state["synthesizer"]
        self._transport_rng.bit_generator.state = state["transport"]

    # -- helpers ----------------------------------------------------------------------

    def _apply_output_faults(
        self, sql: str, schema: dict, rates: FaultModel
    ) -> str:
        if self._rng.random() < rates.hallucination_rate:
            hallucinated = hallucinate_identifier(
                sql, SchemaModel(schema).all_column_names(), self._rng
            )
            if hallucinated != sql:
                self.last_faults.append("hallucination")
            sql = hallucinated
        if self._rng.random() < rates.syntax_rate:
            corrupted = corrupt_syntax(sql, self._rng)
            if corrupted != sql:
                self.last_faults.append("syntax")
            sql = corrupted
        return sql

    @staticmethod
    def _wrap_sql(sql: str, prose: str) -> str:
        return f"{prose}\n```sql\n{sql}\n```"
