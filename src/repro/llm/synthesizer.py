"""Schema-aware SQL template synthesis — the simulated LLM's "knowledge".

Given a schema description, a join path, and a specification, the
synthesizer builds a SQL template that honours the spec: the right number of
joins, tables, aggregations and predicate placeholders, plus requested
features (GROUP BY, nested subqueries, ORDER BY/LIMIT, complex scalar
expressions).  All randomness flows through one ``numpy`` generator so runs
are reproducible.

The same module hosts the cost-directed *refinement* transforms used by the
simulated LLM's RefineTemplate verb (paper Section 5.2): structural edits
that push a template's reachable cost range up or down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sqldb.parser import parse_select
from repro.sqldb.sql_render import render_statement
from repro.sqldb import ast_nodes as ast

NUMERIC_TYPES = {"integer", "bigint", "double precision", "date"}


@dataclass
class _TableInfo:
    name: str
    rows: int
    columns: list[dict]
    pages: int = 1
    indexes: tuple[str, ...] = ()

    def columns_of_types(self, types: set[str]) -> list[dict]:
        return [c for c in self.columns if c.get("type") in types]

    @property
    def numeric_columns(self) -> list[dict]:
        return self.columns_of_types(NUMERIC_TYPES)

    @property
    def text_columns(self) -> list[dict]:
        return self.columns_of_types({"text"})

    def is_indexed(self, column: str) -> bool:
        return column in self.indexes

    def scan_cost_estimate(self) -> float:
        """A back-of-envelope sequential scan cost (pages + per-tuple CPU)."""
        return float(self.pages) + 0.015 * self.rows


class SchemaModel:
    """Indexed view of the schema payload the prompts carry."""

    def __init__(self, schema: dict):
        self.tables = {
            t["name"]: _TableInfo(
                name=t["name"],
                rows=int(t.get("rows", 0)),
                columns=list(t.get("columns", [])),
                pages=int(t.get("pages", 1) or 1),
                indexes=tuple(t.get("indexes", ())),
            )
            for t in schema.get("tables", [])
        }
        self.join_edges = list(schema.get("join_edges", []))

    def table(self, name: str) -> _TableInfo:
        return self.tables[name]

    def edges_touching(self, tables: set[str]) -> list[dict]:
        return [
            e
            for e in self.join_edges
            if e["table"] in tables or e["ref_table"] in tables
        ]

    def all_column_names(self) -> set[str]:
        names: set[str] = set()
        for table in self.tables.values():
            names.update(c["name"] for c in table.columns)
        return names

    def sample_join_path(
        self,
        num_joins: int,
        rng: np.random.Generator,
        num_tables: int | None = None,
    ) -> list[dict]:
        """A random walk over the join graph with *num_joins* edges.

        Each returned edge attaches one endpoint to the already-placed set.
        When the graph runs out of fresh tables (or *num_tables* caps them),
        edges between already-placed tables are reused, which the template
        builder turns into self-joins.
        """
        if num_joins <= 0 or not self.join_edges:
            return []
        edges = list(self.join_edges)
        first = edges[int(rng.integers(len(edges)))]
        path = [first]
        placed = {first["table"], first["ref_table"]}
        while len(path) < num_joins:
            table_budget_left = num_tables is None or len(placed) < num_tables
            candidates = []
            if table_budget_left:
                candidates = [
                    e
                    for e in edges
                    if (e["table"] in placed) != (e["ref_table"] in placed)
                ]
            if not candidates:
                candidates = [
                    e
                    for e in edges
                    if e["table"] in placed or e["ref_table"] in placed
                ]
            if not candidates:
                candidates = edges
            edge = candidates[int(rng.integers(len(candidates)))]
            path.append(edge)
            placed.update((edge["table"], edge["ref_table"]))
        return path


@dataclass
class _Relation:
    alias: str
    table: _TableInfo


class TemplateSynthesizer:
    """Builds spec-conforming SQL templates over a :class:`SchemaModel`."""

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    def synthesize(
        self, schema: dict, join_path: list[dict] | None, spec: dict
    ) -> str:
        model = SchemaModel(schema)
        if not model.tables:
            raise ValueError("schema payload lists no tables")
        rng = self._rng
        num_joins = spec.get("num_joins")
        num_tables = spec.get("num_tables")
        if join_path is None:
            join_path = model.sample_join_path(
                num_joins if num_joins is not None else int(rng.integers(0, 3)),
                rng,
                num_tables,
            )
        if num_joins is not None:
            join_path = self._fit_path_to_join_count(model, join_path, num_joins, rng)
        relations, from_sql = self._build_from(model, join_path, rng, num_tables)

        num_aggregations = spec.get("num_aggregations")
        if num_aggregations is None:
            num_aggregations = int(rng.integers(0, 3))
            if spec.get("require_complex_scalar") and not spec.get(
                "require_group_by"
            ):
                # Complex scalars over an ungrouped aggregate would be
                # invalid SQL; with aggregations unconstrained, drop them.
                num_aggregations = 0
        group_by = spec.get("require_group_by")
        if group_by is None:
            group_by = num_aggregations > 0 and bool(rng.random() < 0.5)

        num_predicates = spec.get("num_predicates")
        if num_predicates is None:
            num_predicates = int(rng.integers(1, 4))
        want_subquery = bool(spec.get("require_nested_subquery"))
        want_union = bool(spec.get("require_union"))
        want_order = bool(spec.get("require_order_by")) and not want_union
        want_limit = bool(spec.get("require_limit")) and not want_union
        want_complex = bool(spec.get("require_complex_scalar"))

        placeholder_budget = _PlaceholderBudget(num_predicates)
        group_column = self._pick_group_column(relations, rng) if group_by else None
        select_sql = self._build_select(
            relations, rng, num_aggregations, group_column, want_complex
        )
        where_parts = self._build_predicates(
            relations, rng, placeholder_budget,
            reserve=1 if want_subquery else 0,
        )
        if want_subquery:
            where_parts.append(
                self._build_subquery_predicate(
                    model,
                    relations,
                    rng,
                    placeholder_budget,
                    # A table-count constraint means the subquery must not
                    # introduce a table the outer query does not already use.
                    restrict_to_placed=num_tables is not None,
                )
            )
        # Spend any remaining placeholder budget on simple predicates.
        where_parts.extend(
            self._build_predicates(relations, rng, placeholder_budget, reserve=0)
        )

        sql = f"SELECT {select_sql} FROM {from_sql}"
        if where_parts:
            sql += " WHERE " + " AND ".join(where_parts)
        having = None
        if group_by:
            sql += f" GROUP BY {group_column}"
            if placeholder_budget.remaining > 0 and rng.random() < 0.5:
                having = f"count(*) > {{{placeholder_budget.take()}}}"
        if having:
            sql += f" HAVING {having}"
        if want_order:
            order_target = group_column if group_column else "1"
            direction = " DESC" if rng.random() < 0.5 else ""
            sql += f" ORDER BY {order_target}{direction}"
        if want_limit:
            sql += f" LIMIT {int(rng.choice([10, 50, 100, 500, 1000]))}"
        # Any placeholders still owed (rare): append simple predicates.
        while placeholder_budget.remaining > 0:
            extra = self._simple_predicate(relations, rng, placeholder_budget)
            sql = _insert_conjunct(sql, extra)
        if want_union:
            sql = self._append_union_branch(sql, relations, rng)
            if spec.get("require_order_by"):
                order_target = group_column if group_column else "1"
                sql += f" ORDER BY {order_target}"
            if spec.get("require_limit"):
                sql += f" LIMIT {int(rng.choice([10, 50, 100, 500]))}"
        return sql

    # -- FROM clause ------------------------------------------------------------

    def _fit_path_to_join_count(
        self,
        model: SchemaModel,
        path: list[dict],
        num_joins: int,
        rng: np.random.Generator,
    ) -> list[dict]:
        if len(path) > num_joins:
            return path[:num_joins]
        while len(path) < num_joins:
            if path:
                extendable = model.edges_touching(
                    {e["table"] for e in path} | {e["ref_table"] for e in path}
                )
                pool = extendable or model.join_edges
            else:
                pool = model.join_edges
            if not pool:
                break
            path = path + [pool[int(rng.integers(len(pool)))]]
        return path

    def _build_from(
        self,
        model: SchemaModel,
        join_path: list[dict],
        rng: np.random.Generator,
        num_tables: int | None,
    ) -> tuple[list[_Relation], str]:
        if not join_path:
            candidates = list(model.tables.values())
            if num_tables is not None and num_tables <= 1:
                pass  # single table either way
            table = candidates[int(rng.integers(len(candidates)))]
            relation = _Relation("t0", table)
            return [relation], f"{table.name} AS t0"
        relations: list[_Relation] = []
        alias_of: dict[str, str] = {}

        def place(table_name: str) -> str:
            alias = f"t{len(relations)}"
            relations.append(_Relation(alias, model.table(table_name)))
            alias_of.setdefault(table_name, alias)
            return alias

        first = join_path[0]
        base_alias = place(first["table"])
        sql = f"{first['table']} AS {base_alias}"
        for edge in join_path:
            left_placed = edge["table"] in alias_of
            right_placed = edge["ref_table"] in alias_of
            if left_placed and right_placed:
                # Self-join: attach a fresh alias of the ref table.
                new_alias = place(edge["ref_table"])
                anchor = alias_of[edge["table"]]
            elif left_placed:
                new_alias = place(edge["ref_table"])
                anchor = alias_of[edge["table"]]
            elif right_placed:
                new_alias = place(edge["table"])
                anchor = alias_of[edge["ref_table"]]
                sql += (
                    f" JOIN {edge['table']} AS {new_alias} "
                    f"ON {new_alias}.{edge['column']} = {anchor}.{edge['ref_column']}"
                )
                continue
            else:
                # Disconnected edge: anchor arbitrarily on the first relation.
                new_alias = place(edge["ref_table"])
                anchor = relations[0].alias
                anchor_col = relations[0].table.columns[0]["name"]
                sql += (
                    f" JOIN {edge['ref_table']} AS {new_alias} "
                    f"ON {new_alias}.{edge['ref_column']} = {anchor}.{anchor_col}"
                )
                continue
            table_of_new = relations[-1].table.name
            sql += f" JOIN {table_of_new} AS {new_alias} "
            sql += f"ON {anchor}.{edge['column']} = {new_alias}.{edge['ref_column']}"
        return relations, sql

    # -- SELECT list -------------------------------------------------------------

    def _pick_group_column(
        self, relations: list[_Relation], rng: np.random.Generator
    ) -> str:
        candidates: list[tuple[str, float]] = []
        for relation in relations:
            for column in relation.table.columns:
                ndv = float(column.get("ndv") or 1000.0)
                if column.get("type") in ("text", "integer", "date"):
                    candidates.append((f"{relation.alias}.{column['name']}", ndv))
        if not candidates:
            relation = relations[0]
            return f"{relation.alias}.{relation.table.columns[0]['name']}"
        low_ndv = sorted(candidates, key=lambda c: c[1])[: max(3, len(candidates) // 3)]
        return low_ndv[int(rng.integers(len(low_ndv)))][0]

    def _build_select(
        self,
        relations: list[_Relation],
        rng: np.random.Generator,
        num_aggregations: int,
        group_column: str | None,
        want_complex: bool,
    ) -> str:
        items: list[str] = []
        if group_column:
            items.append(group_column)
        aggregates = self._build_aggregates(relations, rng, num_aggregations)
        items.extend(aggregates)
        if not items or (not aggregates and group_column is None):
            items.extend(self._plain_columns(relations, rng))
        if want_complex:
            if aggregates and group_column is None:
                # Global aggregate: the complex expression must wrap an
                # aggregate, not a bare column (which would be invalid SQL).
                items[items.index(aggregates[0])] = (
                    f"round(abs({aggregates[0]}) * 1.07 + 1.0, 2)"
                )
            else:
                items.append(self._complex_scalar(relations, rng, group_column))
        return ", ".join(dict.fromkeys(items))  # dedupe, keep order

    def _build_aggregates(
        self, relations: list[_Relation], rng: np.random.Generator, count: int
    ) -> list[str]:
        if count <= 0:
            return []
        aggregates = ["count(*)"]
        numeric_pool = [
            f"{r.alias}.{c['name']}"
            for r in relations
            for c in r.table.numeric_columns
            if c.get("type") != "date"
        ]
        functions = ["sum", "avg", "min", "max"]
        while len(aggregates) < count:
            if numeric_pool:
                column = numeric_pool[int(rng.integers(len(numeric_pool)))]
                func = functions[int(rng.integers(len(functions)))]
                candidate = f"{func}({column})"
            else:
                candidate = "count(*)"
            if candidate in aggregates:
                candidate = f"min({numeric_pool[0]})" if numeric_pool else "count(*)"
            if candidate in aggregates:
                # Small column pools collide repeatedly; scan every
                # function/column combination before giving up.
                candidate = next(
                    (
                        f"{func}({column})"
                        for func in functions
                        for column in numeric_pool
                        if f"{func}({column})" not in aggregates
                    ),
                    None,
                )
                if candidate is None:
                    break
            aggregates.append(candidate)
        return aggregates[:count]

    def _plain_columns(
        self, relations: list[_Relation], rng: np.random.Generator
    ) -> list[str]:
        pool = [
            f"{r.alias}.{c['name']}" for r in relations for c in r.table.columns
        ]
        take = min(len(pool), int(rng.integers(2, 5)))
        picked = rng.choice(len(pool), size=take, replace=False)
        return [pool[i] for i in sorted(picked)]

    def _complex_scalar(
        self,
        relations: list[_Relation],
        rng: np.random.Generator,
        group_column: str | None,
    ) -> str:
        if group_column is not None:
            # Must stay a function of the grouped column.
            return (
                f"CASE WHEN length(CAST({group_column} AS text)) > 5 "
                f"THEN upper(CAST({group_column} AS text)) "
                f"ELSE lower(CAST({group_column} AS text)) END"
            )
        relation = relations[0]
        numeric = relation.table.numeric_columns
        if numeric:
            column = f"{relation.alias}.{numeric[0]['name']}"
            return f"round(abs({column}) * 1.07 + 1.0, 2)"
        column = f"{relation.alias}.{relation.table.columns[0]['name']}"
        return f"upper(CAST({column} AS text)) || '_tag'"

    # -- predicates --------------------------------------------------------------

    def _build_predicates(
        self,
        relations: list[_Relation],
        rng: np.random.Generator,
        budget: "_PlaceholderBudget",
        reserve: int,
    ) -> list[str]:
        parts: list[str] = []
        while budget.remaining > reserve:
            parts.append(self._simple_predicate(relations, rng, budget))
        return parts

    def _simple_predicate(
        self,
        relations: list[_Relation],
        rng: np.random.Generator,
        budget: "_PlaceholderBudget",
    ) -> str:
        name = budget.take()
        relation = relations[int(rng.integers(len(relations)))]
        numeric = [
            c for c in relation.table.numeric_columns
        ]
        text = relation.table.text_columns
        use_text = bool(text) and (not numeric or rng.random() < 0.25)
        if use_text:
            column = text[int(rng.integers(len(text)))]
            return f"{relation.alias}.{column['name']} = {{{name}}}"
        if not numeric:
            column = relation.table.columns[0]
            return f"{relation.alias}.{column['name']} = {{{name}}}"
        column = numeric[int(rng.integers(len(numeric)))]
        op = ["<", ">", "<=", ">="][int(rng.integers(4))]
        return f"{relation.alias}.{column['name']} {op} {{{name}}}"

    def _build_subquery_predicate(
        self,
        model: SchemaModel,
        relations: list[_Relation],
        rng: np.random.Generator,
        budget: "_PlaceholderBudget",
        restrict_to_placed: bool = False,
    ) -> str:
        placed_tables = {r.table.name for r in relations}
        edges = model.edges_touching(placed_tables)
        if restrict_to_placed:
            edges = [
                e
                for e in edges
                if e["table"] in placed_tables and e["ref_table"] in placed_tables
            ]
        inner_filter = ""
        for edge in edges:
            if edge["table"] in placed_tables:
                outer_alias = next(
                    r.alias for r in relations if r.table.name == edge["table"]
                )
                outer_col, inner_table, inner_col = (
                    edge["column"], edge["ref_table"], edge["ref_column"],
                )
            elif edge["ref_table"] in placed_tables:
                outer_alias = next(
                    r.alias for r in relations if r.table.name == edge["ref_table"]
                )
                outer_col, inner_table, inner_col = (
                    edge["ref_column"], edge["table"], edge["column"],
                )
            else:
                continue
            inner = model.table(inner_table)
            numeric = [c for c in inner.numeric_columns if c["name"] != inner_col]
            if numeric and budget.remaining > 0:
                column = numeric[int(rng.integers(len(numeric)))]
                inner_filter = f" WHERE {column['name']} > {{{budget.take()}}}"
            return (
                f"{outer_alias}.{outer_col} IN "
                f"(SELECT {inner_col} FROM {inner_table}{inner_filter})"
            )
        # No join edge available: nested aggregate comparison on own table.
        relation = relations[0]
        numeric = relation.table.numeric_columns
        column = (numeric or relation.table.columns)[0]["name"]
        comparison = (
            f" * 2 > {{{budget.take()}}}" if budget.remaining > 0 else " > 0"
        )
        return (
            f"{relation.alias}.{column} + "
            f"(SELECT min({column}) FROM {relation.table.name}){comparison}"
        )


    def _append_union_branch(
        self, sql: str, relations: list[_Relation], rng: np.random.Generator
    ) -> str:
        """Duplicate the query as a UNION ALL branch with a constant filter.

        The branch reuses the same select list and FROM clause (so column
        counts and types line up) and swaps the predicates for one constant
        comparison, keeping the placeholder count unchanged."""
        statement = parse_select(sql)
        branch = parse_select(sql)
        relation = relations[int(rng.integers(len(relations)))]
        # A raw numeric literal cannot compare against a DATE column, so the
        # constant filter draws from non-date numeric columns only.
        numeric = [
            c
            for c in relation.table.numeric_columns
            if c.get("type") != "date" and c.get("min") is not None
        ]
        if numeric:
            column = numeric[int(rng.integers(len(numeric)))]
            low = float(column.get("min") or 0.0)
            high = float(column.get("max") or 1.0)
            cut = low + (high - low) * 0.5
            constant = ast.BinaryOp(
                "<",
                ast.ColumnRef(column=column["name"], table=relation.alias),
                ast.Literal(round(cut, 4)),
            )
        else:
            constant = ast.BinaryOp("=", ast.Literal(1), ast.Literal(1))
        branch.where = constant
        branch.order_by = []
        branch.limit = None
        branch.offset = None
        statement.order_by = []
        statement.limit = None
        statement.offset = None
        return (
            f"{render_statement(statement)} UNION ALL {render_statement(branch)}"
        )


class _PlaceholderBudget:
    """Doles out sequential placeholder names up to a fixed count."""

    def __init__(self, total: int):
        self.total = max(int(total), 0)
        self._used = 0

    @property
    def remaining(self) -> int:
        return self.total - self._used

    def take(self) -> str:
        self._used += 1
        return f"p_{self._used}"


def _insert_conjunct(sql: str, conjunct: str) -> str:
    """Add a conjunct to a statement's WHERE clause (creating one if absent)."""
    statement = parse_select(sql)
    extra = parse_select(f"SELECT 1 FROM x WHERE {conjunct}").where
    if statement.where is None:
        statement.where = extra
    else:
        statement.where = ast.BinaryOp("and", statement.where, extra)
    return render_statement(statement)
