"""Observability: structured tracing, metrics, and event export.

A dependency-free layer threaded through the whole SQLBarber pipeline.  The
paper's evaluation is about where time, LLM tokens, and engine calls go;
this package makes every run answer that directly:

* :class:`Tracer` / :class:`Span` — nested timed spans with attributes and
  error capture, forming a run-scoped trace tree;
* :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms;
* sinks — :class:`InMemoryCollector`, :class:`JsonlSink`,
  :class:`LoggingSink`;
* :class:`Telemetry` — the per-run bundle, installed as ambient context via
  :func:`use_telemetry` and read by instrumented code via :func:`current`.

See DESIGN.md ("Observability") for the span and metric naming scheme.
"""

from .events import EventBus, ProgressRenderer, event_fingerprint
from .logging_setup import setup_logging
from .metrics import (
    DEFAULT_SECONDS_BUCKETS,
    Histogram,
    MetricsRegistry,
    metric_key,
)
from .profile import (
    ExecProfileCollector,
    OperatorProfile,
    ProfileRun,
    capture_profile,
    render_profile,
)
from .quantiles import QuantileSketch
from .report import (
    governor_rows,
    latency_rows,
    operator_rows,
    render_perf_report,
    render_perf_report_file,
    render_report,
    render_report_file,
    split_events,
    stage_rows,
    task_rows,
)
from .sinks import InMemoryCollector, JsonlSink, LoggingSink, read_events
from .telemetry import NULL, NullTelemetry, Telemetry, current, use_telemetry
from .tracing import Span, Tracer

__all__ = [
    "DEFAULT_SECONDS_BUCKETS",
    "EventBus",
    "ExecProfileCollector",
    "Histogram",
    "InMemoryCollector",
    "JsonlSink",
    "LoggingSink",
    "MetricsRegistry",
    "NULL",
    "NullTelemetry",
    "OperatorProfile",
    "ProfileRun",
    "ProgressRenderer",
    "QuantileSketch",
    "Span",
    "Telemetry",
    "Tracer",
    "capture_profile",
    "current",
    "event_fingerprint",
    "governor_rows",
    "latency_rows",
    "metric_key",
    "operator_rows",
    "read_events",
    "render_perf_report",
    "render_perf_report_file",
    "render_profile",
    "render_report",
    "render_report_file",
    "setup_logging",
    "split_events",
    "stage_rows",
    "task_rows",
    "use_telemetry",
]
