"""In-process event bus: structured pipeline progress, streamed live.

Spans describe a run *after the fact*; the event bus describes it *while it
happens*.  Instrumented code calls ``telemetry.event("stage_started",
stage="profile")`` and every subscriber — the JSONL trace sink, the
``repro generate --progress`` TTY renderer, a future serve layer — receives
the structured payload immediately.

Determinism contract: an event's *payload* is derived purely from pipeline
data (template ids, row counts, stage names), never from wall clocks or
worker identity; the envelope adds a monotonically increasing ``seq``.
Under parallel profiling the workers' telemetry facades suppress events and
the parent replays them in input order from the returned profiles, so the
fingerprinted stream (see :func:`event_fingerprint`) is bit-identical
serial vs parallel at any worker count.
"""

from __future__ import annotations

import sys
import threading

#: Envelope/payload keys that carry wall-clock or host-local values; the
#: fingerprint strips them so streams compare across runs and machines.
NONDETERMINISTIC_KEYS = frozenset(
    {"seconds", "duration_s", "start_s", "elapsed_seconds", "path",
     "self_seconds", "total_seconds", "p50", "p90", "p95", "p99",
     "min", "max", "mean", "sum"}
)


def event_fingerprint(events: list[dict]) -> list[dict]:
    """The deterministic projection of an event stream.

    Keeps ``event`` payloads only (spans and metrics snapshots have their
    own determinism stories) and strips wall-clock fields recursively.
    """
    return [
        _strip(event)
        for event in events
        if event.get("type") == "event"
    ]


def _strip(value):
    if isinstance(value, dict):
        return {
            key: _strip(inner)
            for key, inner in value.items()
            if key not in NONDETERMINISTIC_KEYS
        }
    if isinstance(value, list):
        return [_strip(item) for item in value]
    return value


class EventBus:
    """Fan-out of event dicts to subscriber callables; thread-safe.

    A subscriber is any callable taking one event dict.  Subscriber errors
    are contained: a crashing progress renderer must not kill the pipeline,
    so exceptions are swallowed after detaching the offender.
    """

    def __init__(self, subscribers=()):
        self._lock = threading.Lock()
        self._subscribers: list = [s for s in subscribers if s is not None]

    def subscribe(self, subscriber) -> None:
        with self._lock:
            self._subscribers.append(subscriber)

    def unsubscribe(self, subscriber) -> None:
        with self._lock:
            if subscriber in self._subscribers:
                self._subscribers.remove(subscriber)

    def __len__(self) -> int:
        return len(self._subscribers)

    def publish(self, event: dict) -> None:
        with self._lock:
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            try:
                subscriber(event)
            except Exception:
                self.unsubscribe(subscriber)


class ProgressRenderer:
    """Line-based live progress for ``repro generate --progress``.

    Deliberately plain (one line per event, no cursor control) so it works
    on dumb terminals and in CI logs alike.  Subscribe its ``__call__`` to
    an :class:`EventBus`.
    """

    #: Events worth a line on a terminal (the rest stay in the trace).
    INTERESTING = frozenset(
        {"stage_started", "stage_finished", "template_profiled",
         "template_quarantined", "checkpoint_saved", "llm_retry",
         "cache_stats", "profile_summary"}
    )

    def __init__(self, stream=None, verbose: bool = False):
        self._stream = stream if stream is not None else sys.stderr
        self._verbose = verbose

    def __call__(self, event: dict) -> None:
        if event.get("type") != "event":
            return
        name = event.get("event", "")
        if not self._verbose and name not in self.INTERESTING:
            return
        line = self._format(name, event)
        if line:
            print(line, file=self._stream, flush=True)

    def _format(self, name: str, event: dict) -> str:
        if name == "stage_started":
            return f"[{event.get('stage', '?')}] started"
        if name == "stage_finished":
            seconds = event.get("seconds")
            suffix = f" in {seconds:.2f}s" if isinstance(seconds, (int, float)) else ""
            return f"[{event.get('stage', '?')}] finished{suffix}"
        if name == "template_profiled":
            return (
                f"  profiled {event.get('template_id', '?')}: "
                f"{event.get('queries', 0)} queries, "
                f"{event.get('errors', 0)} errors"
            )
        if name == "template_quarantined":
            return (
                f"  quarantined {event.get('template_id', '?')}: "
                f"{event.get('reason', '?')}"
            )
        if name == "checkpoint_saved":
            return (
                f"  checkpoint: {event.get('templates_done', '?')} template(s) done"
            )
        if name == "llm_retry":
            return (
                f"  retry {event.get('task', '?')} "
                f"attempt {event.get('attempt', '?')}: {event.get('error', '?')}"
            )
        if name == "cache_stats":
            return (
                f"  explain cache: {event.get('hits', 0)} hits / "
                f"{event.get('misses', 0)} misses"
            )
        if name == "profile_summary":
            return (
                f"  operator profile: {event.get('queries', 0)} queries across "
                f"{event.get('operators', 0)} operator type(s)"
            )
        # Verbose mode: render anything else generically.
        payload = {
            k: v for k, v in event.items()
            if k not in {"type", "event", "seq"}
        }
        body = " ".join(f"{k}={v}" for k, v in sorted(payload.items()))
        return f"  {name} {body}".rstrip()
