"""Process-wide logging configuration for the ``repro`` namespace.

All diagnostics flow through the ``repro.*`` logger hierarchy to stderr,
keeping stdout machine-clean for data (JSONL workloads, JSON summaries).
"""

from __future__ import annotations

import logging
import sys

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATEFMT = "%H:%M:%S"


class _StderrHandler(logging.StreamHandler):
    """StreamHandler that resolves ``sys.stderr`` at emit time, so stream
    redirection (pytest capture, shells) after setup keeps working."""

    def __init__(self):
        super().__init__(sys.stderr)

    @property
    def stream(self):
        return sys.stderr

    @stream.setter
    def stream(self, _value):
        pass


def setup_logging(level: str = "info", stream=None) -> logging.Logger:
    """Configure the root ``repro`` logger to *stream* (default stderr).

    Idempotent: repeated calls replace the handler this function installed
    rather than stacking duplicates, so tests and REPL sessions can call it
    freely.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(getattr(logging, str(level).upper(), logging.INFO))
    logger.propagate = False
    logger.handlers = [
        handler
        for handler in logger.handlers
        if not getattr(handler, "_repro_managed", False)
    ]
    handler = (
        logging.StreamHandler(stream) if stream is not None else _StderrHandler()
    )
    handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATEFMT))
    handler._repro_managed = True
    logger.addHandler(handler)
    return logger
