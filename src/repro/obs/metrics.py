"""Counters, gauges, and fixed-bucket histograms.

The registry is label-aware in the Prometheus style: a metric is identified
by a name plus a (possibly empty) label set, e.g. ``llm.calls{task=refine}``.
Histograms use fixed, pre-declared bucket boundaries with ``value <= edge``
(less-or-equal) semantics plus an overflow bucket, so percentile-ish
summaries can be derived without storing every observation.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from .quantiles import QuantileSketch

# Latency buckets (seconds): micro-benchmark floor to multi-second tail.
DEFAULT_SECONDS_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def metric_key(name: str, labels: dict) -> str:
    """Canonical flat key: ``name`` or ``name{k1=v1,k2=v2}`` (sorted)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


@dataclass
class Histogram:
    """Fixed-bucket histogram: counts[i] is observations <= buckets[i];
    counts[-1] is the overflow bucket.

    Every observation also feeds a companion :class:`QuantileSketch`, so
    snapshots report p50/p90/p95/p99 alongside the bucket counts — the
    fixed edges answer "how many were slower than X", the sketch answers
    "how slow was the tail", and both merge commutatively across workers.
    """

    buckets: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS
    counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min_value: float | None = None
    max_value: float | None = None
    sketch: QuantileSketch = field(default_factory=QuantileSketch)

    def __post_init__(self):
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        self.sketch.observe(max(value, 0.0))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold *other*'s observations into this histogram (same buckets)."""
        if other.buckets != self.buckets:
            raise ValueError("cannot merge histograms with different buckets")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.count += other.count
        self.total += other.total
        if other.min_value is not None and (
            self.min_value is None or other.min_value < self.min_value
        ):
            self.min_value = other.min_value
        if other.max_value is not None and (
            self.max_value is None or other.max_value > self.max_value
        ):
            self.max_value = other.max_value
        self.sketch.merge(other.sketch)

    def quantile(self, q: float) -> float | None:
        return self.sketch.quantile(q)

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min_value,
            "max": self.max_value,
            "p50": self.sketch.quantile(0.5),
            "p90": self.sketch.quantile(0.9),
            "p95": self.sketch.quantile(0.95),
            "p99": self.sketch.quantile(0.99),
            "buckets": [
                [edge, count]
                for edge, count in zip((*self.buckets, float("inf")), self.counts)
            ],
        }


class MetricsRegistry:
    """Holds every counter, gauge, and histogram of one telemetry scope."""

    def __init__(self):
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}
        self._histogram_buckets: dict[str, tuple[float, ...]] = {}

    # -- declaration -----------------------------------------------------------

    def declare_histogram(self, name: str, buckets: tuple[float, ...]) -> None:
        """Pre-declare bucket edges for *name* (else DEFAULT_SECONDS_BUCKETS)."""
        self._histogram_buckets[name] = tuple(sorted(buckets))

    # -- recording -------------------------------------------------------------

    def count(self, name: str, value: float = 1, **labels) -> None:
        key = metric_key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels) -> None:
        self._gauges[metric_key(name, labels)] = value

    def observe(self, name: str, value: float, **labels) -> None:
        key = metric_key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            buckets = self._histogram_buckets.get(name, DEFAULT_SECONDS_BUCKETS)
            histogram = self._histograms[key] = Histogram(buckets=buckets)
        histogram.observe(value)

    # -- reading ---------------------------------------------------------------

    def counter_value(self, name: str, **labels) -> float:
        return self._counters.get(metric_key(name, labels), 0)

    def total(self, name: str) -> float:
        """Sum of a counter across all label sets."""
        prefix = name + "{"
        return sum(
            value
            for key, value in self._counters.items()
            if key == name or key.startswith(prefix)
        )

    def max_gauge(self, name: str) -> float | None:
        """Largest value of a gauge across all label sets (None if unset).

        The peak-of-peaks reading: ``governor.peak_bytes`` is recorded per
        template, and the interesting stage-level number is the maximum.
        """
        prefix = name + "{"
        values = [
            value
            for key, value in self._gauges.items()
            if key == name or key.startswith(prefix)
        ]
        return max(values) if values else None

    def histogram(self, name: str, **labels) -> Histogram | None:
        return self._histograms.get(metric_key(name, labels))

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other* into this registry: counters and histogram
        observations add; gauges take *other*'s value (last write wins,
        matching sequential recording order)."""
        for key, value in other._counters.items():
            self._counters[key] = self._counters.get(key, 0) + value
        self._gauges.update(other._gauges)
        for key, histogram in other._histograms.items():
            mine = self._histograms.get(key)
            if mine is None:
                self._histograms[key] = merged = Histogram(buckets=histogram.buckets)
                merged.merge(histogram)
            else:
                mine.merge(histogram)

    def snapshot(self) -> dict:
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {
                key: hist.snapshot()
                for key, hist in sorted(self._histograms.items())
            },
        }
