"""Operator-level executor profiling: plan-shaped, deterministic, mergeable.

When armed (``Telemetry(profile=True)``, or :func:`capture_profile` for a
single statement), every executed plan operator records its output rows,
invocation count, and self/cumulative wall time into an
:class:`OperatorProfile` tree that mirrors the plan — the engine's
``EXPLAIN PROFILE``.  Per-query trees are folded into an
:class:`ExecProfileCollector`, which aggregates them two ways:

* **per plan shape** — trees with the same operator signature merge, so ten
  thousand bindings of one template collapse into one tree with summed rows
  and times;
* **per operator type** — calls, rows, total self time, and a
  :class:`~repro.obs.quantiles.QuantileSketch` of per-invocation self
  times, giving p50/p95/p99 per operator.

Determinism contract: wall times are measurements and vary run to run, but
everything else — tree shapes, row counts, batch counts, query counts — is
a pure function of the executed statements.  :meth:`fingerprint` strips
the timing fields, and both aggregations are keyed and commutative, so the
fingerprint is bit-identical serial vs parallel at any worker count and
across kill/resume (the collector state rides in checkpoints).

The unarmed path costs nothing: the executor reads one context variable
per operator boundary (alongside the governor's), and no per-row callable
ever enters the hot loop.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

from .quantiles import QuantileSketch

#: Timing keys stripped from fingerprints (wall-clock, not semantic).
_TIMING_KEYS = frozenset(
    {"self_seconds", "total_seconds", "seconds", "min", "max",
     "p50", "p90", "p95", "p99"}
)


@dataclass
class OperatorProfile:
    """One plan operator's measured behaviour (possibly over many queries)."""

    node_type: str
    detail: str = ""
    est_rows: float = 0.0
    rows_out: int = 0
    batches: int = 0  # operator invocations folded into this node
    self_seconds: float = 0.0
    total_seconds: float = 0.0
    children: list["OperatorProfile"] = field(default_factory=list)

    def signature(self) -> tuple:
        """The operator subtree's shape — what aggregation keys on."""
        return (
            self.node_type,
            self.detail,
            round(self.est_rows, 6),
            tuple(child.signature() for child in self.children),
        )

    def finalize(self) -> None:
        """Compute self time = total minus children (clamped at zero)."""
        child_total = 0.0
        for child in self.children:
            child.finalize()
            child_total += child.total_seconds
        self.self_seconds = max(self.total_seconds - child_total, 0.0)

    def merge(self, other: "OperatorProfile") -> None:
        """Fold a same-shaped tree in (callers guarantee equal signatures)."""
        self.rows_out += other.rows_out
        self.batches += other.batches
        self.self_seconds += other.self_seconds
        self.total_seconds += other.total_seconds
        for mine, theirs in zip(self.children, other.children):
            mine.merge(theirs)

    def to_dict(self) -> dict:
        return {
            "operator": self.node_type,
            "detail": self.detail,
            "est_rows": self.est_rows,
            "rows_out": self.rows_out,
            "batches": self.batches,
            "self_seconds": round(self.self_seconds, 6),
            "total_seconds": round(self.total_seconds, 6),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "OperatorProfile":
        return cls(
            node_type=payload["operator"],
            detail=payload.get("detail", ""),
            est_rows=float(payload.get("est_rows", 0.0)),
            rows_out=int(payload.get("rows_out", 0)),
            batches=int(payload.get("batches", 0)),
            self_seconds=float(payload.get("self_seconds", 0.0)),
            total_seconds=float(payload.get("total_seconds", 0.0)),
            children=[cls.from_dict(c) for c in payload.get("children", [])],
        )

    def iter_nodes(self):
        yield self
        for child in self.children:
            yield from child.iter_nodes()


class ProfileRun:
    """Builds the operator tree(s) of one executed statement.

    Uncorrelated subqueries execute before the main plan root and become
    separate roots, in execution order; the main plan's root is last.
    """

    __slots__ = ("roots", "_stack", "clock")

    def __init__(self, clock=time.perf_counter):
        self.roots: list[OperatorProfile] = []
        self._stack: list[OperatorProfile] = []
        self.clock = clock

    def enter(self, node) -> tuple[OperatorProfile, float]:
        """Open a profile node for *node* (a plan node); returns (op, t0)."""
        profile = OperatorProfile(
            node_type=node.node_type,
            detail=node.describe(),
            est_rows=float(node.est_rows),
        )
        if self._stack:
            self._stack[-1].children.append(profile)
        else:
            self.roots.append(profile)
        self._stack.append(profile)
        return profile, self.clock()

    def exit(
        self, profile: OperatorProfile, started: float, rows: int, batches: int = 1
    ) -> None:
        profile.total_seconds += self.clock() - started
        profile.rows_out += rows
        # The row executor materializes once per operator (batches=1); the
        # vectorized executor reports how many output batches it emitted.
        profile.batches += batches
        self._stack.pop()

    def finalize(self) -> list[OperatorProfile]:
        for root in self.roots:
            root.finalize()
        return self.roots


def render_profile(roots: list[OperatorProfile] | OperatorProfile) -> str:
    """``EXPLAIN PROFILE``-style text for one query's operator tree(s)."""
    if isinstance(roots, OperatorProfile):
        roots = [roots]
    lines: list[str] = []
    # Main plan first, subquery roots after (they executed first but read
    # better below the plan, like EXPLAIN's SubPlan sections).
    ordered = roots[-1:] + roots[:-1] if roots else []
    for index, root in enumerate(ordered):
        if index:
            lines.append(f"  SubPlan {index}")
        _render_node(root, lines, depth=2 if index else 0)
    return "\n".join(lines)


def _render_node(node: OperatorProfile, lines: list[str], depth: int) -> None:
    indent = "  " * depth
    detail = f" {node.detail}" if node.detail else ""
    lines.append(
        f"{indent}{node.node_type}{detail}  "
        f"(est_rows={max(round(node.est_rows), 0)} rows={node.rows_out} "
        f"batches={node.batches} self={node.self_seconds * 1e3:.3f}ms "
        f"total={node.total_seconds * 1e3:.3f}ms)"
    )
    for child in node.children:
        _render_node(child, lines, depth + 1)


class ExecProfileCollector:
    """Aggregates per-query operator trees; thread-safe and mergeable."""

    def __init__(self):
        self._lock = threading.Lock()
        self._queries = 0
        # signature -> (merged tree, query count); insertion order is
        # irrelevant — snapshots sort by signature.
        self._trees: dict[tuple, tuple[OperatorProfile, int]] = {}
        self._operators: dict[str, dict] = {}

    # -- pickling (process-backend transport; locks do not travel) -------------

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- recording ------------------------------------------------------------

    def record(self, roots: list[OperatorProfile]) -> None:
        """Fold one executed query's finalized tree(s) into the aggregate.

        Multi-root queries (uncorrelated subplans) are combined into one
        synthetic ``Query`` tree *before* keying, so a checkpoint-restored
        collector (whose state stores one tree per plan) aggregates new
        occurrences under the same key as an uninterrupted run.
        """
        if not roots:
            return
        tree = roots[0] if len(roots) == 1 else _combine_roots(roots)
        signature = tree.signature()
        with self._lock:
            self._queries += 1
            entry = self._trees.get(signature)
            if entry is None:
                self._trees[signature] = (tree, 1)
            else:
                mine, count = entry
                mine.merge(tree)
                self._trees[signature] = (mine, count + 1)
            for root in roots:
                for node in root.iter_nodes():
                    self._observe_operator(node)

    def _observe_operator(self, node: OperatorProfile) -> None:
        agg = self._operators.get(node.node_type)
        if agg is None:
            agg = self._operators[node.node_type] = {
                "calls": 0,
                "rows": 0,
                "self_seconds": 0.0,
                "sketch": QuantileSketch(),
            }
        agg["calls"] += node.batches
        agg["rows"] += node.rows_out
        agg["self_seconds"] += node.self_seconds
        agg["sketch"].observe(node.self_seconds)

    # -- merging (parallel workers, checkpoint restore) -----------------------

    def merge(self, other: "ExecProfileCollector") -> None:
        with self._lock:
            self._queries += other._queries
            for signature, (tree, count) in other._trees.items():
                entry = self._trees.get(signature)
                if entry is None:
                    self._trees[signature] = (tree, count)
                else:
                    mine, mine_count = entry
                    mine.merge(tree)
                    self._trees[signature] = (mine, mine_count + count)
            for op, agg in other._operators.items():
                mine = self._operators.get(op)
                if mine is None:
                    self._operators[op] = agg
                else:
                    mine["calls"] += agg["calls"]
                    mine["rows"] += agg["rows"]
                    mine["self_seconds"] += agg["self_seconds"]
                    mine["sketch"].merge(agg["sketch"])

    # -- reading ---------------------------------------------------------------

    @property
    def queries(self) -> int:
        return self._queries

    def snapshot(self) -> dict:
        """Deterministically ordered aggregate (timings included)."""
        with self._lock:
            operators = {}
            for op in sorted(self._operators):
                agg = self._operators[op]
                sketch = agg["sketch"].snapshot()
                operators[op] = {
                    "calls": agg["calls"],
                    "rows": agg["rows"],
                    "self_seconds": round(agg["self_seconds"], 6),
                    "p50": sketch["p50"],
                    "p95": sketch["p95"],
                    "p99": sketch["p99"],
                }
            plans = [
                {"queries": count, "plan": tree.to_dict()}
                for _, (tree, count) in sorted(
                    self._trees.items(), key=lambda item: repr(item[0])
                )
            ]
            return {
                "queries": self._queries,
                "operators": operators,
                "plans": plans,
            }

    def fingerprint(self) -> dict:
        """The snapshot minus wall-clock fields — the determinism surface."""
        return _strip_timings(self.snapshot())

    # -- checkpoint transport ---------------------------------------------------

    def to_state(self) -> dict:
        return self.snapshot()

    @classmethod
    def from_state(cls, state: dict) -> "ExecProfileCollector":
        collector = cls()
        collector._queries = int(state.get("queries", 0))
        for entry in state.get("plans", []):
            tree = OperatorProfile.from_dict(entry["plan"])
            collector._trees[tree.signature()] = (tree, int(entry["queries"]))
        for op, agg in state.get("operators", {}).items():
            sketch = QuantileSketch()
            # Per-invocation samples cannot be reconstructed from a summary;
            # seed the sketch with the mean so counts stay exact and the
            # post-restore stream dominates the percentiles.
            calls = int(agg["calls"])
            mean = (agg["self_seconds"] / calls) if calls else 0.0
            for _ in range(calls):
                sketch.observe(mean)
            collector._operators[op] = {
                "calls": calls,
                "rows": int(agg["rows"]),
                "self_seconds": float(agg["self_seconds"]),
                "sketch": sketch,
            }
        return collector


def _combine_roots(roots: list[OperatorProfile]) -> OperatorProfile:
    """Wrap a multi-root query (subplans) in one synthetic Query node."""
    total = sum(root.total_seconds for root in roots)
    return OperatorProfile(
        node_type="Query",
        est_rows=roots[-1].est_rows,
        rows_out=roots[-1].rows_out,
        batches=1,
        total_seconds=total,
        children=list(roots),
    )


def _strip_timings(value):
    if isinstance(value, dict):
        return {
            key: _strip_timings(inner)
            for key, inner in value.items()
            if key not in _TIMING_KEYS
        }
    if isinstance(value, list):
        return [_strip_timings(item) for item in value]
    return value


# -- the ambient arming points (read by the executor) --------------------------

#: The in-flight ProfileRun of the current statement (nested execute()
#: calls — subqueries, UNION branches — join it instead of starting anew).
ACTIVE_RUN: ContextVar = ContextVar("repro_obs_profile_run", default=None)

#: A single-statement capture target that outranks the telemetry collector.
_CAPTURE: ContextVar = ContextVar("repro_obs_profile_capture", default=None)


class _Capture:
    """Holds the profile of the one statement executed under capture."""

    def __init__(self):
        self.roots: list[OperatorProfile] | None = None

    def record(self, roots: list[OperatorProfile]) -> None:
        self.roots = roots

    @property
    def profile(self) -> OperatorProfile | None:
        """The main plan's tree (the last root; subqueries precede it)."""
        return self.roots[-1] if self.roots else None

    def render(self) -> str:
        return render_profile(self.roots or [])


def capture_target():
    """Where the executor should record profiles, or None when unarmed."""
    capture = _CAPTURE.get()
    if capture is not None:
        return capture
    from .telemetry import current

    return current().profiler


@contextmanager
def capture_profile():
    """Arm single-statement profiling for the enclosed block.

    Yields a capture whose ``.profile`` / ``.render()`` expose the operator
    tree of the (last) statement executed inside the block.
    """
    capture = _Capture()
    token = _CAPTURE.set(capture)
    try:
        yield capture
    finally:
        _CAPTURE.reset(token)
