"""Streaming quantile sketches: exact-enough p50/p95/p99, deterministically.

Fixed-bucket histograms answer "how many observations fell below X" for a
handful of pre-declared edges; tail-latency reporting needs *quantiles*,
and the pipeline's determinism bar needs them to be reproducible across
worker counts.  :class:`QuantileSketch` is a dependency-free, DDSketch-
flavoured sketch built for exactly that:

* values map to geometric buckets ``index = ceil(log_gamma(value))`` with
  ``gamma = (1 + alpha) / (1 - alpha)``, so every quantile estimate carries
  a bounded *relative* error ``alpha`` (1% by default) — tight enough to
  tell a 5 ms p99 from a 10 ms one at any magnitude;
* the state is just integer counts per bucket, so :meth:`merge` is a
  commutative, associative fold: any partitioning of one value stream
  across any number of workers, merged in any order, reproduces the serial
  sketch **bit-identically** (floats never accumulate in arrival order);
* memory is bounded by the dynamic range of the data (one bucket per ~1%
  step), not by the observation count.

The snapshot deliberately exposes only order-insensitive fields (integer
count, exact min/max, bucket-derived quantiles); a float running sum would
re-introduce arrival-order sensitivity through non-associative addition.
"""

from __future__ import annotations

import math

#: Values at or below this are folded into the zero bucket: latencies this
#: small are clock noise, and log() needs a positive floor.
MIN_TRACKABLE = 1e-12

#: Quantiles reported by :meth:`QuantileSketch.snapshot`.
SNAPSHOT_QUANTILES = (0.5, 0.9, 0.95, 0.99)


class QuantileSketch:
    """Mergeable log-bucket quantile sketch with bounded relative error."""

    __slots__ = (
        "relative_accuracy",
        "_gamma",
        "_log_gamma",
        "_buckets",
        "_zero_count",
        "count",
        "min_value",
        "max_value",
    )

    def __init__(self, relative_accuracy: float = 0.01):
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError(
                f"relative_accuracy must be in (0, 1), got {relative_accuracy}"
            )
        self.relative_accuracy = relative_accuracy
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        self._buckets: dict[int, int] = {}
        self._zero_count = 0
        self.count = 0
        self.min_value: float | None = None
        self.max_value: float | None = None

    # -- pickling (``__slots__`` only, no ``__dict__``) -----------------------

    def __getstate__(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)

    # -- recording ------------------------------------------------------------

    def observe(self, value: float) -> None:
        value = float(value)
        if value < 0.0:
            raise ValueError(f"QuantileSketch tracks non-negative values, got {value}")
        self.count += 1
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        if value <= MIN_TRACKABLE:
            self._zero_count += 1
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    # -- merging ---------------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> None:
        """Fold *other* in; commutative and associative by construction."""
        if other.relative_accuracy != self.relative_accuracy:
            raise ValueError(
                "cannot merge sketches with different relative accuracies "
                f"({self.relative_accuracy} vs {other.relative_accuracy})"
            )
        for index, bucket_count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + bucket_count
        self._zero_count += other._zero_count
        self.count += other.count
        if other.min_value is not None and (
            self.min_value is None or other.min_value < self.min_value
        ):
            self.min_value = other.min_value
        if other.max_value is not None and (
            self.max_value is None or other.max_value > self.max_value
        ):
            self.max_value = other.max_value

    # -- reading ---------------------------------------------------------------

    def quantile(self, q: float) -> float | None:
        """The value at quantile *q* in [0, 1], or None when empty.

        Exact at the extremes (min/max are tracked exactly); elsewhere the
        bucket midpoint, within ``relative_accuracy`` of the true value.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        rank = min(max(int(math.ceil(q * self.count)), 1), self.count)
        seen = self._zero_count
        if seen >= rank:
            return max(0.0, self.min_value)
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                # Bucket (gamma^(i-1), gamma^i]; midpoint minimizes the
                # worst-case relative error.
                value = 2.0 * self._gamma**index / (self._gamma + 1.0)
                return min(max(value, self.min_value), self.max_value)
        return self.max_value  # pragma: no cover — seen always reaches count

    def snapshot(self) -> dict:
        """Order-insensitive summary: identical for any merge schedule."""
        summary = {
            "count": self.count,
            "min": self.min_value,
            "max": self.max_value,
        }
        for q in SNAPSHOT_QUANTILES:
            summary[f"p{round(q * 100):d}"] = self.quantile(q)
        return summary
