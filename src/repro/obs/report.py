"""Offline trace analysis: the ``repro trace-report`` implementation.

Consumes a JSONL trace file written by :class:`~repro.obs.sinks.JsonlSink`
and renders the paper-style breakdown — where time, LLM tokens, and engine
calls went, per pipeline stage and per LLM task.
"""

from __future__ import annotations

from .sinks import read_events

STAGE_PREFIX = "stage:"
ROOT_SPAN = "generate_workload"

# Substrate deltas the pipeline attaches to every stage span.
_STAGE_FIELDS = ("llm_calls", "llm_tokens", "db_calls")


def _format_table(rows: list[dict], title: str | None = None) -> str:
    if not rows:
        return "(no rows)"
    headers = list(rows[0].keys())
    widths = {
        h: max(len(str(h)), *(len(str(r.get(h, ""))) for r in rows))
        for h in headers
    }
    lines = [title] if title else []
    lines.append(" | ".join(f"{h:<{widths[h]}}" for h in headers))
    lines.append("-+-".join("-" * widths[h] for h in headers))
    for row in rows:
        lines.append(
            " | ".join(f"{str(row.get(h, '')):<{widths[h]}}" for h in headers)
        )
    return "\n".join(lines)


def split_events(events: list[dict]) -> tuple[list[dict], dict]:
    """Partition a trace into (span events, final metrics snapshot)."""
    spans = [e for e in events if e.get("type") == "span"]
    metrics: dict = {}
    for event in events:
        if event.get("type") == "metrics":
            metrics = event.get("metrics", {})
    return spans, metrics


def _stage_spans(spans: list[dict]) -> list[dict]:
    """The last run's stage spans (orphans accepted on degenerate traces)."""
    roots = [s for s in spans if s["name"] == ROOT_SPAN]
    if roots:
        root = roots[-1]
        return [
            s
            for s in spans
            if s.get("parent_id") == root["span_id"]
            and s["name"].startswith(STAGE_PREFIX)
        ]
    return [s for s in spans if s["name"].startswith(STAGE_PREFIX)]


def stage_rows(spans: list[dict]) -> list[dict]:
    """Per-stage breakdown rows from the stage spans of the last run."""
    stages = _stage_spans(spans)
    rows = []
    for span in stages:
        attrs = span.get("attributes", {})
        row = {
            "stage": span["name"][len(STAGE_PREFIX):],
            "seconds": round(span.get("duration_s", 0.0), 3),
        }
        for key in _STAGE_FIELDS:
            row[key] = int(attrs.get(key, 0))
        rows.append(row)
    if rows:
        total = {"stage": "total",
                 "seconds": round(sum(r["seconds"] for r in rows), 3)}
        for key in _STAGE_FIELDS:
            total[key] = sum(r[key] for r in rows)
        rows.append(total)
    return rows


def task_rows(metrics: dict) -> list[dict]:
    """Per-LLM-task call/token rows (the Table-2 shape) from the counters."""
    counters = metrics.get("counters", {})
    tasks: dict[str, dict] = {}

    def bucket(task: str) -> dict:
        return tasks.setdefault(
            task, {"task": task, "calls": 0, "prompt_tokens": 0,
                   "completion_tokens": 0}
        )

    for key, value in counters.items():
        for name, column in (
            ("llm.calls{task=", "calls"),
            ("llm.tokens.prompt{task=", "prompt_tokens"),
            ("llm.tokens.completion{task=", "completion_tokens"),
        ):
            if key.startswith(name):
                task = key[len(name):].rstrip("}")
                bucket(task)[column] += int(value)
    rows = sorted(tasks.values(), key=lambda r: -r["prompt_tokens"])
    if rows:
        rows.append({
            "task": "total",
            "calls": sum(r["calls"] for r in rows),
            "prompt_tokens": sum(r["prompt_tokens"] for r in rows),
            "completion_tokens": sum(r["completion_tokens"] for r in rows),
        })
    return rows


# Governor deltas attached to stage spans (only when non-zero, so traces
# from governor-free runs carry none of these keys).
_GOVERNOR_FIELDS = (
    ("governor_strikes", "strikes"),
    ("governor_cancellations", "cancellations"),
    ("governor_quarantines", "quarantines"),
)


def governor_rows(spans: list[dict]) -> list[dict]:
    """Per-stage resource-governance rows; empty when the governor never
    acted (the section is omitted entirely for such traces)."""
    rows = []
    for span in _stage_spans(spans):
        attrs = span.get("attributes", {})
        if not any(key.startswith("governor_") for key in attrs):
            continue
        row = {"stage": span["name"][len(STAGE_PREFIX):]}
        for key, column in _GOVERNOR_FIELDS:
            row[column] = int(attrs.get(key, 0))
        row["peak_bytes"] = int(attrs.get("governor_peak_bytes", 0))
        rows.append(row)
    return rows


def render_report(events: list[dict]) -> str:
    """The full human-readable report for one trace."""
    spans, metrics = split_events(events)
    sections: list[str] = []
    roots = [s for s in spans if s["name"] == ROOT_SPAN]
    if roots:
        root = roots[-1]
        sections.append(
            f"run: {ROOT_SPAN} elapsed={root.get('duration_s', 0.0):.3f}s "
            f"spans={len(spans)}"
        )
    rows = stage_rows(spans)
    if rows:
        sections.append(_format_table(rows, title="Per-stage breakdown"))
    else:
        sections.append("(no stage spans in trace)")
    tasks = task_rows(metrics)
    if tasks:
        sections.append(_format_table(tasks, title="LLM usage by task"))
    counters = metrics.get("counters", {})
    engine = {
        key: value
        for key, value in counters.items()
        if key.startswith("sqldb.")
    }
    if engine:
        sections.append(_format_table(
            [{"counter": k, "value": int(v)} for k, v in sorted(engine.items())],
            title="Engine counters",
        ))
    governor = governor_rows(spans)
    if governor:
        sections.append(_format_table(governor, title="Resource governance"))
    governor_counters = {
        key: value
        for key, value in counters.items()
        if key.startswith("governor.")
    }
    if governor_counters:
        sections.append(_format_table(
            [
                {"counter": k, "value": int(v)}
                for k, v in sorted(governor_counters.items())
            ],
            title="Governor counters",
        ))
    return "\n\n".join(sections)


def render_report_file(path: str) -> str:
    return render_report(read_events(path))


# -- perf report (the ``repro perf-report`` implementation) --------------------


def _quantile_columns(snapshot: dict) -> dict:
    columns = {}
    for q in ("p50", "p95", "p99"):
        value = snapshot.get(q)
        columns[q] = round(value, 6) if isinstance(value, (int, float)) else ""
    return columns


def latency_rows(metrics: dict) -> list[dict]:
    """Per-histogram tail-latency rows (p50/p95/p99) from the snapshot."""
    rows = []
    for key, snapshot in metrics.get("histograms", {}).items():
        rows.append({
            "metric": key,
            "count": snapshot.get("count", 0),
            "mean": round(snapshot.get("mean", 0.0), 6),
            **_quantile_columns(snapshot),
        })
    return rows


def perf_stage_rows(spans: list[dict]) -> list[dict]:
    """Per-stage timing rows — all runs in the trace, so resumed/chaos
    traces show every attempt's stages."""
    rows = []
    for span in spans:
        if not span["name"].startswith(STAGE_PREFIX):
            continue
        rows.append({
            "stage": span["name"][len(STAGE_PREFIX):],
            "seconds": round(span.get("duration_s", 0.0), 3),
        })
    return rows


def operator_rows(events: list[dict]) -> list[dict]:
    """Per-operator rows from the last ``profile`` record in the trace."""
    profile: dict = {}
    for event in events:
        if event.get("type") == "profile":
            profile = event.get("profile", {})
    rows = []
    for op, agg in profile.get("operators", {}).items():
        rows.append({
            "operator": op,
            "calls": agg.get("calls", 0),
            "rows": agg.get("rows", 0),
            "self_seconds": round(agg.get("self_seconds", 0.0), 6),
            **_quantile_columns(agg),
        })
    rows.sort(key=lambda r: (-r["self_seconds"], r["operator"]))
    return rows


def render_perf_report(events: list[dict]) -> str:
    """Tail-latency-centric view of a trace: per stage, per operator, and
    per latency histogram, with p50/p95/p99 where sketches exist."""
    spans, metrics = split_events(events)
    sections: list[str] = []
    stages = perf_stage_rows(spans)
    if stages:
        sections.append(_format_table(stages, title="Stage timings"))
    operators = operator_rows(events)
    if operators:
        sections.append(_format_table(
            operators, title="Operator profile (self time, seconds)"
        ))
    latencies = latency_rows(metrics)
    if latencies:
        sections.append(_format_table(
            latencies, title="Latency quantiles (seconds)"
        ))
    if not sections:
        return "(trace carries no stage spans, operator profile, or histograms)"
    return "\n\n".join(sections)


def render_perf_report_file(path: str) -> str:
    return render_perf_report(read_events(path))
