"""Telemetry sinks: where finished spans and final metrics go.

A sink is anything with ``emit(event: dict)`` and ``close()``.  Three are
shipped:

* :class:`InMemoryCollector` — keeps the raw event list (tests, notebooks);
* :class:`JsonlSink` — one JSON object per line, the export format consumed
  by ``repro trace-report``;
* :class:`LoggingSink` — human-readable lines through :mod:`logging`.
"""

from __future__ import annotations

import json
import logging


class InMemoryCollector:
    """Buffers every event in order; never drops anything."""

    def __init__(self):
        self.events: list[dict] = []
        self.closed = False

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def close(self) -> None:
        self.closed = True

    def spans(self) -> list[dict]:
        return [e for e in self.events if e.get("type") == "span"]

    def metrics(self) -> dict | None:
        for event in reversed(self.events):
            if event.get("type") == "metrics":
                return event["metrics"]
        return None


class JsonlSink:
    """Appends one JSON line per event to *path* (opened eagerly).

    Each record is written and flushed atomically with respect to process
    death: a chaos ``InjectedCrash`` or ``BudgetExhausted`` abort between
    events leaves the file ending on a complete line, never mid-record.
    Events are emitted at pipeline cadence (per stage/template, not per
    row), so the per-record flush is cheap relative to what it records.
    """

    def __init__(self, path: str):
        self.path = path
        self._handle = open(path, "w")

    def emit(self, event: dict) -> None:
        if self._handle.closed:
            return
        self._handle.write(json.dumps(event, default=str) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()


class LoggingSink:
    """Renders events as log records (default: DEBUG on ``repro.obs``)."""

    def __init__(self, logger: logging.Logger | None = None,
                 level: int = logging.DEBUG):
        self._logger = logger or logging.getLogger("repro.obs")
        self._level = level

    def emit(self, event: dict) -> None:
        if not self._logger.isEnabledFor(self._level):
            return
        if event.get("type") == "span":
            attrs = " ".join(
                f"{k}={v}" for k, v in event.get("attributes", {}).items()
            )
            error = event.get("error")
            suffix = f" error={error!r}" if error else ""
            self._logger.log(
                self._level,
                "span %s %.4fs %s%s",
                event["name"], event.get("duration_s", 0.0), attrs, suffix,
            )
        elif event.get("type") == "metrics":
            counters = event.get("metrics", {}).get("counters", {})
            self._logger.log(
                self._level, "metrics %s",
                " ".join(f"{k}={v}" for k, v in counters.items()),
            )
        else:
            self._logger.log(self._level, "event %s", event)

    def close(self) -> None:
        pass


def read_events(path: str) -> list[dict]:
    """Load a JSONL trace file back into a list of event dicts."""
    events: list[dict] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
