"""The telemetry facade and the ambient-telemetry runtime.

:class:`Telemetry` bundles one :class:`~repro.obs.tracing.Tracer` and one
:class:`~repro.obs.metrics.MetricsRegistry` with a list of sinks.  It is
installed as the *ambient* telemetry of a pipeline run with
:func:`use_telemetry`; instrumented code anywhere in the process (the LLM
client, the SQL engine) picks it up via :func:`current` without any
plumbing through constructors.

When nothing is installed, :func:`current` returns the :data:`NULL`
singleton whose every operation is a no-op — instrumentation costs one
context-variable read plus a no-op call on the default path, keeping the
uninstrumented-baseline overhead within noise.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar

from .events import EventBus
from .metrics import MetricsRegistry
from .tracing import Tracer


class _NullSpan:
    """Shared, reusable no-op stand-in for a Span context manager."""

    __slots__ = ()
    attributes: dict = {}
    error = None
    duration = 0.0

    def __enter__(self):
        return self

    def __exit__(self, _exc_type, _exc, _tb):
        return False

    def set(self, **_attributes) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """Telemetry that records nothing; every call is a cheap no-op."""

    enabled = False
    profiler = None

    def span(self, _name, **_attributes):
        return _NULL_SPAN

    def count(self, _name, _value=1, **_labels) -> None:
        pass

    def gauge(self, _name, _value, **_labels) -> None:
        pass

    def observe(self, _name, _value, **_labels) -> None:
        pass

    def event(self, _name, **_payload) -> None:
        pass

    def emit(self, _event) -> None:
        pass

    def finish(self) -> None:
        pass


NULL = NullTelemetry()


class Telemetry:
    """Tracer + metrics + sinks for one pipeline run."""

    enabled = True

    def __init__(self, sinks=(), profile: bool = False, subscribers=()):
        self.sinks = [sink for sink in sinks if sink is not None]
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(on_end=self._span_ended)
        self.bus = EventBus(subscribers)
        if profile:
            from .profile import ExecProfileCollector

            self.profiler = ExecProfileCollector()
        else:
            self.profiler = None
        self._event_seq = 0
        self._finished = False

    # -- tracing ---------------------------------------------------------------

    def span(self, name: str, **attributes):
        return self.tracer.span(name, **attributes)

    def _span_ended(self, span) -> None:
        if self.sinks:
            self.emit(span.to_event())

    # -- metrics ---------------------------------------------------------------

    def count(self, name: str, value: float = 1, **labels) -> None:
        self.metrics.count(name, value, **labels)

    def gauge(self, name: str, value: float, **labels) -> None:
        self.metrics.gauge(name, value, **labels)

    def observe(self, name: str, value: float, **labels) -> None:
        self.metrics.observe(name, value, **labels)

    # -- events ----------------------------------------------------------------

    def event(self, name: str, **payload) -> None:
        """Publish a structured progress event to sinks and subscribers.

        The payload must be derived from pipeline data, never wall clocks or
        worker identity (timing fields are tolerated — the stream
        fingerprint strips them; see :func:`~repro.obs.events.event_fingerprint`).
        """
        self._event_seq += 1
        event = {"type": "event", "event": name, "seq": self._event_seq, **payload}
        self.emit(event)
        self.bus.publish(event)

    # -- export ----------------------------------------------------------------

    def emit(self, event: dict) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def finish(self) -> None:
        """Emit the final metrics snapshot and close every sink (idempotent).

        When operator profiling is armed, the aggregated profile goes out
        first (as both a queryable ``profile`` record and a summary event).
        """
        if self._finished:
            return
        self._finished = True
        if self.profiler is not None:
            snapshot = self.profiler.snapshot()
            self.event(
                "profile_summary",
                queries=snapshot["queries"],
                operators=len(snapshot["operators"]),
            )
            self.emit({"type": "profile", "profile": snapshot})
        self.emit({"type": "metrics", "metrics": self.metrics.snapshot()})
        for sink in self.sinks:
            sink.close()


_ACTIVE: ContextVar = ContextVar("repro_obs_telemetry", default=NULL)


def current():
    """The ambient telemetry of the calling context (NULL when none)."""
    return _ACTIVE.get()


@contextmanager
def use_telemetry(telemetry):
    """Install *telemetry* as the ambient telemetry for the enclosed block."""
    token = _ACTIVE.set(telemetry)
    try:
        yield telemetry
    finally:
        _ACTIVE.reset(token)
