"""Structured tracing: nested timed spans with attributes and error capture.

A :class:`Tracer` produces a run-scoped tree of :class:`Span` objects.  Code
opens spans as context managers::

    with tracer.span("stage:profile", templates=4) as span:
        ...
        span.set(samples=120)

Span nesting follows the dynamic call structure (the innermost open span is
the parent of the next one opened).  An exception escaping a span is recorded
on it as ``error`` and re-raised, so a trace of a failed run still shows
where the failure happened.  Finished spans are handed to an ``on_end``
callback, which is how :class:`~repro.obs.telemetry.Telemetry` fans them out
to sinks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Span:
    """One timed operation in the trace tree."""

    name: str
    span_id: int
    parent_id: int | None
    start: float  # seconds since the tracer's epoch
    attributes: dict = field(default_factory=dict)
    end: float | None = None
    error: str | None = None
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Seconds from open to close (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def ok(self) -> bool:
        return self.error is None

    def set(self, **attributes) -> None:
        """Attach or overwrite attributes on the span."""
        self.attributes.update(attributes)

    def iter_subtree(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def to_event(self) -> dict:
        """The flat, JSON-serializable record exported to sinks."""
        return {
            "type": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": round(self.start, 6),
            "duration_s": round(self.duration, 6),
            "attributes": dict(self.attributes),
            "error": self.error,
        }


class _SpanContext:
    """Reusable-per-call context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if exc is not None and self._span.error is None:
            self._span.error = f"{exc_type.__name__}: {exc}"
        self._tracer._close(self._span)
        return False  # never swallow the exception


class Tracer:
    """Builds a tree of spans for one run.

    Not thread-safe: one tracer serves one pipeline run, which is
    single-threaded by construction.
    """

    def __init__(self, on_end=None, clock=time.perf_counter):
        self._clock = clock
        self._epoch = clock()
        self._on_end = on_end
        self._next_id = 1
        self._stack: list[Span] = []
        self.roots: list[Span] = []

    def span(self, name: str, **attributes) -> _SpanContext:
        """Open a span as a context manager; yields the :class:`Span`."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent.span_id if parent else None,
            start=self._clock() - self._epoch,
            attributes=dict(attributes),
        )
        self._next_id += 1
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    def _close(self, span: Span) -> None:
        span.end = self._clock() - self._epoch
        # Unwind to the closed span even if inner spans leaked (e.g. an
        # exception bypassed an inner __exit__ somehow): the trace stays sane.
        while self._stack:
            popped = self._stack.pop()
            if popped is span:
                break
        if self._on_end is not None:
            self._on_end(span)

    def iter_spans(self):
        """Yield every finished-or-open span, depth-first across roots."""
        for root in self.roots:
            yield from root.iter_subtree()

    def find(self, name: str) -> list[Span]:
        """All spans with exactly this name."""
        return [s for s in self.iter_spans() if s.name == name]
