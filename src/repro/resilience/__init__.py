"""repro.resilience: surviving an unreliable LLM API and killed processes.

Three layers, composable and individually usable:

* :mod:`~repro.resilience.client` — :class:`ResilientLLMClient`: retry with
  backoff + jitter, per-task circuit breakers, deadline propagation, and
  hard token/dollar budgets around any :class:`~repro.llm.client.LLMClient`.
* :mod:`~repro.resilience.checkpoint` — atomic, content-hashed run
  checkpoints that make ``SQLBarber.generate_workload`` resumable
  bit-identically after a crash or budget exhaustion.
* :mod:`~repro.resilience.chaos` — a seeded chaos campaign that runs the
  full pipeline under transport-fault storms and process kills, asserting
  every run either completes or leaves a valid, resumable checkpoint.
"""

from .checkpoint import (
    CheckpointError,
    CheckpointManager,
    canonical_json,
    content_hash,
    run_key,
    to_jsonable,
)
from .chaos import ChaosReport, ChaosRunner, InjectedCrash, run_chaos_campaign
from .clock import Clock, SimulatedClock, SystemClock
from .lock import DirectoryLock, LockError, LockHeld
from .client import (
    CircuitBreaker,
    CircuitBreakerPolicy,
    ResilientLLMClient,
    RetryPolicy,
    default_response_validator,
)

__all__ = [
    "ChaosReport",
    "ChaosRunner",
    "CheckpointError",
    "CheckpointManager",
    "CircuitBreaker",
    "CircuitBreakerPolicy",
    "Clock",
    "DirectoryLock",
    "InjectedCrash",
    "LockError",
    "LockHeld",
    "ResilientLLMClient",
    "RetryPolicy",
    "SimulatedClock",
    "SystemClock",
    "canonical_json",
    "content_hash",
    "default_response_validator",
    "run_chaos_campaign",
    "run_key",
    "to_jsonable",
]
