"""Chaos campaigns: the full pipeline under seeded fault storms and kills.

Every campaign run drives ``SQLBarber.generate_workload`` end to end on a
small database while one of three deterministic disruptions plays out:

* ``storm`` — a transport-fault storm (timeouts, 429s, 5xx, truncation,
  garbage payloads) rages for the whole run.
* ``kill`` — the same storm, plus the process "dies" (an
  :class:`InjectedCrash` raised from the checkpoint save hook) right after
  its k-th checkpoint reaches disk; the run is then resumed and must
  fingerprint identically to an uninterrupted control run.
* ``budget`` — a hard token ceiling is set low enough to trip mid-run;
  the run must degrade into a partial-but-valid aborted result.
* ``engine`` — the faults move from the transport to the query engine: a
  seeded :class:`~repro.governor.EngineFaultModel` storm (slow operators,
  transient storage errors, spurious cancellations) plus tight governor
  limits, on a planted template pool containing a pathological cross join.
  The runaway template must end the run quarantined, the run must not
  abort, and — because the governor runs on a simulated clock and costs
  are ``actual_rows`` — two invocations must fingerprint identically.

The acceptance bar mirrors ``repro.fuzz``: a campaign's report is a pure
function of ``(seed, runs, intensity, scenario)`` — byte-identical JSON
across repeats, no timestamps, no filesystem paths — and a campaign
*passes* when every run either completed, aborted gracefully, or resumed
bit-identically after its kill.  A stack trace escaping the pipeline is a
failure.
"""

from __future__ import annotations

import json
import shutil
import tempfile
from dataclasses import dataclass, field

import numpy as np

from repro.governor import EngineFaultModel
from repro.llm import SimulatedLLM, TransportFaultModel
from repro.obs import Telemetry, current as current_telemetry, use_telemetry

from .client import CircuitBreakerPolicy, ResilientLLMClient, RetryPolicy
from .clock import SimulatedClock

SCENARIOS = ("storm", "kill", "budget", "engine")


class InjectedCrash(BaseException):
    """Simulated process death (raised from the checkpoint save hook).

    Deliberately *not* an :class:`Exception` subclass: nothing in the
    pipeline may catch it, exactly like a SIGKILL.
    """


@dataclass
class ChaosReport:
    """Deterministic summary of one chaos campaign."""

    seed: int
    runs: int
    intensity: float
    database: str
    scenarios: dict = field(default_factory=dict)  # scenario -> run count
    completed: int = 0
    aborted: int = 0
    kills_fired: int = 0
    resumed_identical: int = 0
    transport_faults_injected: int = 0
    retry_attempts: int = 0
    quarantines: int = 0
    engine_faults_injected: int = 0
    engine_runs_identical: int = 0
    scenario_filter: str | None = None
    mismatches: list = field(default_factory=list)  # resume != control
    failures: list = field(default_factory=list)  # unhandled exceptions

    @property
    def ok(self) -> bool:
        return not self.failures and not self.mismatches

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "runs": self.runs,
            "intensity": self.intensity,
            "database": self.database,
            "scenarios": dict(sorted(self.scenarios.items())),
            "completed": self.completed,
            "aborted": self.aborted,
            "kills_fired": self.kills_fired,
            "resumed_identical": self.resumed_identical,
            "transport_faults_injected": self.transport_faults_injected,
            "retry_attempts": self.retry_attempts,
            "quarantines": self.quarantines,
            "engine_faults_injected": self.engine_faults_injected,
            "engine_runs_identical": self.engine_runs_identical,
            "scenario_filter": self.scenario_filter,
            "mismatches": list(self.mismatches),
            "failures": list(self.failures),
            "ok": self.ok,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


@dataclass(frozen=True)
class _RunPlan:
    """Everything one chaos run needs, drawn up front so the control run,
    the killed run, and the resumed run all see identical knobs."""

    index: int
    scenario: str
    llm_seed: int
    barber_seed: int
    storm: TransportFaultModel
    kill_at_save: int
    max_tokens: int | None
    engine_faults: EngineFaultModel | None = None


class ChaosRunner:
    """Run a seeded chaos campaign over the standard fuzz database."""

    def __init__(
        self,
        seed: int = 0,
        runs: int = 30,
        intensity: float = 0.3,
        db=None,
        scenario: str | None = None,
    ):
        from repro.fuzz.runner import build_fuzz_database

        if scenario is not None and scenario not in SCENARIOS:
            raise ValueError(
                f"unknown chaos scenario {scenario!r}; pick one of {SCENARIOS}"
            )
        self.seed = seed
        self.runs = runs
        self.intensity = float(intensity)
        self.scenario = scenario
        self.db = db if db is not None else build_fuzz_database(seed)
        # Small but complete: two specs exercising joins, aggregation, and
        # ordering; 16 target queries across 4 intervals.
        from repro.workload import CostDistribution, TemplateSpec

        self.specs = [
            TemplateSpec(spec_id="chaos_a", num_joins=1, num_aggregations=1),
            TemplateSpec(spec_id="chaos_b", num_joins=0, require_order_by=True),
        ]
        self.distribution = CostDistribution.uniform(0.0, 200.0, 16, 4)

    # -- planning -----------------------------------------------------------------

    def _plan(self, index: int) -> _RunPlan:
        rng = np.random.default_rng([self.seed, index])
        scenario = self.scenario or SCENARIOS[index % len(SCENARIOS)]
        # Split a bounded intensity across the five fault classes so retry
        # exhaustion stays rare; when it does happen, the run degrades
        # gracefully and both the control and resumed runs degrade alike.
        storm_intensity = float(rng.uniform(0.3, 1.0)) * self.intensity
        return _RunPlan(
            index=index,
            scenario=scenario,
            llm_seed=int(rng.integers(1, 2**31)),
            barber_seed=int(rng.integers(1, 2**31)),
            storm=TransportFaultModel.storm(storm_intensity),
            kill_at_save=int(rng.integers(1, 12)),
            max_tokens=int(rng.integers(2_000, 30_000)),
            # Drawn last so adding the engine storm did not shift any
            # pre-existing scenario's knobs for a given (seed, index).
            engine_faults=EngineFaultModel.storm(
                float(rng.uniform(0.3, 1.0)) * self.intensity
            ),
        )

    # -- one pipeline invocation ----------------------------------------------------

    def _make_barber(self, plan: _RunPlan, budgeted: bool):
        from repro.core import BarberConfig, SQLBarber

        inner = SimulatedLLM(seed=plan.llm_seed, transport_faults=plan.storm)
        client = ResilientLLMClient(
            inner,
            retry=RetryPolicy(max_attempts=6, base_delay_seconds=0.01),
            breaker=CircuitBreakerPolicy(failure_threshold=8),
            clock=SimulatedClock(),
            jitter_seed=plan.llm_seed + 1,
            max_tokens=plan.max_tokens if budgeted else None,
        )
        config = BarberConfig(
            seed=plan.barber_seed,
            checkpoint_every_templates=1,
            max_tokens=plan.max_tokens if budgeted else None,
        )
        return SQLBarber(self.db, llm=client, config=config)

    def _pipeline(
        self,
        plan: _RunPlan,
        checkpoint_dir: str | None = None,
        resume: bool = False,
        on_save=None,
        budgeted: bool = False,
    ):
        barber = self._make_barber(plan, budgeted)
        return barber.generate_workload(
            self.specs,
            self.distribution,
            # Isolated per pipeline run (fingerprints stay a pure function
            # of the plan), but progress events forward to the campaign's
            # trace so an uploaded JSONL shows what each run did.
            telemetry=Telemetry(subscribers=[current_telemetry().emit]),
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            on_checkpoint_save=on_save,
        )

    # -- the engine scenario --------------------------------------------------------

    def _engine_templates(self):
        """A planted pool: two healthy templates plus a runaway cross join.

        The cross product pre-admits ``|users| * |orders|`` rows at the
        first nested loop — over any sane row budget before a single row
        materializes — so the runaway must be quarantined every run.
        """
        from repro.workload import SqlTemplate

        return [
            SqlTemplate(
                template_id="engine_users",
                sql="SELECT * FROM users WHERE users.age > {age}",
            ),
            SqlTemplate(
                template_id="engine_orders",
                sql=(
                    "SELECT * FROM orders WHERE orders.amount > {amount} "
                    "ORDER BY orders.amount"
                ),
            ),
            SqlTemplate(
                template_id="engine_runaway",
                sql=(
                    "SELECT * FROM users, orders, items "
                    "WHERE users.age > {age}"
                ),
            ),
        ]

    def _engine_pipeline(self, plan: _RunPlan):
        """One governed run: simulated clock + tight limits + engine storm.

        ``actual_rows`` costs and the simulated clock make the whole run —
        including every governor trip and injected fault — a pure function
        of the plan, which is what lets the campaign demand bit-identical
        fingerprints from back-to-back invocations.
        """
        from repro.core import BarberConfig, SQLBarber
        from repro.workload import CostDistribution

        config = BarberConfig(
            seed=plan.barber_seed,
            query_timeout_seconds=2.0,
            governor_cost_per_row_seconds=1e-4,
            memory_budget_mb=8.0,
            row_budget=5_000,
            governor_clock="simulated",
            quarantine_after=2,
            engine_faults=plan.engine_faults,
        )
        barber = SQLBarber(
            self.db, llm=SimulatedLLM(seed=plan.llm_seed), config=config
        )
        distribution = CostDistribution.uniform(
            0.0, 700.0, 12, 4, cost_type="actual_rows"
        )
        return barber.generate_workload(
            self.specs,
            distribution,
            templates=self._engine_templates(),
            telemetry=Telemetry(subscribers=[current_telemetry().emit]),
        )

    # -- the campaign -----------------------------------------------------------------

    def run(self) -> ChaosReport:
        report = ChaosReport(
            seed=self.seed,
            runs=self.runs,
            intensity=self.intensity,
            database=self.db.name,
            scenario_filter=self.scenario,
        )
        telemetry = current_telemetry()
        with telemetry.span("chaos.run", seed=self.seed, runs=self.runs):
            for index in range(self.runs):
                plan = self._plan(index)
                report.scenarios[plan.scenario] = (
                    report.scenarios.get(plan.scenario, 0) + 1
                )
                try:
                    self._one_run(plan, report)
                except Exception as error:  # the bar: never a stack trace
                    report.failures.append(
                        {
                            "run": index,
                            "scenario": plan.scenario,
                            "error": f"{type(error).__name__}: {error}",
                        }
                    )
                    telemetry.count("chaos.failures", scenario=plan.scenario)
                telemetry.count("chaos.runs", scenario=plan.scenario)
        return report

    def _one_run(self, plan: _RunPlan, report: ChaosReport) -> None:
        if plan.scenario == "storm":
            result = self._pipeline(plan)
            self._record_outcome(result, report)
        elif plan.scenario == "budget":
            result = self._pipeline(plan, budgeted=True)
            self._record_outcome(result, report)
            if result.aborted and not str(result.abort_reason).startswith(
                ("BudgetExhausted", "LLMRetryExhausted", "CircuitOpenError")
            ):
                report.failures.append(
                    {
                        "run": plan.index,
                        "scenario": plan.scenario,
                        "error": f"unexpected abort: {result.abort_reason}",
                    }
                )
            self._check_degraded_shape(plan, result, report)
        elif plan.scenario == "engine":
            self._engine_run(plan, report)
        else:  # kill
            self._kill_and_resume(plan, report)

    def _engine_run(self, plan: _RunPlan, report: ChaosReport) -> None:
        result = self._engine_pipeline(plan)
        self._record_outcome(result, report)
        if result.fingerprint_json() == self._engine_pipeline(plan).fingerprint_json():
            report.engine_runs_identical += 1
        else:
            report.mismatches.append(
                {"run": plan.index, "scenario": plan.scenario}
            )
        if not any(
            q.template_id == "engine_runaway" for q in result.quarantined
        ):
            report.failures.append(
                {
                    "run": plan.index,
                    "scenario": plan.scenario,
                    "error": "runaway cross join escaped quarantine",
                }
            )
        if result.aborted:
            report.failures.append(
                {
                    "run": plan.index,
                    "scenario": plan.scenario,
                    "error": f"engine run aborted: {result.abort_reason}",
                }
            )

    def _kill_and_resume(self, plan: _RunPlan, report: ChaosReport) -> None:
        control = self._pipeline(plan)
        workdir = tempfile.mkdtemp(prefix="repro-chaos-")
        try:
            fired = {"saves": 0, "killed": False}

            def killer(manager, payload) -> None:
                fired["saves"] += 1
                if fired["saves"] == plan.kill_at_save:
                    fired["killed"] = True
                    raise InjectedCrash(
                        f"injected crash after save #{fired['saves']}"
                    )

            try:
                outcome = self._pipeline(plan, checkpoint_dir=workdir, on_save=killer)
            except InjectedCrash:
                report.kills_fired += 1
                outcome = self._pipeline(
                    plan, checkpoint_dir=workdir, resume=True
                )
            self._record_outcome(outcome, report)
            if outcome.fingerprint_json() == control.fingerprint_json():
                report.resumed_identical += 1
            else:
                report.mismatches.append(
                    {
                        "run": plan.index,
                        "killed": fired["killed"],
                        "kill_at_save": plan.kill_at_save,
                    }
                )
        finally:
            shutil.rmtree(workdir, ignore_errors=True)

    def _record_outcome(self, result, report: ChaosReport) -> None:
        if result.aborted:
            report.aborted += 1
        else:
            report.completed += 1
        metrics = result.telemetry.metrics if result.telemetry else None
        if metrics is not None:
            report.transport_faults_injected += int(
                metrics.total("llm.transport.injected")
            )
            report.retry_attempts += int(metrics.total("llm.retry.attempts"))
            report.quarantines += int(metrics.total("governor.quarantines"))
            report.engine_faults_injected += int(
                metrics.total("governor.faults_injected")
            )

    def _check_degraded_shape(self, plan: _RunPlan, result, report) -> None:
        """An aborted run must still be a well-formed partial result."""
        from repro.core.barber import PIPELINE_STAGES

        problems = []
        if set(result.stage_seconds) != set(PIPELINE_STAGES):
            problems.append(f"stage_seconds incomplete: {sorted(result.stage_seconds)}")
        if result.aborted:
            if result.abort_stage not in PIPELINE_STAGES:
                problems.append(f"bad abort_stage: {result.abort_stage!r}")
            if result.complete:
                problems.append("aborted result claims complete")
            if result.search is not None:
                problems.append("aborted run still ran the search stage")
        for problem in problems:
            report.failures.append(
                {"run": plan.index, "scenario": plan.scenario, "error": problem}
            )


def run_chaos_campaign(
    seed: int = 0,
    runs: int = 30,
    intensity: float = 0.3,
    scenario: str | None = None,
    trace_path: str | None = None,
) -> ChaosReport:
    """Convenience wrapper used by the CLI and CI smoke job.

    *scenario* pins every run to one scenario instead of cycling through
    all of :data:`SCENARIOS` — the CI governor gate uses ``"engine"``.
    ``"serve"`` dispatches to the serve-layer campaign
    (:func:`repro.serve.chaos.run_serve_chaos`), which attacks the job
    service instead of a single pipeline run, and ``"restart"`` to the
    durable-store campaign
    (:func:`repro.serve.restart_chaos.run_restart_chaos`), which kills
    the whole service at every journaled transition point; both reports
    have the same ``ok``/``to_json`` surface the CLI consumes.
    With *trace_path* set, the campaign's telemetry (spans, events, the
    final metrics snapshot) is exported there as JSONL; the sink flushes
    per record, so even a crashed campaign leaves a readable trace.
    """
    if scenario == "serve":
        from repro.serve.chaos import run_serve_chaos

        return run_serve_chaos(
            seed=seed, runs=runs, intensity=intensity, trace_path=trace_path
        )
    if scenario == "restart":
        from repro.serve.restart_chaos import run_restart_chaos

        return run_restart_chaos(
            seed=seed, runs=runs, intensity=intensity, trace_path=trace_path
        )
    runner = ChaosRunner(
        seed=seed, runs=runs, intensity=intensity, scenario=scenario
    )
    sinks = []
    if trace_path is not None:
        from repro.obs import JsonlSink

        sinks.append(JsonlSink(trace_path))
    telemetry = Telemetry(sinks=sinks)
    try:
        with use_telemetry(telemetry):
            return runner.run()
    finally:
        telemetry.finish()
