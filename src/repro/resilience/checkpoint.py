"""Checkpoint/resume for the SQLBarber pipeline.

A checkpoint is one JSON file holding everything a fresh process needs to
continue a run *bit-identically*: completed stage outputs (templates,
profiles, refinement bookkeeping), the LLM client's RNG stream positions,
and the usage meter.  Files are written atomically (temp file +
``os.replace``) and carry a content hash plus a *run key* — a hash of the
run's identity (specs, distribution, config, database, seed) — so a stale
or foreign checkpoint is rejected with :class:`CheckpointError` instead of
silently corrupting a resume.

Serialization is lossy on purpose where lossless would be wasteful:
template placeholders and profile search spaces are derived data (pure
functions of template SQL + catalog), so resume re-infers them instead of
storing them.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Callable

import numpy as np


class CheckpointError(Exception):
    """A checkpoint file is missing, corrupt, or belongs to another run."""


CHECKPOINT_FORMAT_VERSION = 1


# -- canonical JSON ---------------------------------------------------------------


def to_jsonable(obj):
    """Recursively convert *obj* to plain JSON types (numpy included)."""
    # numpy scalars first: np.float64 *is* a float subclass, and letting it
    # through unconverted would leak numpy types into the JSON encoder.
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if isinstance(obj, np.ndarray):
        return [to_jsonable(v) for v in obj.tolist()]
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        items = sorted(obj) if isinstance(obj, (set, frozenset)) else obj
        return [to_jsonable(v) for v in items]
    raise TypeError(f"cannot serialize {type(obj).__name__} into a checkpoint")


def canonical_json(obj) -> str:
    """Deterministic JSON: sorted keys, no whitespace variance."""
    return json.dumps(to_jsonable(obj), sort_keys=True, separators=(",", ":"))


def content_hash(obj) -> str:
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


# -- state <-> object helpers -----------------------------------------------------


def template_to_state(template) -> dict:
    """Serialize a SqlTemplate.  Placeholders are re-inferred on resume."""
    return {
        "template_id": template.template_id,
        "sql": template.sql,
        "spec_id": template.spec_id,
        "parent_id": template.parent_id,
    }


def template_from_state(state: dict):
    from repro.workload import SqlTemplate

    return SqlTemplate(
        template_id=state["template_id"],
        sql=state["sql"],
        spec_id=state.get("spec_id"),
        parent_id=state.get("parent_id"),
    )


def profile_to_state(profile) -> dict:
    state = {
        "template": template_to_state(profile.template),
        "observations": [
            [config, cost] for config, cost in profile.observations
        ],
        "errors": profile.errors,
    }
    # Governor bookkeeping rides only when present, so pre-governor
    # checkpoints (and fault-free runs) keep their exact old shape.
    if profile.resource_strikes or profile.quarantined:
        state["governor"] = {
            "quarantined": profile.quarantined,
            "resource_strikes": profile.resource_strikes,
            "quarantine_reason": profile.quarantine_reason,
            "offending_bindings": [
                dict(b) for b in profile.offending_bindings
            ],
            "peak_bytes": profile.peak_bytes,
        }
    return state


def profile_from_state(state: dict, profiler):
    """Rebuild a TemplateProfile; the space comes back from the catalog."""
    from repro.bo import ConfigSpace
    from repro.core.profiler import TemplateProfile
    from repro.sqldb import SqlError

    template = template_from_state(state["template"])
    try:
        space = profiler.build_space(template)
    except SqlError:
        space = ConfigSpace()
    profile = TemplateProfile(template=template, space=space)
    for config, cost in state["observations"]:
        profile.add(config, cost)
    profile.errors = int(state.get("errors", 0))
    governor = state.get("governor")
    if governor is not None:
        profile.quarantined = bool(governor["quarantined"])
        profile.resource_strikes = int(governor["resource_strikes"])
        profile.quarantine_reason = governor.get("quarantine_reason")
        profile.offending_bindings = [
            dict(b) for b in governor.get("offending_bindings", [])
        ]
        profile.peak_bytes = int(governor.get("peak_bytes", 0))
    return profile


def trace_to_state(trace) -> dict:
    return {
        "spec_id": trace.spec_id,
        "attempts": [[a.spec_ok, a.syntax_ok] for a in trace.attempts],
        "rewrites": trace.rewrites,
        "final_sql": trace.final_sql,
        "final_ok": trace.final_ok,
    }


def trace_from_state(state: dict):
    from repro.core.check_rewrite import AttemptStatus, RewriteTrace

    return RewriteTrace(
        spec_id=state["spec_id"],
        attempts=[
            AttemptStatus(spec_ok=bool(s), syntax_ok=bool(x))
            for s, x in state["attempts"]
        ],
        rewrites=int(state["rewrites"]),
        final_sql=state["final_sql"],
        final_ok=bool(state["final_ok"]),
    )


def usage_to_state(meter) -> dict:
    return meter.snapshot()


def usage_from_state(state: dict):
    from repro.llm import UsageMeter

    meter = UsageMeter()
    meter.prompt_tokens = int(state["prompt_tokens"])
    meter.completion_tokens = int(state["completion_tokens"])
    meter.num_calls = int(state["num_calls"])
    meter.calls_by_task = {k: int(v) for k, v in state["calls_by_task"].items()}
    meter.tokens_by_task = {
        task: {k: int(v) for k, v in tokens.items()}
        for task, tokens in state["tokens_by_task"].items()
    }
    return meter


def restore_usage(meter, state: dict) -> None:
    """Overwrite *meter* in place with a saved snapshot."""
    restored = usage_from_state(state)
    meter.prompt_tokens = restored.prompt_tokens
    meter.completion_tokens = restored.completion_tokens
    meter.num_calls = restored.num_calls
    meter.calls_by_task = restored.calls_by_task
    meter.tokens_by_task = restored.tokens_by_task


def refinement_to_state(
    result, history: dict, phase: int, iteration: int, refined_counter: int
) -> dict:
    """Serialize Algorithm 2's full working state at an iteration boundary."""
    return {
        "profiles": [profile_to_state(p) for p in result.profiles],
        "accepted": [template_to_state(t) for t in result.accepted],
        "pruned": result.pruned,
        "refine_calls": result.refine_calls,
        "quarantined": [r.to_dict() for r in result.quarantined],
        "history": {str(j): entries for j, entries in history.items()},
        "refined_counter": refined_counter,
        "phase": phase,
        "iteration": iteration,
    }


def refinement_from_state(state: dict, profiler):
    from repro.core.refiner import RefinementResult
    from repro.governor import QuarantineRecord

    return RefinementResult(
        profiles=[profile_from_state(p, profiler) for p in state["profiles"]],
        accepted=[template_from_state(t) for t in state["accepted"]],
        pruned=int(state["pruned"]),
        refine_calls=int(state["refine_calls"]),
        quarantined=[
            QuarantineRecord.from_dict(r)
            for r in state.get("quarantined", [])
        ],
    )


#: Config fields that shape *execution* (spend ceilings, parallelism,
#: checkpoint cadence) but provably not the generated content.  They are
#: excluded from the run key so a budget-exhausted run can be resumed with
#: a topped-up budget, or on a machine with a different worker count.
_EXECUTION_ONLY_CONFIG_FIELDS = frozenset(
    {
        "max_tokens",
        "max_cost_dollars",
        "checkpoint_every_templates",
        "time_budget_seconds",
        "workers",
        "parallel_backend",
        "profile",
    }
)


def run_key(specs, distribution, config, db_name: str) -> str:
    """Hash of the run's identity — what a checkpoint may be resumed into."""
    from dataclasses import asdict

    from repro.core.check_rewrite import spec_to_payload

    identity = {
        "specs": [spec_to_payload(s) for s in specs],
        "distribution": {
            "lower": distribution.lower,
            "upper": distribution.upper,
            "target_counts": list(distribution.target_counts),
            "name": distribution.name,
            "cost_type": distribution.cost_type,
        },
        "config": {
            k: v
            for k, v in asdict(config).items()
            if k not in _EXECUTION_ONLY_CONFIG_FIELDS
        },
        "db": db_name,
    }
    return content_hash(identity)


# -- the manager ------------------------------------------------------------------


class CheckpointManager:
    """Atomic, hash-verified saves of run state to one JSON file.

    ``on_save(manager, payload)`` fires *after* each durable write — the
    chaos harness uses it to simulate a process dying right after its k-th
    checkpoint hit disk.

    With *lock_owner* set, construction acquires a
    :class:`~repro.resilience.lock.DirectoryLock` on the directory
    (raising :class:`~repro.resilience.lock.LockHeld` if another live
    holder has it), each save refreshes the lock heartbeat, and
    :meth:`close` releases it.  A holder that died without releasing is
    taken over automatically — dead pid or expired heartbeat.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        run_key: str,
        on_save: Callable | None = None,
        lock_owner: str | None = None,
    ):
        self.directory = Path(directory)
        self.run_key = run_key
        self.on_save = on_save
        self.saves = 0
        self.lock = None
        if lock_owner is not None:
            from repro.resilience.lock import DirectoryLock

            self.lock = DirectoryLock(self.directory, owner=lock_owner)
            self.lock.acquire()

    @property
    def path(self) -> Path:
        return self.directory / "checkpoint.json"

    def save(self, state: dict) -> Path:
        self.directory.mkdir(parents=True, exist_ok=True)
        body = to_jsonable(state)
        payload = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "run_key": self.run_key,
            "content_hash": content_hash(body),
            "state": body,
        }
        tmp = self.path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
        os.replace(tmp, self.path)
        self.saves += 1
        if self.lock is not None and self.lock.held:
            self.lock.heartbeat()
        from repro.obs import current as current_telemetry

        telemetry = current_telemetry()
        if telemetry.enabled:
            telemetry.count("checkpoint.saves", stage=str(state.get("stage")))
        if self.on_save is not None:
            self.on_save(self, payload)
        return self.path

    def close(self) -> None:
        """Release the directory lock (no-op when lockless or already lost)."""
        if self.lock is not None:
            self.lock.release()

    def load(self) -> dict | None:
        """The saved state, None when no checkpoint exists yet.

        Raises :class:`CheckpointError` on version/run-key/hash mismatch or
        an unparsable file (a torn write cannot happen thanks to the atomic
        replace, but a truncated disk or foreign file can).
        """
        if not self.path.exists():
            return None
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise CheckpointError(
                f"unreadable checkpoint {self.path}: {error}"
            ) from error
        if payload.get("format_version") != CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path} has format version "
                f"{payload.get('format_version')!r}; expected "
                f"{CHECKPOINT_FORMAT_VERSION}"
            )
        if payload.get("run_key") != self.run_key:
            raise CheckpointError(
                f"checkpoint {self.path} belongs to a different run "
                f"(specs/distribution/config/db/seed changed)"
            )
        state = payload.get("state")
        if content_hash(state) != payload.get("content_hash"):
            raise CheckpointError(f"checkpoint {self.path} failed hash check")
        from repro.obs import current as current_telemetry

        telemetry = current_telemetry()
        if telemetry.enabled:
            telemetry.count("checkpoint.loads", stage=str(state.get("stage")))
        return state
