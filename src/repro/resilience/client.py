"""A resilient wrapper around any :class:`~repro.llm.client.LLMClient`.

:class:`ResilientLLMClient` adds the production concerns a remote
completion API demands and the simulated one lets us test exhaustively:

* **Retry with backoff + jitter** on retryable transport errors, honouring
  ``Retry-After`` hints, on a pluggable (and in tests, simulated) clock.
* **Per-task circuit breaking**: a task whose calls keep failing stops
  being attempted for a cool-down window instead of burning budget.
* **Deadline propagation**: a deadline (absolute clock time) caps both the
  sleeps between retries and whether another attempt starts at all.
* **Budget guarding**: hard token/dollar ceilings checked *before* each
  call so a runaway loop raises a clean :class:`BudgetExhausted` instead
  of overspending.
* **Response validation**: truncated or garbage payloads (delivered, but
  useless) are converted into retryable
  :class:`LLMMalformedResponseError`.

Every decision is surfaced through ``repro.obs`` counters
(``llm.retry.*``, ``llm.circuit.*``, ``llm.budget.*``) so a trace of a
stormy run explains exactly what the client did.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import current as current_telemetry

from repro.llm.accounting import O3_MINI_PRICING, PricingModel
from repro.llm.client import LLMClient, LLMResponse
from repro.llm.errors import (
    BudgetExhausted,
    CircuitOpenError,
    LLMMalformedResponseError,
    LLMRetryExhausted,
    LLMTimeoutError,
    LLMTransportError,
)
from .clock import Clock, SystemClock


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter."""

    max_attempts: int = 5
    base_delay_seconds: float = 0.05
    max_delay_seconds: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.25  # fraction of the delay randomized away

    def delay(self, attempt: int, rng: np.random.Generator) -> float:
        """Sleep before retry *attempt* (1 = first retry)."""
        raw = self.base_delay_seconds * self.multiplier ** (attempt - 1)
        capped = min(raw, self.max_delay_seconds)
        if self.jitter <= 0:
            return capped
        # Full jitter over [1 - jitter, 1]: deterministic given the rng.
        return capped * (1.0 - self.jitter * float(rng.random()))


@dataclass(frozen=True)
class CircuitBreakerPolicy:
    """When to open a task's circuit and how long to keep it open."""

    failure_threshold: int = 5  # consecutive failures to open
    cooldown_seconds: float = 5.0  # open -> half-open after this long
    half_open_successes: int = 1  # successes in half-open to close


class CircuitBreaker:
    """Classic closed / open / half-open breaker on a pluggable clock."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, policy: CircuitBreakerPolicy, clock: Clock, task: str):
        self.policy = policy
        self.clock = clock
        self.task = task
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.half_open_successes = 0
        self.opened_at: float | None = None

    def allow(self) -> bool:
        """May a call proceed right now?  (May transition open→half-open.)"""
        if self.state == self.OPEN:
            assert self.opened_at is not None
            if self.clock.now() - self.opened_at >= self.policy.cooldown_seconds:
                self._transition(self.HALF_OPEN)
                self.half_open_successes = 0
                return True
            return False
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state == self.HALF_OPEN:
            self.half_open_successes += 1
            if self.half_open_successes >= self.policy.half_open_successes:
                self._transition(self.CLOSED)

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN:
            self._trip()
        elif (
            self.state == self.CLOSED
            and self.consecutive_failures >= self.policy.failure_threshold
        ):
            self._trip()

    def _trip(self) -> None:
        self.opened_at = self.clock.now()
        self._transition(self.OPEN)

    def _transition(self, state: str) -> None:
        if state == self.state:
            return
        self.state = state
        telemetry = current_telemetry()
        if telemetry.enabled:
            telemetry.count("llm.circuit.transitions", task=self.task, state=state)


def default_response_validator(text: str) -> str | None:
    """Reject delivered-but-unusable payloads; return the defect or None.

    Catches the transport-corruption classes the simulated API injects —
    and their real-world counterparts: empty bodies, HTML error pages from
    an intermediary, truncated code fences, and JSON cut off mid-object.
    """
    stripped = text.strip()
    if not stripped:
        return "empty completion"
    if stripped[:100].lstrip().lower().startswith(("<html", "<!doctype")):
        return "non-completion payload (HTML error page)"
    if stripped.count("```") % 2 == 1:
        return "truncated completion (unterminated code fence)"
    if stripped.startswith("{") and not stripped.endswith("}"):
        return "truncated JSON object"
    return None


class ResilientLLMClient(LLMClient):
    """Retry, circuit-break, deadline-cap, and budget-guard an inner client.

    Drop-in: callers use ``complete(prompt, task)`` exactly as before.
    Usage accounting stays on the *inner* client's meter (exposed here as
    ``usage``), so budget checks see every token the wrapped client billed,
    including completions the validator later rejected.
    """

    def __init__(
        self,
        inner: LLMClient,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreakerPolicy | None = None,
        clock: Clock | None = None,
        max_tokens: int | None = None,
        max_cost_dollars: float | None = None,
        pricing: PricingModel = O3_MINI_PRICING,
        deadline: float | None = None,
        jitter_seed: int = 0,
        validator=default_response_validator,
    ):
        # Deliberately no super().__init__(): usage must delegate to the
        # inner client so both views of spend are one meter.
        self.inner = inner
        self.model = inner.model
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker_policy = (
            breaker if breaker is not None else CircuitBreakerPolicy()
        )
        self.clock = clock if clock is not None else SystemClock()
        self.max_tokens = max_tokens
        self.max_cost_dollars = max_cost_dollars
        self.pricing = pricing
        self.deadline = deadline  # absolute, in self.clock time
        self.validator = validator
        self._jitter_rng = np.random.default_rng(jitter_seed)
        self._breakers: dict[str, CircuitBreaker] = {}

    # -- delegation ---------------------------------------------------------------

    @property
    def usage(self):
        return self.inner.usage

    @property
    def last_faults(self) -> list[str]:
        return self.inner.last_faults

    @last_faults.setter
    def last_faults(self, value: list[str]) -> None:
        self.inner.last_faults = value

    def rng_state(self) -> dict | None:
        return self.inner.rng_state()

    def set_rng_state(self, state: dict) -> None:
        self.inner.set_rng_state(state)

    def _complete_text(self, prompt: str) -> str:  # pragma: no cover
        raise NotImplementedError("ResilientLLMClient wraps complete() directly")

    # -- budget -------------------------------------------------------------------

    def check_budget(self) -> None:
        """Raise :class:`BudgetExhausted` if the next call would overspend."""
        meter = self.inner.usage
        if self.max_tokens is not None and meter.total_tokens >= self.max_tokens:
            self._count_budget("tokens")
            raise BudgetExhausted(
                f"token budget exhausted: {meter.total_tokens} >= "
                f"{self.max_tokens}",
                tokens=meter.total_tokens,
                max_tokens=self.max_tokens,
            )
        if self.max_cost_dollars is not None:
            cost = meter.cost_usd(self.pricing)
            if cost >= self.max_cost_dollars:
                self._count_budget("dollars")
                raise BudgetExhausted(
                    f"dollar budget exhausted: ${cost:.4f} >= "
                    f"${self.max_cost_dollars:.4f}",
                    cost_usd=cost,
                    max_cost_dollars=self.max_cost_dollars,
                )

    def _count_budget(self, kind: str) -> None:
        telemetry = current_telemetry()
        if telemetry.enabled:
            telemetry.count("llm.budget.exhausted", kind=kind)

    # -- the resilient call -------------------------------------------------------

    def complete(self, prompt: str, task: str = "unknown") -> LLMResponse:
        self.check_budget()
        breaker = self._breaker_for(task)
        telemetry = current_telemetry()
        last_error: Exception | None = None
        for attempt in range(1, self.retry.max_attempts + 1):
            self._check_deadline(task)
            if not breaker.allow():
                if telemetry.enabled:
                    telemetry.count("llm.circuit.rejected", task=task)
                raise CircuitOpenError(
                    f"circuit open for task {task!r} after "
                    f"{breaker.consecutive_failures} consecutive failures"
                )
            try:
                response = self.inner.complete(prompt, task=task)
                defect = self.validator(response.text) if self.validator else None
                if defect is not None:
                    raise LLMMalformedResponseError(defect)
            except LLMTransportError as error:
                breaker.record_failure()
                last_error = error
                if not error.retryable or attempt >= self.retry.max_attempts:
                    break
                if telemetry.enabled:
                    telemetry.count(
                        "llm.retry.attempts",
                        task=task,
                        error=type(error).__name__,
                    )
                    telemetry.event(
                        "llm_retry",
                        task=task,
                        attempt=attempt,
                        error=type(error).__name__,
                    )
                self._backoff(attempt, error, task)
                continue
            breaker.record_success()
            if telemetry.enabled and attempt > 1:
                telemetry.count("llm.retry.recovered", task=task)
            return response
        assert last_error is not None
        if telemetry.enabled:
            telemetry.count("llm.retry.exhausted", task=task)
        raise LLMRetryExhausted(
            f"task {task!r} failed after {self.retry.max_attempts} attempts: "
            f"{type(last_error).__name__}: {last_error}",
            attempts=self.retry.max_attempts,
            last_error=last_error,
        ) from last_error

    def _breaker_for(self, task: str) -> CircuitBreaker:
        breaker = self._breakers.get(task)
        if breaker is None:
            breaker = CircuitBreaker(self.breaker_policy, self.clock, task)
            self._breakers[task] = breaker
        return breaker

    def _check_deadline(self, task: str) -> None:
        if self.deadline is not None and self.clock.now() >= self.deadline:
            telemetry = current_telemetry()
            if telemetry.enabled:
                telemetry.count("llm.deadline.exceeded", task=task)
            raise LLMTimeoutError(f"deadline exceeded before task {task!r} call")

    def _backoff(self, attempt: int, error: Exception, task: str) -> None:
        delay = self.retry.delay(attempt, self._jitter_rng)
        retry_after = getattr(error, "retry_after", None)
        if retry_after is not None:
            delay = max(delay, float(retry_after))
        if self.deadline is not None:
            remaining = self.deadline - self.clock.now()
            if delay >= remaining:
                telemetry = current_telemetry()
                if telemetry.enabled:
                    telemetry.count("llm.deadline.exceeded", task=task)
                raise LLMTimeoutError(
                    f"deadline leaves no room for a {delay:.3f}s backoff "
                    f"before retrying task {task!r}"
                ) from error
        self.clock.sleep(delay)
