"""Clocks for the resilience layer.

Retry backoff, circuit-breaker cool-downs, and deadlines all need a notion
of "now" and "sleep".  Production code uses :class:`SystemClock`; every
test, chaos campaign, and checkpointed run uses :class:`SimulatedClock`, a
purely arithmetic clock whose sleeps complete instantly and whose timeline
is therefore fully deterministic.
"""

from __future__ import annotations

import time


class Clock:
    """Monotonic now/sleep interface."""

    def now(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError


class SystemClock(Clock):
    """Wall-clock time: real ``monotonic`` + real ``sleep``."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class SimulatedClock(Clock):
    """A clock that only moves when told to — sleeps are free and exact.

    Deterministic by construction: the same sequence of ``sleep`` calls
    always produces the same timeline, which keeps retry/backoff schedules
    reproducible across chaos-campaign runs.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self.total_slept = 0.0
        self.sleeps: list[float] = []

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        seconds = max(float(seconds), 0.0)
        self._now += seconds
        self.total_slept += seconds
        self.sleeps.append(seconds)

    def advance(self, seconds: float) -> None:
        """Move time forward without recording a sleep."""
        self._now += max(float(seconds), 0.0)
