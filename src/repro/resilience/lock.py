"""Advisory file locks for checkpoint directories.

Two processes resuming the same checkpoint directory would interleave
``os.replace`` writes and race each other's reads — each write is atomic,
but the *run* is not, and the loser silently clobbers the winner's
progress.  :class:`DirectoryLock` makes ownership explicit: one JSON
lockfile per directory, created with ``O_CREAT | O_EXCL`` (the classic
atomic-create idiom), holding the owner label, pid, a per-process token,
and a wall-clock heartbeat.

Stale locks are taken over, not waited on.  A lock is stale when its
holder's pid is dead (``kill -0`` fails), its heartbeat is older than
``stale_after_seconds``, or the file is unreadable.  Takeover is
replace-then-verify: write our payload over the file, read it back, and
only claim victory if our token survived — two simultaneous stealers
resolve to exactly one winner.

The lockfile carries wall-clock time but lives outside every report and
fingerprint, so determinism guarantees are unaffected.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from pathlib import Path


class LockError(Exception):
    """A lock operation failed for a reason other than contention."""


class LockHeld(LockError):
    """The directory is locked by a live holder.

    ``holder`` is the lockfile payload (owner, pid, token, heartbeat) so
    callers can report *who* holds the lock, not just that someone does.
    """

    def __init__(self, path: Path, holder: dict):
        self.path = path
        self.holder = holder
        super().__init__(
            f"{path} is held by owner={holder.get('owner')!r} "
            f"pid={holder.get('pid')} (heartbeat age "
            f"{time.time() - float(holder.get('heartbeat_unix', 0.0)):.1f}s)"
        )


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


_TOKEN_COUNTER = itertools.count(1)
_TOKEN_LOCK = threading.Lock()


def _new_token() -> str:
    with _TOKEN_LOCK:
        return f"{os.getpid()}.{next(_TOKEN_COUNTER)}"


class DirectoryLock:
    """One-holder advisory lock over a directory, as a JSON lockfile.

    Usage::

        with DirectoryLock(ckpt_dir, owner="worker-3") as lock:
            ...          # exclusive access to the directory
            lock.heartbeat()   # refresh liveness during long work

    ``acquire`` raises :class:`LockHeld` when a live holder exists; stale
    holders (dead pid, expired heartbeat, corrupt file) are taken over
    silently, with the takeover reason recorded on ``self.takeover_reason``.
    ``release`` is safe to call from ``finally`` blocks: releasing a lock
    that was already lost (stolen after our heartbeat expired) is a no-op,
    never an exception — the new holder's file must not be deleted.
    """

    LOCK_NAME = "lock.json"

    def __init__(
        self,
        directory: str | os.PathLike,
        owner: str = "anonymous",
        stale_after_seconds: float = 300.0,
    ):
        self.directory = Path(directory)
        self.owner = owner
        self.stale_after_seconds = float(stale_after_seconds)
        self.token: str | None = None
        self.takeover_reason: str | None = None

    @property
    def path(self) -> Path:
        return self.directory / self.LOCK_NAME

    @property
    def held(self) -> bool:
        return self.token is not None

    # -- payload helpers ------------------------------------------------------------

    def _payload(self) -> dict:
        return {
            "owner": self.owner,
            "pid": os.getpid(),
            "token": self.token,
            "heartbeat_unix": time.time(),
        }

    def read_holder(self) -> dict | None:
        """The current lockfile payload, or None when unlocked/unreadable."""
        try:
            return json.loads(self.path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return {"corrupt": True}

    def _staleness(self, holder: dict) -> str | None:
        """Why *holder* is stale, or None if it must be honored."""
        if holder.get("corrupt"):
            return "corrupt lockfile"
        try:
            pid = int(holder.get("pid", -1))
        except (TypeError, ValueError):
            return "corrupt lockfile"
        if not _pid_alive(pid):
            return f"holder pid {pid} is dead"
        try:
            age = time.time() - float(holder.get("heartbeat_unix", 0.0))
        except (TypeError, ValueError):
            return "corrupt lockfile"
        if age > self.stale_after_seconds:
            return f"heartbeat is {age:.1f}s old (limit {self.stale_after_seconds}s)"
        return None

    def _write_over(self) -> None:
        """Replace the lockfile with our payload (atomic tmp + replace)."""
        tmp = self.path.with_suffix(f".tmp.{self.token}")
        tmp.write_text(json.dumps(self._payload(), sort_keys=True))
        os.replace(tmp, self.path)

    # -- the lock protocol ----------------------------------------------------------

    def acquire(self) -> "DirectoryLock":
        if self.held:
            raise LockError(f"{self.path} already acquired by this object")
        self.directory.mkdir(parents=True, exist_ok=True)
        self.token = _new_token()
        self.takeover_reason = None
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            holder = self.read_holder()
            if holder is None:
                # Deleted between our create attempt and the read — retry
                # the exclusive create once; a second loss means real
                # contention.
                try:
                    fd = os.open(
                        self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                    )
                except FileExistsError:
                    holder = self.read_holder() or {"corrupt": True}
                else:
                    return self._finish_create(fd)
            reason = self._staleness(holder)
            if reason is None:
                self.token = None
                raise LockHeld(self.path, holder)
            # Takeover: replace, then verify our token survived the race.
            self._write_over()
            survived = self.read_holder()
            if not survived or survived.get("token") != self.token:
                self.token = None
                raise LockHeld(self.path, survived or holder)
            self.takeover_reason = reason
            return self
        else:
            return self._finish_create(fd)

    def _finish_create(self, fd: int) -> "DirectoryLock":
        try:
            os.write(fd, json.dumps(self._payload(), sort_keys=True).encode())
        finally:
            os.close(fd)
        return self

    def heartbeat(self) -> None:
        """Refresh the heartbeat so a long-running holder never looks stale."""
        if not self.held:
            raise LockError(f"cannot heartbeat {self.path}: lock not held")
        current = self.read_holder()
        if not current or current.get("token") != self.token:
            self.token = None
            raise LockError(
                f"lost {self.path}: lock was taken over while we held it"
            )
        self._write_over()

    def release(self) -> bool:
        """Drop the lock.  True if our lockfile was removed.

        Releasing a lock we no longer hold (stolen, or never acquired)
        returns False instead of raising — release lives in ``finally``
        blocks that must not mask the original exception.
        """
        if not self.held:
            return False
        token, self.token = self.token, None
        current = self.read_holder()
        if not current or current.get("token") != token:
            return False
        try:
            self.path.unlink()
        except FileNotFoundError:
            return False
        return True

    def break_lock(self) -> bool:
        """Supervised force-break: remove the lockfile regardless of holder.

        For callers that *know* the holder is gone through a channel the
        lockfile cannot see (the serve core confirming a worker thread
        died).  True if a lockfile was removed.
        """
        try:
            self.path.unlink()
        except FileNotFoundError:
            return False
        return True

    def __enter__(self) -> "DirectoryLock":
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()
