"""A multi-tenant job service around the SQLBarber pipeline.

Layered so every piece is testable without the one above it:

``jobs``           the unit of work (JobRequest validation, Job lifecycle)
``admission``      quota/budget/rate verdicts (TenantQuota, RateLimiter)
``store``          the write-ahead job journal (segments, snapshots, faults)
``core``           the lock-guarded state machine (queue, accounts, recovery)
``runner``         one job through SQLBarber (checkpointed, deadline-bounded)
``http``           the asyncio front door + worker-thread pool
``client``         a stdlib HTTP client (CLI, bench, tests)
``chaos``          the seeded serve chaos campaign (kills, storms, poison)
``restart_chaos``  the kill-the-whole-service sweep over the durable store
"""

from .admission import (
    CONSUMING_REJECTION_CODES,
    AdmissionController,
    RateLimiter,
    Rejection,
    TenantAccount,
    TenantQuota,
)
from .chaos import ServeChaosReport, ServeChaosRunner, run_serve_chaos
from .client import ServeClient, ServeClientError
from .core import ServeConfig, ServeCore
from .http import BackgroundServer, ServeServer
from .jobs import BadRequest, Job, JobRequest, JobState
from .restart_chaos import (
    RestartChaosReport,
    RestartChaosRunner,
    run_restart_chaos,
)
from .runner import (
    KILL_POINTS,
    DrainRequested,
    JobOutcome,
    JobRunner,
    WorkerKilled,
)
from .store import JobStore, StoreFaultModel

__all__ = [
    "AdmissionController",
    "BackgroundServer",
    "BadRequest",
    "CONSUMING_REJECTION_CODES",
    "DrainRequested",
    "Job",
    "JobOutcome",
    "JobRequest",
    "JobRunner",
    "JobState",
    "JobStore",
    "KILL_POINTS",
    "RateLimiter",
    "Rejection",
    "RestartChaosReport",
    "RestartChaosRunner",
    "run_restart_chaos",
    "run_serve_chaos",
    "ServeChaosReport",
    "ServeChaosRunner",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ServeCore",
    "ServeServer",
    "StoreFaultModel",
    "TenantAccount",
    "TenantQuota",
    "WorkerKilled",
]
