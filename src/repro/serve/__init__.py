"""A multi-tenant job service around the SQLBarber pipeline.

Layered so every piece is testable without the one above it:

``jobs``       the unit of work (JobRequest validation, Job lifecycle)
``admission``  quota/budget verdicts (TenantQuota, AdmissionController)
``core``       the lock-guarded state machine (queue, accounts, quarantine)
``runner``     one job through SQLBarber (checkpointed, deadline-bounded)
``http``       the asyncio front door + worker-thread pool
``client``     a stdlib HTTP client (CLI, bench, tests)
``chaos``      the seeded serve chaos campaign (kills, storms, poison)
"""

from .admission import AdmissionController, Rejection, TenantAccount, TenantQuota
from .chaos import ServeChaosReport, ServeChaosRunner, run_serve_chaos
from .client import ServeClient, ServeClientError
from .core import ServeConfig, ServeCore
from .http import BackgroundServer, ServeServer
from .jobs import BadRequest, Job, JobRequest, JobState
from .runner import (
    KILL_POINTS,
    DrainRequested,
    JobOutcome,
    JobRunner,
    WorkerKilled,
)

__all__ = [
    "AdmissionController",
    "BackgroundServer",
    "BadRequest",
    "DrainRequested",
    "Job",
    "JobOutcome",
    "JobRequest",
    "JobRunner",
    "JobState",
    "KILL_POINTS",
    "Rejection",
    "run_serve_chaos",
    "ServeChaosReport",
    "ServeChaosRunner",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ServeCore",
    "ServeServer",
    "TenantAccount",
    "TenantQuota",
    "WorkerKilled",
]
