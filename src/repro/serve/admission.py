"""Admission control: who gets into the queue, and who gets a 429.

The same arithmetic the resource governor applies to queries —
hard ceilings checked *before* spending, explicit refusals instead of
silent degradation — applied to tenants.  Each tenant carries a
:class:`TenantQuota` (concurrent jobs, queued jobs, lifetime token and
dollar budgets); a :class:`TenantAccount` tracks what the tenant has
consumed; and :class:`AdmissionController.admit` renders the verdict for
one submission against the account, the global queue, and the service
state.

Refusals are always explicit and machine-readable: a :class:`Rejection`
carries an HTTP-style status, a stable ``code``, a human reason, and —
when waiting could help — a deterministic ``retry_after_seconds`` derived
from queue depth and nominal job duration.  Nothing is ever silently
dropped; the serve chaos campaign audits that every submission produced
either a job or a rejection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant ceilings.  None = unlimited."""

    max_concurrent_jobs: int = 2
    max_queued_jobs: int = 8
    max_tokens: int | None = None
    max_cost_dollars: float | None = None


@dataclass
class TenantAccount:
    """What one tenant currently holds and has historically spent.

    Token/dollar spend accumulates over the service lifetime from every
    finished attempt (completed, failed, or checkpointed — the LLM billed
    them all), mirroring how the budget guard meters a single run.
    """

    tenant: str
    quota: TenantQuota
    queued: int = 0
    running: int = 0
    tokens_spent: int = 0
    dollars_spent: float = 0.0
    jobs_submitted: int = 0
    jobs_completed: int = 0

    def remaining_tokens(self) -> int | None:
        if self.quota.max_tokens is None:
            return None
        return max(0, self.quota.max_tokens - self.tokens_spent)

    def remaining_dollars(self) -> float | None:
        if self.quota.max_cost_dollars is None:
            return None
        return max(0.0, self.quota.max_cost_dollars - self.dollars_spent)

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "queued": self.queued,
            "running": self.running,
            "tokens_spent": self.tokens_spent,
            "dollars_spent": round(self.dollars_spent, 6),
            "jobs_submitted": self.jobs_submitted,
            "jobs_completed": self.jobs_completed,
        }


@dataclass(frozen=True)
class Rejection:
    """An explicit refusal: status, stable code, reason, optional hint."""

    status: int  # HTTP-style: 429, 503, 422
    code: str
    reason: str
    retry_after_seconds: float | None = None

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "code": self.code,
            "reason": self.reason,
            "retry_after_seconds": self.retry_after_seconds,
        }


@dataclass
class AdmissionController:
    """Render admit/reject verdicts for submissions.

    Stateless over jobs — it reads the account and queue depth it is
    handed, so the serve core stays the single owner of mutable state.
    """

    max_queue_depth: int = 32
    workers: int = 2
    nominal_job_seconds: float = 2.0
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    quotas: dict = field(default_factory=dict)  # tenant -> TenantQuota

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def retry_after(self, queue_depth: int) -> float:
        """Deterministic back-off hint: how long until a slot should free.

        One queue drain is roughly ``depth / workers`` nominal job times;
        clients that honor the hint arrive when capacity plausibly exists
        instead of hammering a full queue.
        """
        drains = math.ceil(max(queue_depth, 1) / max(self.workers, 1))
        return round(self.nominal_job_seconds * drains, 3)

    def admit(
        self,
        account: TenantAccount,
        queue_depth: int,
        *,
        draining: bool = False,
        spec_quarantined: bool = False,
    ) -> Rejection | None:
        """None = admitted; otherwise the explicit rejection to return."""
        if draining:
            return Rejection(
                status=503,
                code="draining",
                reason="service is draining; not accepting new jobs",
                retry_after_seconds=self.retry_after(queue_depth),
            )
        if spec_quarantined:
            return Rejection(
                status=422,
                code="spec_quarantined",
                reason=(
                    "this spec pack repeatedly crashed workers and is "
                    "quarantined; change the spec before resubmitting"
                ),
            )
        if queue_depth >= self.max_queue_depth:
            return Rejection(
                status=429,
                code="queue_full",
                reason=(
                    f"global queue is full "
                    f"({queue_depth}/{self.max_queue_depth})"
                ),
                retry_after_seconds=self.retry_after(queue_depth),
            )
        quota = account.quota
        if account.queued >= quota.max_queued_jobs:
            return Rejection(
                status=429,
                code="tenant_queue_full",
                reason=(
                    f"tenant {account.tenant!r} already has "
                    f"{account.queued} queued jobs "
                    f"(quota {quota.max_queued_jobs})"
                ),
                retry_after_seconds=self.retry_after(account.queued),
            )
        remaining_tokens = account.remaining_tokens()
        if remaining_tokens is not None and remaining_tokens <= 0:
            return Rejection(
                status=429,
                code="tokens_exhausted",
                reason=(
                    f"tenant {account.tenant!r} spent "
                    f"{account.tokens_spent} tokens of a "
                    f"{quota.max_tokens} budget"
                ),
            )
        remaining_dollars = account.remaining_dollars()
        if remaining_dollars is not None and remaining_dollars <= 0.0:
            return Rejection(
                status=429,
                code="dollars_exhausted",
                reason=(
                    f"tenant {account.tenant!r} spent "
                    f"${account.dollars_spent:.4f} of a "
                    f"${quota.max_cost_dollars:.4f} budget"
                ),
            )
        return None
