"""Admission control: who gets into the queue, and who gets a 429.

The same arithmetic the resource governor applies to queries —
hard ceilings checked *before* spending, explicit refusals instead of
silent degradation — applied to tenants.  Each tenant carries a
:class:`TenantQuota` (concurrent jobs, queued jobs, lifetime token and
dollar budgets); a :class:`TenantAccount` tracks what the tenant has
consumed; and :class:`AdmissionController.admit` renders the verdict for
one submission against the account, the global queue, and the service
state.

Refusals are always explicit and machine-readable: a :class:`Rejection`
carries an HTTP-style status, a stable ``code``, a human reason, and —
when waiting could help — a deterministic ``retry_after_seconds`` derived
from queue depth and nominal job duration.  Nothing is ever silently
dropped; the serve chaos campaign audits that every submission produced
either a job or a rejection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Rejection codes issued *after* the rate-limit check — their request
#: consumed a rate token.  Journal replay re-feeds these (and accepted
#: submissions) into the limiter to rebuild exact bucket state.
CONSUMING_REJECTION_CODES = frozenset(
    {"queue_full", "tenant_queue_full", "tokens_exhausted",
     "dollars_exhausted"}
)


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant ceilings.  None = unlimited.

    ``requests_per_window`` arms time-windowed rate limiting: a token
    bucket refilled at ``requests_per_window / window_seconds`` tokens
    per second up to ``burst`` capacity (default: one window's worth).
    Unlike the lifetime token/dollar budgets — which only ever run *out*
    — the bucket recovers with time, so a tenant is throttled per
    window, not cut off forever.
    """

    max_concurrent_jobs: int = 2
    max_queued_jobs: int = 8
    max_tokens: int | None = None
    max_cost_dollars: float | None = None
    requests_per_window: int | None = None
    window_seconds: float = 60.0
    burst: int | None = None

    def bucket_capacity(self) -> float:
        if self.requests_per_window is None:
            return 0.0
        return float(
            self.burst if self.burst is not None else self.requests_per_window
        )

    def refill_rate(self) -> float:
        """Tokens per second (0 when rate limiting is unarmed)."""
        if self.requests_per_window is None:
            return 0.0
        return self.requests_per_window / max(self.window_seconds, 1e-9)


class RateLimiter:
    """Deterministic per-tenant token buckets on the core's clock.

    Pure arithmetic over the ``now`` values it is handed — no wall-clock
    reads — so under :class:`~repro.resilience.clock.SimulatedClock` the
    verdict sequence (and every ``retry_after_seconds`` hint) is a pure
    function of the submission timeline, and journal replay can rebuild
    the exact bucket state by re-feeding the recorded timestamps.
    """

    def __init__(self):
        #: tenant -> [tokens, last_refill_at]
        self.buckets: dict[str, list[float]] = {}

    def _refill(self, tenant: str, quota: TenantQuota, now: float) -> list:
        capacity = quota.bucket_capacity()
        bucket = self.buckets.get(tenant)
        if bucket is None:
            bucket = [capacity, now]
            self.buckets[tenant] = bucket
        elapsed = max(now - bucket[1], 0.0)
        bucket[0] = min(capacity, bucket[0] + elapsed * quota.refill_rate())
        bucket[1] = now
        return bucket

    def check(
        self, tenant: str, quota: TenantQuota, now: float
    ) -> float | None:
        """Consume one token; None = allowed, else exact seconds until
        the next token exists."""
        if quota.requests_per_window is None:
            return None
        bucket = self._refill(tenant, quota, now)
        if bucket[0] >= 1.0:
            bucket[0] -= 1.0
            return None
        return round((1.0 - bucket[0]) / quota.refill_rate(), 6)

    def force(self, tenant: str, quota: TenantQuota, at: float) -> None:
        """Journal replay: re-apply a consumption that happened at *at*."""
        if quota.requests_per_window is None:
            return
        bucket = self._refill(tenant, quota, at)
        bucket[0] = max(bucket[0] - 1.0, 0.0)

    def state(self) -> dict:
        return {
            tenant: [round(b[0], 9), b[1]]
            for tenant, b in sorted(self.buckets.items())
        }

    def restore(self, state: dict) -> None:
        self.buckets = {
            tenant: [float(b[0]), float(b[1])]
            for tenant, b in state.items()
        }

    def shift(self, delta: float) -> None:
        """Rebase refill times onto a new process's clock origin."""
        for bucket in self.buckets.values():
            bucket[1] += delta


@dataclass
class TenantAccount:
    """What one tenant currently holds and has historically spent.

    Token/dollar spend accumulates over the service lifetime from every
    finished attempt (completed, failed, or checkpointed — the LLM billed
    them all), mirroring how the budget guard meters a single run.
    """

    tenant: str
    quota: TenantQuota
    queued: int = 0
    running: int = 0
    tokens_spent: int = 0
    dollars_spent: float = 0.0
    jobs_submitted: int = 0
    jobs_completed: int = 0

    def remaining_tokens(self) -> int | None:
        if self.quota.max_tokens is None:
            return None
        return max(0, self.quota.max_tokens - self.tokens_spent)

    def remaining_dollars(self) -> float | None:
        if self.quota.max_cost_dollars is None:
            return None
        return max(0.0, self.quota.max_cost_dollars - self.dollars_spent)

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "queued": self.queued,
            "running": self.running,
            "tokens_spent": self.tokens_spent,
            "dollars_spent": round(self.dollars_spent, 6),
            "jobs_submitted": self.jobs_submitted,
            "jobs_completed": self.jobs_completed,
        }


@dataclass(frozen=True)
class Rejection:
    """An explicit refusal: status, stable code, reason, optional hint."""

    status: int  # HTTP-style: 429, 503, 422
    code: str
    reason: str
    retry_after_seconds: float | None = None

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "code": self.code,
            "reason": self.reason,
            "retry_after_seconds": self.retry_after_seconds,
        }


@dataclass
class AdmissionController:
    """Render admit/reject verdicts for submissions.

    Stateless over jobs — it reads the account and queue depth it is
    handed, so the serve core stays the single owner of mutable state.
    """

    max_queue_depth: int = 32
    workers: int = 2
    nominal_job_seconds: float = 2.0
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    quotas: dict = field(default_factory=dict)  # tenant -> TenantQuota
    limiter: RateLimiter = field(default_factory=RateLimiter)

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def retry_after(self, queue_depth: int) -> float:
        """Deterministic back-off hint: how long until a slot should free.

        One queue drain is roughly ``depth / workers`` nominal job times;
        clients that honor the hint arrive when capacity plausibly exists
        instead of hammering a full queue.
        """
        drains = math.ceil(max(queue_depth, 1) / max(self.workers, 1))
        return round(self.nominal_job_seconds * drains, 3)

    def admit(
        self,
        account: TenantAccount,
        queue_depth: int,
        *,
        draining: bool = False,
        spec_quarantined: bool = False,
        now: float | None = None,
    ) -> Rejection | None:
        """None = admitted; otherwise the explicit rejection to return.

        Check order is part of the contract (journal replay re-derives
        rate-bucket state from it): draining and quarantine verdicts are
        free — they consume no rate token; everything at and past the
        rate check does.  *now* is the core clock's time; without it the
        rate check is skipped (legacy callers, rate limiting unarmed).
        """
        if draining:
            # No retry hint on purpose: drain ends in process exit, not
            # in freed capacity, so there is no honest number to give.
            # Clients should retry after the service restarts (the
            # durable job store carries all accepted work across).
            return Rejection(
                status=503,
                code="draining",
                reason=(
                    "service is draining toward shutdown; retry after "
                    "it restarts — accepted jobs are journaled and "
                    "survive the restart"
                ),
            )
        if spec_quarantined:
            return Rejection(
                status=422,
                code="spec_quarantined",
                reason=(
                    "this spec pack repeatedly crashed workers and is "
                    "quarantined; change the spec before resubmitting"
                ),
            )
        quota = account.quota
        if now is not None:
            wait = self.limiter.check(account.tenant, quota, now)
            if wait is not None:
                return Rejection(
                    status=429,
                    code="rate_limited",
                    reason=(
                        f"tenant {account.tenant!r} exceeded "
                        f"{quota.requests_per_window} requests per "
                        f"{quota.window_seconds:g}s window"
                    ),
                    retry_after_seconds=wait,
                )
        if queue_depth >= self.max_queue_depth:
            return Rejection(
                status=429,
                code="queue_full",
                reason=(
                    f"global queue is full "
                    f"({queue_depth}/{self.max_queue_depth})"
                ),
                retry_after_seconds=self.retry_after(queue_depth),
            )
        if account.queued >= quota.max_queued_jobs:
            return Rejection(
                status=429,
                code="tenant_queue_full",
                reason=(
                    f"tenant {account.tenant!r} already has "
                    f"{account.queued} queued jobs "
                    f"(quota {quota.max_queued_jobs})"
                ),
                retry_after_seconds=self.retry_after(account.queued),
            )
        remaining_tokens = account.remaining_tokens()
        if remaining_tokens is not None and remaining_tokens <= 0:
            return Rejection(
                status=429,
                code="tokens_exhausted",
                reason=(
                    f"tenant {account.tenant!r} spent "
                    f"{account.tokens_spent} tokens of a "
                    f"{quota.max_tokens} budget"
                ),
            )
        remaining_dollars = account.remaining_dollars()
        if remaining_dollars is not None and remaining_dollars <= 0.0:
            return Rejection(
                status=429,
                code="dollars_exhausted",
                reason=(
                    f"tenant {account.tenant!r} spent "
                    f"${account.dollars_spent:.4f} of a "
                    f"${quota.max_cost_dollars:.4f} budget"
                ),
            )
        return None
