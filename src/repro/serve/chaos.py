"""Serve-layer chaos: kills, queue storms, deadline expiries, poison.

The pipeline chaos campaign (:mod:`repro.resilience.chaos`) attacks one
run; this one attacks the *service*: a seeded plan of tenants and jobs is
driven through a real :class:`~repro.serve.core.ServeCore` and
:class:`~repro.serve.runner.JobRunner` — inline, single-threaded, on a
:class:`~repro.resilience.clock.SimulatedClock` — while four disruption
classes play out:

* **worker kills** — :class:`WorkerKilled` raised after a planned
  checkpoint save; the core requeues, the next claim resumes, and the
  resumed job's fingerprint must equal an uninterrupted twin's.
* **queue-full storms** — a submission burst past the bounded queue;
  every overflow must come back as an explicit 429 with a retry-after
  hint, never a silent drop.
* **deadline expiries** — slow (simulated) workers age the queue past
  some jobs' deadlines; those must be shed as EXPIRED at dispatch.
* **poisoned specs** — payloads that validate shallowly but
  deterministically fail in the worker; repeats must trip the spec
  quarantine and subsequent submissions must be rejected 422.

Some runs instead drain mid-campaign (kills and drain are separate runs —
the resumed-twin audit needs every killed job to actually resume),
proving queued work survives a shutdown as accountable state.

The acceptance bar matches ``repro fuzz`` and ``repro chaos``: the report
is a pure function of ``(seed, runs, intensity)`` — byte-identical JSON
across invocations, no timestamps, no paths — the lost-job audit must
come back empty after every run, and every resumed job must fingerprint
bit-identically to its twin.
"""

from __future__ import annotations

import json
import shutil
import tempfile
from dataclasses import dataclass, field

import numpy as np

from repro.obs import Telemetry, current as current_telemetry, use_telemetry
from repro.resilience.clock import SimulatedClock

from .admission import TenantQuota
from .core import ServeConfig, ServeCore
from .jobs import Job, JobRequest, JobState
from .runner import JobRunner, WorkerKilled

#: Spec shapes rotated across jobs (aliases exercised on purpose).
_SPEC_SHAPES = (
    {"num_joins": 1, "num_aggregations": 1},
    {"num_joins": 0, "order_by": True},
    {"num_tables": 2},
)

_TENANTS = ("acme", "globex", "initech")


@dataclass
class ServeChaosReport:
    """Deterministic summary of one serve chaos campaign."""

    seed: int
    runs: int
    intensity: float
    submitted: int = 0
    accepted: int = 0
    rejections: dict = field(default_factory=dict)  # code -> count
    completed: int = 0
    failed: int = 0
    expired: int = 0
    queued_at_drain: int = 0
    kills_fired: int = 0
    resumed_identical: int = 0
    poisoned: int = 0
    quarantined_specs: int = 0
    quarantine_rejections: int = 0
    drained_runs: int = 0
    lost_jobs: list = field(default_factory=list)
    mismatches: list = field(default_factory=list)
    failures: list = field(default_factory=list)

    @property
    def aborted(self) -> int:
        """CLI-compat alias: jobs that ended in a non-completed terminal
        state (failed or expired) — explicit outcomes, not losses."""
        return self.failed + self.expired

    @property
    def ok(self) -> bool:
        return (
            not self.failures
            and not self.mismatches
            and not self.lost_jobs
            and self.kills_fired == self.resumed_identical
        )

    def to_dict(self) -> dict:
        return {
            "scenario": "serve",
            "seed": self.seed,
            "runs": self.runs,
            "intensity": self.intensity,
            "submitted": self.submitted,
            "accepted": self.accepted,
            "rejections": dict(sorted(self.rejections.items())),
            "completed": self.completed,
            "failed": self.failed,
            "expired": self.expired,
            "queued_at_drain": self.queued_at_drain,
            "kills_fired": self.kills_fired,
            "resumed_identical": self.resumed_identical,
            "poisoned": self.poisoned,
            "quarantined_specs": self.quarantined_specs,
            "quarantine_rejections": self.quarantine_rejections,
            "drained_runs": self.drained_runs,
            "lost_jobs": list(self.lost_jobs),
            "mismatches": list(self.mismatches),
            "failures": list(self.failures),
            "ok": self.ok,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


@dataclass(frozen=True)
class _JobPlan:
    tenant: str
    priority: int
    seed: int
    shape: int
    poison: bool
    kill_at_save: int | None
    deadline_seconds: float | None
    service_seconds: float  # simulated wall time one execution "takes"


@dataclass(frozen=True)
class _RunPlan:
    index: int
    max_queue_depth: int
    jobs: tuple
    storm_extra: int  # extra submissions past capacity in the burst
    drain_after: int | None  # executions before a mid-campaign drain


class ServeChaosRunner:
    """Drive seeded storms through a real core + runner, inline.

    Inline and single-threaded on purpose: the worker-thread plumbing has
    its own tests; chaos wants a deterministic interleaving so two runs
    with the same seed produce byte-identical reports.
    """

    def __init__(self, seed: int = 0, runs: int = 4, intensity: float = 0.3):
        self.seed = seed
        self.runs = runs
        self.intensity = float(intensity)

    # -- planning -----------------------------------------------------------------

    def _plan(self, index: int) -> _RunPlan:
        rng = np.random.default_rng([self.seed, index])
        num_jobs = int(rng.integers(5, 9))
        drain_after = (
            int(rng.integers(1, max(num_jobs // 2, 2)))
            if rng.random() < 0.25
            else None
        )
        jobs = []
        for _ in range(num_jobs):
            poison = bool(rng.random() < 0.15 * (1 + self.intensity))
            # Kills only in non-drain runs: a drain truncates execution,
            # and the audit demands every fired kill leads to a verified
            # resume.  The rng draw happens regardless so the rest of the
            # plan is unaffected by the drain coin-flip.
            kill_drawn = (
                int(rng.integers(1, 8))
                if (not poison and rng.random() < 0.35)
                else None
            )
            kill = kill_drawn if drain_after is None else None
            # Kills and deadlines are mutually exclusive per job: the
            # resumed-twin comparison needs a deadline-free execution.
            deadline = (
                float(rng.uniform(0.5, 4.0))
                if (kill_drawn is None and not poison and rng.random() < 0.3)
                else None
            )
            jobs.append(
                _JobPlan(
                    tenant=_TENANTS[int(rng.integers(0, len(_TENANTS)))],
                    priority=int(rng.integers(0, 10)),
                    seed=int(rng.integers(1, 2**16)),
                    shape=int(rng.integers(0, len(_SPEC_SHAPES))),
                    poison=poison,
                    kill_at_save=kill,
                    deadline_seconds=deadline,
                    service_seconds=float(rng.uniform(0.2, 1.5)),
                )
            )
        return _RunPlan(
            index=index,
            max_queue_depth=int(rng.integers(4, 8)),
            jobs=tuple(jobs),
            storm_extra=int(rng.integers(3, 7)),
            drain_after=drain_after,
        )

    @staticmethod
    def _payload(plan: _JobPlan) -> dict:
        payload = {
            "tenant": plan.tenant,
            "priority": plan.priority,
            "seed": plan.seed,
            "specs": [dict(_SPEC_SHAPES[plan.shape])],
            "queries": 8,
            "intervals": 2,
        }
        if plan.poison:
            # Shallow validation passes; distribution construction in the
            # worker fails deterministically.
            payload["cost_min"] = 500.0
            payload["cost_max"] = 100.0
        if plan.deadline_seconds is not None:
            payload["deadline_seconds"] = plan.deadline_seconds
        return payload

    # -- one campaign run ----------------------------------------------------------

    def _one_run(self, plan: _RunPlan, report: ServeChaosReport) -> None:
        clock = SimulatedClock()
        workdir = tempfile.mkdtemp(prefix="repro-serve-chaos-")
        core = ServeCore(
            ServeConfig(
                workers=2,
                max_queue_depth=plan.max_queue_depth,
                # Generous tenant quotas: this scenario storms the *global*
                # queue; tenant-quota math has its own unit coverage.
                default_quota=TenantQuota(
                    max_concurrent_jobs=2, max_queued_jobs=32
                ),
                poison_quarantine_after=2,
                checkpoint_root=workdir,
            ),
            clock=clock,
        )
        try:
            self._submit_storm(plan, core, report)
            self._execute_all(plan, core, report, clock)
            self._poison_aftermath(plan, core, report)
            report.lost_jobs.extend(
                f"run{plan.index}:{job_id}" for job_id in core.audit_lost_jobs()
            )
            report.quarantined_specs += len(core.quarantined_specs)
            for job in core.jobs.values():
                if job.state == JobState.COMPLETED:
                    report.completed += 1
                elif job.state == JobState.FAILED:
                    report.failed += 1
                    if "poisoned spec" in (job.error or ""):
                        report.poisoned += 1
                elif job.state == JobState.EXPIRED:
                    report.expired += 1
                elif job.state == JobState.QUEUED:
                    report.queued_at_drain += 1
                elif job.state == JobState.RUNNING:
                    report.failures.append(
                        {
                            "run": plan.index,
                            "error": f"{job.job_id} still RUNNING at audit",
                        }
                    )
        finally:
            shutil.rmtree(workdir, ignore_errors=True)

    def _submit_storm(self, plan, core, report) -> None:
        """The full burst up front: accepted jobs queue, overflow must be
        explicitly rejected with a retry hint."""
        payloads = [self._payload(job) for job in plan.jobs]
        # The storm: resubmit the first payloads beyond queue capacity.
        for extra in range(plan.storm_extra):
            payloads.append(self._payload(plan.jobs[extra % len(plan.jobs)]))
        for payload in payloads:
            report.submitted += 1
            status, body = core.submit(payload)
            if status == 202:
                report.accepted += 1
                continue
            code = body.get("code", body.get("error", "unknown"))
            report.rejections[code] = report.rejections.get(code, 0) + 1
            if (
                status == 429
                and code in ("queue_full", "tenant_queue_full")
                and body.get("retry_after_seconds") is None
            ):
                report.failures.append(
                    {
                        "run": plan.index,
                        "error": f"429 {code} without retry-after",
                    }
                )

    def _execute_all(self, plan, core, report, clock) -> None:
        """Inline worker loop: claim → (maybe kill) → finish, slow workers
        aging the queue between executions."""
        plan_cache: dict = {}
        executions = 0
        while True:
            job = core.claim("chaos-worker")
            if job is None:
                break
            job_plan = self._match_plan(plan, job, plan_cache)
            outcome = self._execute(job, job_plan, core, report, plan.index)
            if outcome is not None:
                core.finish(job, outcome)
            executions += 1
            # Slow worker: the queue ages while this job "ran".
            clock.advance(
                job_plan.service_seconds if job_plan is not None else 0.5
            )
            if plan.drain_after is not None and executions == plan.drain_after:
                core.drain()
                report.drained_runs += 1
                # Post-drain submissions must be explicitly refused.
                report.submitted += 1
                status, _body = core.submit(self._payload(plan.jobs[0]))
                if status != 503:
                    report.failures.append(
                        {
                            "run": plan.index,
                            "error": f"drain admitted a job (status {status})",
                        }
                    )
                else:
                    report.rejections["draining"] = (
                        report.rejections.get("draining", 0) + 1
                    )
                # Workers stop claiming: queued jobs stay queued — still
                # accountable, which the post-run audit verifies.
                break

    def _match_plan(self, plan, job: Job, cache) -> _JobPlan | None:
        """Recover which _JobPlan produced this job (payloads can repeat —
        any plan with the same payload is behaviorally identical)."""
        key = job.request.spec_key() + f":{job.request.priority}"
        if key not in cache:
            cache[key] = None
            for candidate in plan.jobs:
                request = JobRequest.from_payload(self._payload(candidate))
                if request.spec_key() + f":{candidate.priority}" == key:
                    cache[key] = candidate
                    break
        return cache[key]

    def _execute(self, job, job_plan, core, report, run_index) -> dict | None:
        """One attempt; returns the outcome for finish(), or None when the
        attempt ended in requeue (kill) instead."""
        kill_at = (
            job_plan.kill_at_save
            if (
                job_plan is not None
                and job_plan.kill_at_save is not None
                and job.attempts == 1
            )
            else None
        )

        def on_point(point: str) -> None:
            if kill_at is not None and point == f"checkpoint_save:{kill_at}":
                raise WorkerKilled(f"chaos kill at {point}")

        runner = JobRunner(clock=core.clock, on_point=on_point)
        resume = job.resume
        max_tokens = core.effective_max_tokens(job)
        try:
            outcome = runner.run(job, resume=resume, max_tokens=max_tokens)
        except WorkerKilled:
            report.kills_fired += 1
            core.requeue_after_crash(job)
            return None
        if resume and not outcome.error:
            # The job survived a kill: its fingerprint must match an
            # uninterrupted twin run under identical knobs.
            twin = self._twin_fingerprint(job, max_tokens)
            if twin == outcome.result["fingerprint"]:
                report.resumed_identical += 1
            else:
                report.mismatches.append({"run": run_index, "job": job.job_id})
        return outcome.to_core()

    def _twin_fingerprint(self, job: Job, max_tokens: int | None) -> str:
        """Run the same request uninterrupted (no checkpoint dir, fresh
        clock — nothing about the service's history may leak in)."""
        twin = Job(
            job_id=f"{job.job_id}-twin",
            request=job.request,
            checkpoint_dir=None,
        )
        runner = JobRunner(clock=SimulatedClock())
        outcome = runner.run(twin, max_tokens=max_tokens)
        if outcome.error or not outcome.result:
            return f"twin-failed: {outcome.error}"
        return outcome.result["fingerprint"]

    def _poison_aftermath(self, plan, core, report) -> None:
        """Resubmit every poisoned payload: quarantined specs must now be
        refused at admission with 422."""
        if core.draining:
            return  # drain rejections already proven above
        for job_plan in plan.jobs:
            if not job_plan.poison:
                continue
            payload = self._payload(job_plan)
            report.submitted += 1
            status, body = core.submit(payload)
            if status == 202:
                # Not yet quarantined (fewer strikes than the threshold) —
                # legitimate; run the job out so the audit stays clean.
                report.accepted += 1
                claimed = core.claim("chaos-worker")
                while claimed is not None:
                    runner = JobRunner(clock=core.clock)
                    outcome = runner.run(claimed)
                    core.finish(claimed, outcome.to_core())
                    claimed = core.claim("chaos-worker")
            else:
                code = body.get("code", "unknown")
                report.rejections[code] = report.rejections.get(code, 0) + 1
                if code == "spec_quarantined":
                    report.quarantine_rejections += 1

    # -- the campaign ----------------------------------------------------------------

    def run(self) -> ServeChaosReport:
        report = ServeChaosReport(
            seed=self.seed, runs=self.runs, intensity=self.intensity
        )
        telemetry = current_telemetry()
        with telemetry.span("serve_chaos.run", seed=self.seed, runs=self.runs):
            for index in range(self.runs):
                plan = self._plan(index)
                try:
                    self._one_run(plan, report)
                except Exception as error:  # the bar: never a stack trace
                    report.failures.append(
                        {
                            "run": index,
                            "error": f"{type(error).__name__}: {error}",
                        }
                    )
                    telemetry.count("serve_chaos.failures")
                telemetry.count("serve_chaos.runs")
        return report


def run_serve_chaos(
    seed: int = 0,
    runs: int = 4,
    intensity: float = 0.3,
    trace_path: str | None = None,
) -> ServeChaosReport:
    """CLI/CI entry point, mirroring ``run_chaos_campaign``'s shape."""
    runner = ServeChaosRunner(seed=seed, runs=runs, intensity=intensity)
    sinks = []
    if trace_path is not None:
        from repro.obs import JsonlSink

        sinks.append(JsonlSink(trace_path))
    telemetry = Telemetry(sinks=sinks)
    try:
        with use_telemetry(telemetry):
            return runner.run()
    finally:
        telemetry.finish()
