"""A minimal stdlib client for the serve API (CLI, bench, tests).

``http.client`` only — the point of the serve layer is that any HTTP
client works (the README quickstart uses curl); this one exists so
``repro submit`` / ``repro jobs`` and the load harness don't each
hand-roll request plumbing.
"""

from __future__ import annotations

import http.client
import json
import time
from urllib.parse import urlsplit


class ServeClientError(Exception):
    """Transport-level failure talking to the service."""


class ServeClient:
    """Thin JSON-over-HTTP wrapper; every call opens one connection."""

    def __init__(self, url: str, timeout_seconds: float = 10.0):
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme != "http" or not parts.hostname:
            raise ServeClientError(f"unsupported service URL {url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout_seconds = timeout_seconds

    def request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict, dict]:
        """One exchange → (status, parsed JSON body, response headers)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_seconds
        )
        try:
            payload = (
                json.dumps(body).encode("utf-8") if body is not None else None
            )
            headers = (
                {"Content-Type": "application/json"} if payload else {}
            )
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            parsed = json.loads(raw.decode("utf-8")) if raw else {}
            return (
                response.status,
                parsed,
                {k.lower(): v for k, v in response.getheaders()},
            )
        except (OSError, json.JSONDecodeError) as error:
            raise ServeClientError(
                f"{method} {path} against {self.host}:{self.port} failed: "
                f"{type(error).__name__}: {error}"
            ) from error
        finally:
            connection.close()

    # -- conveniences ------------------------------------------------------------------

    def health(self) -> dict:
        return self.request("GET", "/healthz")[1]

    def submit(self, job_payload: dict) -> tuple[int, dict, dict]:
        return self.request("POST", "/v1/jobs", job_payload)

    def job(self, job_id: str) -> tuple[int, dict]:
        status, body, _headers = self.request("GET", f"/v1/jobs/{job_id}")
        return status, body

    def jobs(self) -> list[dict]:
        return self.request("GET", "/v1/jobs")[1]["jobs"]

    def stats(self) -> dict:
        return self.request("GET", "/v1/stats")[1]

    def drain(self) -> dict:
        return self.request("POST", "/v1/drain")[1]

    def recovery(self) -> dict | None:
        """The service's recovery report, or None if it started fresh
        (no durable state dir, or nothing to replay)."""
        return self.stats().get("recovery")

    def wait_for(
        self,
        job_id: str,
        timeout_seconds: float = 60.0,
        poll_seconds: float = 0.05,
    ) -> dict:
        """Poll until *job_id* reaches a terminal state."""
        from .jobs import JobState

        deadline = time.monotonic() + timeout_seconds
        while True:
            status, body = self.job(job_id)
            if status == 200 and body.get("state") in JobState.TERMINAL:
                return body
            if time.monotonic() >= deadline:
                raise ServeClientError(
                    f"job {job_id} still {body.get('state')!r} after "
                    f"{timeout_seconds}s"
                )
            time.sleep(poll_seconds)
