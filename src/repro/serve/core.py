"""The serve core: a deterministic, lock-guarded job state machine.

:class:`ServeCore` owns every piece of mutable service state — the
priority queue, the job table, tenant accounts, the poisoned-spec
quarantine ledger, and the drain flag — behind one mutex.  It is
deliberately synchronous and transport-free: the asyncio HTTP layer, the
thread worker pool, the load harness, and the chaos campaigns all drive
the same core, so the chaos invariants (explicit verdicts, zero lost
jobs) hold verbatim for the real server.

Time comes from a pluggable :class:`~repro.resilience.clock.Clock`;
under :class:`~repro.resilience.clock.SimulatedClock` every deadline
expiry and retry-after hint is a pure function of the submission
sequence, which is what makes the serve chaos reports byte-identical
across runs.

**Durability.**  With a :class:`~repro.serve.store.JobStore` attached,
every lifecycle transition is journaled *after* it mutates state, while
the core lock is still held — the journal is therefore a serialized
history of the state machine, and :meth:`ServeCore.recover` replays it
into a fresh process:

* queued jobs re-enter the priority heap in their original
  priority-FIFO order (the heap sequence number is journaled);
* jobs that were RUNNING at the moment of death go back through the
  existing :meth:`requeue_after_crash` strike path, so a job that keeps
  killing whole *services* poisons out exactly like one that kills
  workers;
* CHECKPOINTED jobs are resurrected to QUEUED with ``resume=True`` —
  their checkpoint dirs carry the progress, and the checkpoint layer's
  contract makes the finished fingerprint bit-identical to an
  uninterrupted run;
* tenant ledgers (token/dollar spend, lifetime counts), spec-quarantine
  strikes, rejection counters, and rate-limiter buckets are all
  reconstructed from the same records.

Recovery is damage-tolerant: whatever the store quarantined (torn
tails, bit flips, truncated segments) plus any record that no longer
applies (e.g. one referencing a job whose submission record was lost)
lands in ``core.recovery`` — a machine-readable report surfaced through
``stats()`` and the serve summary — and ``audit_lost_jobs()`` must come
back empty afterwards, exactly as it must after any storm.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import current as current_telemetry
from repro.resilience.clock import Clock, SystemClock

from .admission import (
    CONSUMING_REJECTION_CODES,
    AdmissionController,
    TenantAccount,
    TenantQuota,
)
from .jobs import BadRequest, Job, JobRequest, JobState
from .store import JobStore


@dataclass(frozen=True)
class ServeConfig:
    """Service-level tunables (the request-level ones ride in JobRequest)."""

    workers: int = 2
    max_queue_depth: int = 32
    nominal_job_seconds: float = 2.0
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    quotas: dict = field(default_factory=dict)  # tenant -> TenantQuota
    #: Worker-crashing failures one spec_key survives before quarantine.
    poison_quarantine_after: int = 2
    #: Attempts (original + resumes) one job gets before it fails for good.
    max_attempts: int = 3
    checkpoint_root: str = "serve-checkpoints"
    #: Directory for the durable job journal; None = ephemeral service
    #: (accepted work dies with the process, the pre-journal behavior).
    state_dir: str | None = None
    #: "always" | "rotate" | "off" — see :mod:`repro.serve.store`.
    journal_fsync: str = "rotate"
    segment_max_records: int = 512
    compact_after_segments: int = 4


class ServeCore:
    """Admission → queue → dispatch → completion, under one lock."""

    def __init__(
        self,
        config: ServeConfig,
        clock: Clock | None = None,
        store: JobStore | None = None,
    ):
        self.config = config
        self.clock = clock if clock is not None else SystemClock()
        self.admission = AdmissionController(
            max_queue_depth=config.max_queue_depth,
            workers=config.workers,
            nominal_job_seconds=config.nominal_job_seconds,
            default_quota=config.default_quota,
            quotas=dict(config.quotas),
        )
        self._lock = threading.Lock()
        self._next_seq = 1
        self._heap: list = []  # (-priority, seq, job_id)
        self.jobs: dict[str, Job] = {}
        self.accounts: dict[str, TenantAccount] = {}
        self.draining = False
        #: Set when a drain ran to completion in *this* process lifetime
        #: (journaled as a terminal ``drained`` record).
        self.drained = False
        #: spec_key -> worker-crash count; keys past the threshold are
        #: quarantined for every tenant (the governor's strike ledger,
        #: applied to specs instead of templates).
        self.spec_strikes: dict[str, int] = {}
        self.quarantined_specs: set[str] = set()
        self.rejections: dict[str, int] = {}  # code -> count
        self.store = store
        #: Machine-readable recovery report (None unless built by recover()).
        self.recovery: dict | None = None
        if store is not None:
            store.snapshot_provider = self._snapshot

    @classmethod
    def open_store(cls, config: ServeConfig, **store_kwargs) -> JobStore:
        """The config's journal store (state_dir must be set)."""
        if not config.state_dir:
            raise ValueError("ServeConfig.state_dir is not set")
        return JobStore(
            Path(config.state_dir),
            fsync_policy=config.journal_fsync,
            segment_max_records=config.segment_max_records,
            compact_after_segments=config.compact_after_segments,
            **store_kwargs,
        )

    # -- submission -------------------------------------------------------------------

    def submit(self, payload) -> tuple[int, dict]:
        """One submission → (HTTP-style status, response body).

        Every outcome is explicit: 202 with a job id, 400 for a malformed
        payload, or the admission controller's rejection verbatim.  An
        accepted submission is journaled before the 202 leaves this
        method — the ACK *is* the durability contract.
        """
        try:
            request = JobRequest.from_payload(payload)
        except BadRequest as error:
            with self._lock:
                self._count_rejection("bad_request")
                self._journal(
                    "rejected", {"tenant": None, "code": "bad_request"}
                )
            return 400, {"error": "bad_request", "reason": str(error)}
        with self._lock:
            now = self.clock.now()
            account = self._account(request.tenant)
            verdict = self.admission.admit(
                account,
                queue_depth=len(self._heap),
                draining=self.draining,
                spec_quarantined=request.spec_key() in self.quarantined_specs,
                now=now,
            )
            if verdict is not None:
                self._count_rejection(verdict.code)
                self._journal(
                    "rejected",
                    {"tenant": request.tenant, "code": verdict.code},
                )
                return verdict.status, verdict.to_dict()
            seq = self._take_seq()
            job = Job(
                job_id=f"job-{seq:04d}",
                request=request,
                submitted_at=now,
                deadline_at=(
                    now + request.deadline_seconds
                    if request.deadline_seconds is not None
                    else None
                ),
                checkpoint_dir=str(
                    Path(self.config.checkpoint_root) / f"job-{seq:04d}"
                ),
            )
            job.events.append((JobState.QUEUED, now))
            job.heap_seq = seq
            self.jobs[job.job_id] = job
            heapq.heappush(self._heap, (-request.priority, seq, job.job_id))
            account.queued += 1
            account.jobs_submitted += 1
            self._count("serve.submitted", tenant=request.tenant)
            self._journal(
                "submitted",
                {
                    "job_id": job.job_id,
                    "heap_seq": seq,
                    "payload": request.to_payload(),
                    "deadline_at": job.deadline_at,
                    "checkpoint_dir": job.checkpoint_dir,
                },
            )
            return 202, {
                "job_id": job.job_id,
                "state": job.state,
                "queue_depth": len(self._heap),
            }

    # -- dispatch ---------------------------------------------------------------------

    def claim(self, worker: str) -> Job | None:
        """Hand the highest-priority runnable job to *worker*.

        Load shedding happens here: a queued job whose deadline already
        lapsed is moved to EXPIRED (an explicit terminal state, visible in
        the job table) instead of burning a worker slot on a result nobody
        is waiting for.  Jobs whose tenant is at its concurrency quota are
        skipped this round but stay queued.
        """
        with self._lock:
            now = self.clock.now()
            deferred: list = []
            claimed: Job | None = None
            while self._heap:
                entry = heapq.heappop(self._heap)
                job = self.jobs[entry[2]]
                if job.deadline_at is not None and now >= job.deadline_at:
                    job.transition(JobState.EXPIRED, now)
                    job.finished_at = now
                    job.error = (
                        f"deadline expired after "
                        f"{now - job.submitted_at:.3f}s in queue"
                    )
                    account = self._account(job.request.tenant)
                    account.queued -= 1
                    self._count("serve.expired", tenant=job.request.tenant)
                    self._journal(
                        "expired", {"job_id": job.job_id, "error": job.error}
                    )
                    continue
                account = self._account(job.request.tenant)
                if account.running >= account.quota.max_concurrent_jobs:
                    deferred.append(entry)
                    continue
                claimed = job
                break
            for entry in deferred:
                heapq.heappush(self._heap, entry)
            if claimed is None:
                return None
            account = self._account(claimed.request.tenant)
            account.queued -= 1
            account.running += 1
            claimed.transition(JobState.RUNNING, now)
            claimed.started_at = (
                claimed.started_at if claimed.started_at is not None else now
            )
            claimed.attempts += 1
            claimed.worker = worker
            if not claimed.budget_frozen:
                # Freeze the token ceiling at first dispatch: a resume must
                # run under the budget the original attempt had, or the
                # abort point moves and bit-identical resume breaks.  (The
                # ceiling is execution-only in the checkpoint run key, so
                # the checkpoint itself loads either way.)
                remaining = account.remaining_tokens()
                ceilings = [
                    c
                    for c in (claimed.request.max_tokens, remaining)
                    if c is not None
                ]
                claimed.effective_max_tokens = (
                    min(ceilings) if ceilings else None
                )
                claimed.budget_frozen = True
            self._count("serve.claimed", tenant=claimed.request.tenant)
            self._journal(
                "claimed",
                {
                    "job_id": claimed.job_id,
                    "worker": worker,
                    "attempts": claimed.attempts,
                    "started_at": claimed.started_at,
                    "effective_max_tokens": claimed.effective_max_tokens,
                },
            )
            return claimed

    def effective_max_tokens(self, job: Job) -> int | None:
        """The job's frozen token ceiling (set at first claim)."""
        return job.effective_max_tokens

    # -- completion -------------------------------------------------------------------

    def finish(self, job: Job, outcome: dict) -> None:
        """Record a finished attempt: COMPLETED, or FAILED with a reason."""
        with self._lock:
            now = self.clock.now()
            account = self._account(job.request.tenant)
            account.running -= 1
            self._bill(account, outcome)
            if outcome.get("error"):
                job.error = str(outcome["error"])
                job.transition(JobState.FAILED, now)
                self._strike_if_poisoned(job, outcome)
                self._count("serve.failed", tenant=job.request.tenant)
            else:
                job.result = outcome.get("result")
                job.transition(JobState.COMPLETED, now)
                account.jobs_completed += 1
                self._count("serve.completed", tenant=job.request.tenant)
            job.finished_at = now
            job.worker = None
            self._journal(
                "finished",
                {
                    "job_id": job.job_id,
                    "state": job.state,
                    "error": job.error,
                    "result": job.result,
                    "tokens": int(outcome.get("tokens", 0)),
                    "dollars": float(outcome.get("dollars", 0.0)),
                    "poison": bool(outcome.get("poison")),
                },
            )

    def requeue_after_crash(self, job: Job, outcome: dict | None = None) -> None:
        """A worker died mid-job: put the job back, flagged for resume.

        The job's checkpoint directory holds its progress; the next claim
        resumes from it and — by the checkpoint layer's contract —
        fingerprints bit-identically to an uninterrupted run.  Past
        ``max_attempts`` the job fails instead: a job that kills every
        worker that touches it is a poison pill, and its spec_key takes a
        quarantine strike.  Service recovery routes every job that was
        RUNNING at process death through this same path.
        """
        with self._lock:
            now = self.clock.now()
            account = self._account(job.request.tenant)
            account.running -= 1
            self._bill(account, outcome or {})
            tokens = int((outcome or {}).get("tokens", 0))
            dollars = float((outcome or {}).get("dollars", 0.0))
            if job.attempts >= self.config.max_attempts:
                job.error = (
                    f"gave up after {job.attempts} attempts "
                    f"(worker died each time)"
                )
                job.transition(JobState.FAILED, now)
                job.finished_at = now
                job.worker = None
                self._strike(job.request.spec_key())
                self._count("serve.poisoned", tenant=job.request.tenant)
                self._journal(
                    "gave_up",
                    {
                        "job_id": job.job_id,
                        "error": job.error,
                        "tokens": tokens,
                        "dollars": dollars,
                    },
                )
                return
            job.resume = True
            job.worker = None
            job.transition(JobState.QUEUED, now)
            seq = self._take_seq()
            job.heap_seq = seq
            heapq.heappush(
                self._heap, (-job.request.priority, seq, job.job_id)
            )
            account.queued += 1
            self._count("serve.requeued", tenant=job.request.tenant)
            self._journal(
                "requeued",
                {
                    "job_id": job.job_id,
                    "heap_seq": seq,
                    "tokens": tokens,
                    "dollars": dollars,
                },
            )

    def checkpoint_for_drain(self, job: Job, outcome: dict | None = None) -> None:
        """Drain landed mid-job: progress is on disk, mark it resumable."""
        with self._lock:
            now = self.clock.now()
            account = self._account(job.request.tenant)
            account.running -= 1
            self._bill(account, outcome or {})
            job.resume = True
            job.worker = None
            job.transition(JobState.CHECKPOINTED, now)
            job.finished_at = now
            self._count("serve.checkpointed", tenant=job.request.tenant)
            self._journal(
                "checkpointed",
                {
                    "job_id": job.job_id,
                    "tokens": int((outcome or {}).get("tokens", 0)),
                    "dollars": float((outcome or {}).get("dollars", 0.0)),
                },
            )

    @staticmethod
    def _bill(account: TenantAccount, outcome: dict) -> None:
        """Charge an attempt's spend to the tenant (lock already held).

        Every attempt bills — completed, failed, crashed, or drained —
        because the LLM metered all of them; this is the same
        spend-is-spend rule the budget guard applies within a run.
        """
        account.tokens_spent += int(outcome.get("tokens", 0))
        account.dollars_spent += float(outcome.get("dollars", 0.0))

    def _strike_if_poisoned(self, job: Job, outcome: dict) -> None:
        if outcome.get("poison"):
            self._strike(job.request.spec_key())

    def _strike(self, spec_key: str) -> None:
        strikes = self.spec_strikes.get(spec_key, 0) + 1
        self.spec_strikes[spec_key] = strikes
        if strikes >= self.config.poison_quarantine_after:
            self.quarantined_specs.add(spec_key)
            self._count("serve.spec_quarantined")

    # -- drain ------------------------------------------------------------------------

    def drain(self) -> dict:
        """Stop admitting; report what is in flight and what is queued.

        Queued jobs stay queued — journaled, fully described by their
        requests, and recovered by the next process.  Running jobs are the
        workers' responsibility: the drain event makes each one checkpoint
        at its next save point and hand the job to
        :meth:`checkpoint_for_drain`.
        """
        with self._lock:
            self.draining = True
            self._count("serve.drain")
            self._journal("drain", {})
            return {
                "draining": True,
                "queued": sum(
                    1
                    for j in self.jobs.values()
                    if j.state == JobState.QUEUED
                ),
                "running": sum(
                    1
                    for j in self.jobs.values()
                    if j.state == JobState.RUNNING
                ),
            }

    def mark_drained(self) -> None:
        """Drain ran to completion: journal the terminal ``drained`` record.

        Called once the worker pool has quiesced (every in-flight job is
        CHECKPOINTED or terminal).  The record tells the *next* process
        lifetime that this one ended cleanly — recovery reports
        ``clean_shutdown`` instead of treating the state dir as a crash.
        """
        with self._lock:
            if self.drained or not self.draining:
                return
            self.drained = True
            self._count("serve.drained")
            self._journal("drained", {})

    # -- introspection ------------------------------------------------------------------

    def job(self, job_id: str) -> Job | None:
        with self._lock:
            return self.jobs.get(job_id)

    def jobs_snapshot(self) -> list[dict]:
        with self._lock:
            return [
                self.jobs[job_id].to_dict() for job_id in sorted(self.jobs)
            ]

    def stats(self) -> dict:
        with self._lock:
            states: dict[str, int] = {}
            for job in self.jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            stats = {
                "draining": self.draining,
                "drained": self.drained,
                "durable": self.store is not None,
                "queue_depth": len(self._heap),
                "jobs": dict(sorted(states.items())),
                "rejections": dict(sorted(self.rejections.items())),
                "quarantined_specs": len(self.quarantined_specs),
                "tenants": {
                    name: self.accounts[name].to_dict()
                    for name in sorted(self.accounts)
                },
            }
            if self.recovery is not None:
                stats["recovery"] = self.recovery
            return stats

    def audit_lost_jobs(self) -> list[str]:
        """Job ids in no accountable state — must always be empty.

        Accountable = terminal, queued, or running.  The serve chaos
        campaign calls this after every storm — and after every recovery —
        because a non-empty answer is the one unforgivable serving bug
        (work accepted, then vanished).
        """
        with self._lock:
            queued_ids = {entry[2] for entry in self._heap}
            lost = []
            for job_id, job in sorted(self.jobs.items()):
                if job.state in JobState.TERMINAL:
                    continue
                if job.state == JobState.QUEUED and job_id in queued_ids:
                    continue
                if job.state == JobState.RUNNING and job.worker is not None:
                    continue
                lost.append(job_id)
            return lost

    def close(self) -> None:
        """Release the journal (fsync + directory lock).  Idempotent."""
        if self.store is not None:
            self.store.close()

    # -- durable state ------------------------------------------------------------------

    def state_snapshot(self) -> dict:
        """The full durable state, canonical-JSON-able.

        This is both the compaction payload and the restart chaos
        scenario's equality witness: two recoveries of the same journal
        must produce byte-identical snapshots.
        """
        with self._lock:
            return self._snapshot()

    def _snapshot(self) -> dict:
        """Lock already held (or core not yet shared)."""
        return {
            "next_seq": self._next_seq,
            "draining": self.draining,
            "drained": self.drained,
            "last_at": self.clock.now(),
            "jobs": {
                job_id: self.jobs[job_id].to_state()
                for job_id in sorted(self.jobs)
            },
            "accounts": {
                name: {
                    "tokens_spent": account.tokens_spent,
                    "dollars_spent": account.dollars_spent,
                    "jobs_submitted": account.jobs_submitted,
                    "jobs_completed": account.jobs_completed,
                }
                for name, account in sorted(self.accounts.items())
            },
            "spec_strikes": dict(sorted(self.spec_strikes.items())),
            "quarantined_specs": sorted(self.quarantined_specs),
            "rejections": dict(sorted(self.rejections.items())),
            "limiter": self.admission.limiter.state(),
        }

    # -- recovery -----------------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        config: ServeConfig,
        clock: Clock | None = None,
        *,
        takeover: bool = False,
        on_append=None,
        track_appends: bool = False,
    ) -> "ServeCore":
        """A fresh core carrying the journaled state of a dead one.

        Opens ``config.state_dir`` (acquiring its lock — a genuinely dead
        previous holder is taken over via the lock's staleness rules;
        *takeover* force-breaks it for in-process restart simulation),
        loads the newest valid snapshot, replays newer journal segments,
        then repairs what death interrupted: RUNNING jobs are requeued
        through the crash-strike path, CHECKPOINTED jobs are resurrected
        as QUEUED resumes, tenant queued/running counts and the priority
        heap are rebuilt from final job states.  Never raises for journal
        damage — see ``core.recovery`` for what was quarantined.
        """
        store = cls.open_store(
            config,
            takeover=takeover,
            on_append=on_append,
            track_appends=track_appends,
        )
        snapshot, records, quarantined = store.recover()
        core = cls(config, clock=clock, store=store)
        core._rebuild(snapshot, records, quarantined)
        return core

    def _rebuild(
        self, snapshot: dict | None, records: list, quarantined: list
    ) -> None:
        report = {
            "snapshot_loaded": snapshot is not None,
            "records_replayed": 0,
            "quarantined": list(quarantined),
            "requeued_running": 0,
            "resumed_checkpointed": 0,
            "was_draining": False,
            "clean_shutdown": False,
        }
        last_at = 0.0
        if snapshot is not None:
            last_at = max(last_at, self._restore_snapshot(snapshot))
        for record in records:
            try:
                problem = self._apply_record(record)
            except Exception as error:  # damaged data must never crash recovery
                problem = f"{type(error).__name__}: {error}"
            if problem is not None:
                report["quarantined"].append(
                    {
                        "kind": "unreplayable_record",
                        "where": f"{record.get('t')}#{record.get('n')}",
                        "detail": problem,
                    }
                )
                continue
            report["records_replayed"] += 1
            last_at = max(last_at, float(record.get("at", 0.0)))
        report["was_draining"] = self.draining
        report["clean_shutdown"] = self.drained
        self._fix_up(report, last_at)
        counts = {
            kind: sum(
                1 for q in report["quarantined"] if q["kind"] == kind
            )
            for kind in sorted(
                {q["kind"] for q in report["quarantined"]}
            )
        }
        report["quarantined_counts"] = counts
        self.recovery = report
        telemetry = current_telemetry()
        if telemetry.enabled:
            telemetry.count("serve.store.recovered")
            telemetry.count(
                "serve.store.records_replayed",
                value=report["records_replayed"],
            )
            for kind, count in counts.items():
                telemetry.count(
                    "serve.store.quarantined", kind=kind, value=count
                )
        self._journal(
            "recovered",
            {
                "records_replayed": report["records_replayed"],
                "quarantined": counts,
                "requeued_running": report["requeued_running"],
                "resumed_checkpointed": report["resumed_checkpointed"],
            },
        )

    def _restore_snapshot(self, state: dict) -> float:
        self._next_seq = int(state["next_seq"])
        self.draining = bool(state["draining"])
        self.drained = bool(state["drained"])
        self.jobs = {
            job_id: Job.from_state(job_state)
            for job_id, job_state in state["jobs"].items()
        }
        for name, ledger in state["accounts"].items():
            account = self._account(name)
            account.tokens_spent = int(ledger["tokens_spent"])
            account.dollars_spent = float(ledger["dollars_spent"])
            account.jobs_submitted = int(ledger["jobs_submitted"])
            account.jobs_completed = int(ledger["jobs_completed"])
        self.spec_strikes = {
            k: int(v) for k, v in state["spec_strikes"].items()
        }
        self.quarantined_specs = set(state["quarantined_specs"])
        self.rejections = {k: int(v) for k, v in state["rejections"].items()}
        self.admission.limiter.restore(state.get("limiter", {}))
        return float(state.get("last_at", 0.0))

    def _apply_record(self, record: dict) -> str | None:
        """Replay one journal record; a string return quarantines it."""
        rtype, at, data = record["t"], float(record["at"]), record["d"]
        if rtype == "rejected":
            code = str(data["code"])
            self.rejections[code] = self.rejections.get(code, 0) + 1
            tenant = data.get("tenant")
            if tenant is not None:
                self._account(tenant)  # live submit created it too
                if code in CONSUMING_REJECTION_CODES:
                    self.admission.limiter.force(
                        tenant, self.admission.quota_for(tenant), at
                    )
            return None
        if rtype == "submitted":
            request = JobRequest.from_payload(data["payload"])
            job = Job(
                job_id=str(data["job_id"]),
                request=request,
                submitted_at=at,
                deadline_at=data.get("deadline_at"),
                checkpoint_dir=data.get("checkpoint_dir"),
            )
            job.events.append((JobState.QUEUED, at))
            job.heap_seq = int(data["heap_seq"])
            self.jobs[job.job_id] = job
            account = self._account(request.tenant)
            account.jobs_submitted += 1
            self.admission.limiter.force(
                request.tenant, self.admission.quota_for(request.tenant), at
            )
            self._bump_seq(job.heap_seq)
            return None
        if rtype == "drain":
            self.draining = True
            return None
        if rtype == "drained":
            self.drained = True
            return None
        if rtype == "recovered":
            return None
        job = self.jobs.get(str(data.get("job_id")))
        if job is None:
            return (
                f"references job {data.get('job_id')!r} whose submission "
                f"record was lost"
            )
        account = self._account(job.request.tenant)
        if rtype == "claimed":
            job.transition(JobState.RUNNING, at, force=True)
            job.worker = str(data["worker"])
            job.attempts = int(data["attempts"])
            job.started_at = data.get("started_at", at)
            job.effective_max_tokens = data.get("effective_max_tokens")
            job.budget_frozen = True
            return None
        if rtype == "expired":
            job.transition(JobState.EXPIRED, at, force=True)
            job.finished_at = at
            job.error = data.get("error")
            return None
        if rtype == "finished":
            job.error = data.get("error")
            job.result = data.get("result")
            job.transition(str(data["state"]), at, force=True)
            job.finished_at = at
            job.worker = None
            account.tokens_spent += int(data.get("tokens", 0))
            account.dollars_spent += float(data.get("dollars", 0.0))
            if job.state == JobState.COMPLETED:
                account.jobs_completed += 1
            if data.get("poison"):
                self._strike(job.request.spec_key())
            return None
        if rtype == "gave_up":
            job.error = data.get("error")
            job.transition(JobState.FAILED, at, force=True)
            job.finished_at = at
            job.worker = None
            account.tokens_spent += int(data.get("tokens", 0))
            account.dollars_spent += float(data.get("dollars", 0.0))
            self._strike(job.request.spec_key())
            return None
        if rtype in ("requeued", "resumed"):
            job.transition(JobState.QUEUED, at, force=True)
            job.resume = True
            job.worker = None
            job.finished_at = None
            job.heap_seq = int(data["heap_seq"])
            account.tokens_spent += int(data.get("tokens", 0))
            account.dollars_spent += float(data.get("dollars", 0.0))
            self._bump_seq(job.heap_seq)
            return None
        if rtype == "checkpointed":
            job.transition(JobState.CHECKPOINTED, at, force=True)
            job.resume = True
            job.worker = None
            job.finished_at = at
            account.tokens_spent += int(data.get("tokens", 0))
            account.dollars_spent += float(data.get("dollars", 0.0))
            return None
        return f"unknown record type {rtype!r}"

    def _fix_up(self, report: dict, last_at: float) -> None:
        """Repair what process death interrupted (after replay)."""
        # Rebuild queue/running accounting and the heap from final states.
        for account in self.accounts.values():
            account.queued = 0
            account.running = 0
        self._heap = []
        for job_id in sorted(self.jobs):
            job = self.jobs[job_id]
            account = self._account(job.request.tenant)
            if job.state == JobState.QUEUED:
                account.queued += 1
                heapq.heappush(
                    self._heap,
                    (-job.request.priority, job.heap_seq, job.job_id),
                )
            elif job.state == JobState.RUNNING:
                account.running += 1
        # Rebase forward-looking times onto this process's clock: the old
        # clock died with the old process (monotonic clocks do not span
        # restarts), so each pending deadline keeps its *remaining*
        # budget relative to the journal's last event.
        shift = self.clock.now() - last_at
        if shift != 0.0:
            for job in self.jobs.values():
                if (
                    job.deadline_at is not None
                    and job.state not in JobState.TERMINAL
                ):
                    job.deadline_at += shift
            self.admission.limiter.shift(shift)
        # A fresh process accepts work again, whatever the old one was doing.
        self.draining = False
        self.drained = False
        # RUNNING jobs lost their worker with the process: the existing
        # crash path decides requeue-for-resume vs. poison-strike.
        for job_id in sorted(self.jobs):
            job = self.jobs[job_id]
            if job.state == JobState.RUNNING:
                self.requeue_after_crash(job)
                report["requeued_running"] += 1
        # CHECKPOINTED jobs were terminal only for the dead lifetime:
        # their checkpoints resume bit-identically, so put them back.
        for job_id in sorted(self.jobs):
            job = self.jobs[job_id]
            if job.state == JobState.CHECKPOINTED:
                with self._lock:
                    now = self.clock.now()
                    job.transition(JobState.QUEUED, now, force=True)
                    job.resume = True
                    job.finished_at = None
                    seq = self._take_seq()
                    job.heap_seq = seq
                    heapq.heappush(
                        self._heap,
                        (-job.request.priority, seq, job.job_id),
                    )
                    self._account(job.request.tenant).queued += 1
                    self._count(
                        "serve.resumed_checkpointed",
                        tenant=job.request.tenant,
                    )
                    self._journal(
                        "resumed", {"job_id": job.job_id, "heap_seq": seq}
                    )
                report["resumed_checkpointed"] += 1

    # -- internals ----------------------------------------------------------------------

    def _take_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def _bump_seq(self, seen: int) -> None:
        if seen >= self._next_seq:
            self._next_seq = seen + 1

    def _journal(self, rtype: str, data: dict) -> None:
        """Append one transition record (caller holds the lock)."""
        if self.store is not None:
            self.store.append(rtype, data, at=self.clock.now())

    def _account(self, tenant: str) -> TenantAccount:
        account = self.accounts.get(tenant)
        if account is None:
            account = TenantAccount(
                tenant=tenant, quota=self.admission.quota_for(tenant)
            )
            self.accounts[tenant] = account
        return account

    def _count_rejection(self, code: str) -> None:
        """Tally one explicit refusal (caller holds the lock)."""
        self.rejections[code] = self.rejections.get(code, 0) + 1
        self._count("serve.rejected", code=code)

    def _count(self, name: str, **attrs) -> None:
        telemetry = current_telemetry()
        if telemetry.enabled:
            telemetry.count(name, **attrs)
