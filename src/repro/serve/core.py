"""The serve core: a deterministic, lock-guarded job state machine.

:class:`ServeCore` owns every piece of mutable service state — the
priority queue, the job table, tenant accounts, the poisoned-spec
quarantine ledger, and the drain flag — behind one mutex.  It is
deliberately synchronous and transport-free: the asyncio HTTP layer, the
thread worker pool, the load harness, and the chaos campaign all drive
the same core, so the chaos campaign's invariants (explicit verdicts,
zero lost jobs) hold verbatim for the real server.

Time comes from a pluggable :class:`~repro.resilience.clock.Clock`;
under :class:`~repro.resilience.clock.SimulatedClock` every deadline
expiry and retry-after hint is a pure function of the submission
sequence, which is what makes the serve chaos reports byte-identical
across runs.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import current as current_telemetry
from repro.resilience.clock import Clock, SystemClock

from .admission import AdmissionController, TenantAccount, TenantQuota
from .jobs import BadRequest, Job, JobRequest, JobState


@dataclass(frozen=True)
class ServeConfig:
    """Service-level tunables (the request-level ones ride in JobRequest)."""

    workers: int = 2
    max_queue_depth: int = 32
    nominal_job_seconds: float = 2.0
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    quotas: dict = field(default_factory=dict)  # tenant -> TenantQuota
    #: Worker-crashing failures one spec_key survives before quarantine.
    poison_quarantine_after: int = 2
    #: Attempts (original + resumes) one job gets before it fails for good.
    max_attempts: int = 3
    checkpoint_root: str = "serve-checkpoints"


class ServeCore:
    """Admission → queue → dispatch → completion, under one lock."""

    def __init__(self, config: ServeConfig, clock: Clock | None = None):
        self.config = config
        self.clock = clock if clock is not None else SystemClock()
        self.admission = AdmissionController(
            max_queue_depth=config.max_queue_depth,
            workers=config.workers,
            nominal_job_seconds=config.nominal_job_seconds,
            default_quota=config.default_quota,
            quotas=dict(config.quotas),
        )
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self._heap: list = []  # (-priority, seq, job_id)
        self.jobs: dict[str, Job] = {}
        self.accounts: dict[str, TenantAccount] = {}
        self.draining = False
        #: spec_key -> worker-crash count; keys past the threshold are
        #: quarantined for every tenant (the governor's strike ledger,
        #: applied to specs instead of templates).
        self.spec_strikes: dict[str, int] = {}
        self.quarantined_specs: set[str] = set()
        self.rejections: dict[str, int] = {}  # code -> count

    # -- submission -------------------------------------------------------------------

    def submit(self, payload) -> tuple[int, dict]:
        """One submission → (HTTP-style status, response body).

        Every outcome is explicit: 202 with a job id, 400 for a malformed
        payload, or the admission controller's rejection verbatim.
        """
        try:
            request = JobRequest.from_payload(payload)
        except BadRequest as error:
            with self._lock:
                self._count_rejection("bad_request")
            return 400, {"error": "bad_request", "reason": str(error)}
        with self._lock:
            account = self._account(request.tenant)
            verdict = self.admission.admit(
                account,
                queue_depth=len(self._heap),
                draining=self.draining,
                spec_quarantined=request.spec_key() in self.quarantined_specs,
            )
            if verdict is not None:
                self._count_rejection(verdict.code)
                return verdict.status, verdict.to_dict()
            now = self.clock.now()
            seq = next(self._seq)
            job = Job(
                job_id=f"job-{seq:04d}",
                request=request,
                submitted_at=now,
                deadline_at=(
                    now + request.deadline_seconds
                    if request.deadline_seconds is not None
                    else None
                ),
                checkpoint_dir=str(
                    Path(self.config.checkpoint_root) / f"job-{seq:04d}"
                ),
            )
            job.events.append((JobState.QUEUED, now))
            self.jobs[job.job_id] = job
            heapq.heappush(self._heap, (-request.priority, seq, job.job_id))
            account.queued += 1
            account.jobs_submitted += 1
            self._count("serve.submitted", tenant=request.tenant)
            return 202, {
                "job_id": job.job_id,
                "state": job.state,
                "queue_depth": len(self._heap),
            }

    # -- dispatch ---------------------------------------------------------------------

    def claim(self, worker: str) -> Job | None:
        """Hand the highest-priority runnable job to *worker*.

        Load shedding happens here: a queued job whose deadline already
        lapsed is moved to EXPIRED (an explicit terminal state, visible in
        the job table) instead of burning a worker slot on a result nobody
        is waiting for.  Jobs whose tenant is at its concurrency quota are
        skipped this round but stay queued.
        """
        with self._lock:
            now = self.clock.now()
            deferred: list = []
            claimed: Job | None = None
            while self._heap:
                entry = heapq.heappop(self._heap)
                job = self.jobs[entry[2]]
                if job.deadline_at is not None and now >= job.deadline_at:
                    job.transition(JobState.EXPIRED, now)
                    job.finished_at = now
                    job.error = (
                        f"deadline expired after "
                        f"{now - job.submitted_at:.3f}s in queue"
                    )
                    account = self._account(job.request.tenant)
                    account.queued -= 1
                    self._count("serve.expired", tenant=job.request.tenant)
                    continue
                account = self._account(job.request.tenant)
                if account.running >= account.quota.max_concurrent_jobs:
                    deferred.append(entry)
                    continue
                claimed = job
                break
            for entry in deferred:
                heapq.heappush(self._heap, entry)
            if claimed is None:
                return None
            account = self._account(claimed.request.tenant)
            account.queued -= 1
            account.running += 1
            claimed.transition(JobState.RUNNING, now)
            claimed.started_at = (
                claimed.started_at if claimed.started_at is not None else now
            )
            claimed.attempts += 1
            claimed.worker = worker
            if not claimed.budget_frozen:
                # Freeze the token ceiling at first dispatch: a resume must
                # run under the budget the original attempt had, or the
                # abort point moves and bit-identical resume breaks.  (The
                # ceiling is execution-only in the checkpoint run key, so
                # the checkpoint itself loads either way.)
                remaining = account.remaining_tokens()
                ceilings = [
                    c
                    for c in (claimed.request.max_tokens, remaining)
                    if c is not None
                ]
                claimed.effective_max_tokens = (
                    min(ceilings) if ceilings else None
                )
                claimed.budget_frozen = True
            self._count("serve.claimed", tenant=claimed.request.tenant)
            return claimed

    def effective_max_tokens(self, job: Job) -> int | None:
        """The job's frozen token ceiling (set at first claim)."""
        return job.effective_max_tokens

    # -- completion -------------------------------------------------------------------

    def finish(self, job: Job, outcome: dict) -> None:
        """Record a finished attempt: COMPLETED, or FAILED with a reason."""
        with self._lock:
            now = self.clock.now()
            account = self._account(job.request.tenant)
            account.running -= 1
            self._bill(account, outcome)
            if outcome.get("error"):
                job.error = str(outcome["error"])
                job.transition(JobState.FAILED, now)
                self._strike_if_poisoned(job, outcome)
                self._count("serve.failed", tenant=job.request.tenant)
            else:
                job.result = outcome.get("result")
                job.transition(JobState.COMPLETED, now)
                account.jobs_completed += 1
                self._count("serve.completed", tenant=job.request.tenant)
            job.finished_at = now
            job.worker = None

    def requeue_after_crash(self, job: Job, outcome: dict | None = None) -> None:
        """A worker died mid-job: put the job back, flagged for resume.

        The job's checkpoint directory holds its progress; the next claim
        resumes from it and — by the checkpoint layer's contract —
        fingerprints bit-identically to an uninterrupted run.  Past
        ``max_attempts`` the job fails instead: a job that kills every
        worker that touches it is a poison pill, and its spec_key takes a
        quarantine strike.
        """
        with self._lock:
            now = self.clock.now()
            account = self._account(job.request.tenant)
            account.running -= 1
            self._bill(account, outcome or {})
            if job.attempts >= self.config.max_attempts:
                job.error = (
                    f"gave up after {job.attempts} attempts "
                    f"(worker died each time)"
                )
                job.transition(JobState.FAILED, now)
                job.finished_at = now
                job.worker = None
                self._strike(job.request.spec_key())
                self._count("serve.poisoned", tenant=job.request.tenant)
                return
            job.resume = True
            job.worker = None
            job.transition(JobState.QUEUED, now)
            heapq.heappush(
                self._heap,
                (-job.request.priority, next(self._seq), job.job_id),
            )
            account.queued += 1
            self._count("serve.requeued", tenant=job.request.tenant)

    def checkpoint_for_drain(self, job: Job, outcome: dict | None = None) -> None:
        """Drain landed mid-job: progress is on disk, mark it resumable."""
        with self._lock:
            now = self.clock.now()
            account = self._account(job.request.tenant)
            account.running -= 1
            self._bill(account, outcome or {})
            job.resume = True
            job.worker = None
            job.transition(JobState.CHECKPOINTED, now)
            job.finished_at = now
            self._count("serve.checkpointed", tenant=job.request.tenant)

    @staticmethod
    def _bill(account: TenantAccount, outcome: dict) -> None:
        """Charge an attempt's spend to the tenant (lock already held).

        Every attempt bills — completed, failed, crashed, or drained —
        because the LLM metered all of them; this is the same
        spend-is-spend rule the budget guard applies within a run.
        """
        account.tokens_spent += int(outcome.get("tokens", 0))
        account.dollars_spent += float(outcome.get("dollars", 0.0))

    def _strike_if_poisoned(self, job: Job, outcome: dict) -> None:
        if outcome.get("poison"):
            self._strike(job.request.spec_key())

    def _strike(self, spec_key: str) -> None:
        strikes = self.spec_strikes.get(spec_key, 0) + 1
        self.spec_strikes[spec_key] = strikes
        if strikes >= self.config.poison_quarantine_after:
            self.quarantined_specs.add(spec_key)
            self._count("serve.spec_quarantined")

    # -- drain ------------------------------------------------------------------------

    def drain(self) -> dict:
        """Stop admitting; report what is in flight and what is queued.

        Queued jobs stay queued (their checkpoint dirs are empty; they are
        fully described by their requests and can be resubmitted or
        re-served after restart).  Running jobs are the workers'
        responsibility: the drain event makes each one checkpoint at its
        next save point and hand the job to :meth:`checkpoint_for_drain`.
        """
        with self._lock:
            self.draining = True
            self._count("serve.drain")
            return {
                "draining": True,
                "queued": sum(
                    1
                    for j in self.jobs.values()
                    if j.state == JobState.QUEUED
                ),
                "running": sum(
                    1
                    for j in self.jobs.values()
                    if j.state == JobState.RUNNING
                ),
            }

    # -- introspection ------------------------------------------------------------------

    def job(self, job_id: str) -> Job | None:
        with self._lock:
            return self.jobs.get(job_id)

    def jobs_snapshot(self) -> list[dict]:
        with self._lock:
            return [
                self.jobs[job_id].to_dict() for job_id in sorted(self.jobs)
            ]

    def stats(self) -> dict:
        with self._lock:
            states: dict[str, int] = {}
            for job in self.jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "draining": self.draining,
                "queue_depth": len(self._heap),
                "jobs": dict(sorted(states.items())),
                "rejections": dict(sorted(self.rejections.items())),
                "quarantined_specs": len(self.quarantined_specs),
                "tenants": {
                    name: self.accounts[name].to_dict()
                    for name in sorted(self.accounts)
                },
            }

    def audit_lost_jobs(self) -> list[str]:
        """Job ids in no accountable state — must always be empty.

        Accountable = terminal, queued, or running.  The serve chaos
        campaign calls this after every storm; a non-empty answer is the
        one unforgivable serving bug (work accepted, then vanished).
        """
        with self._lock:
            queued_ids = {entry[2] for entry in self._heap}
            lost = []
            for job_id, job in sorted(self.jobs.items()):
                if job.state in JobState.TERMINAL:
                    continue
                if job.state == JobState.QUEUED and job_id in queued_ids:
                    continue
                if job.state == JobState.RUNNING and job.worker is not None:
                    continue
                lost.append(job_id)
            return lost

    # -- internals ----------------------------------------------------------------------

    def _account(self, tenant: str) -> TenantAccount:
        account = self.accounts.get(tenant)
        if account is None:
            account = TenantAccount(
                tenant=tenant, quota=self.admission.quota_for(tenant)
            )
            self.accounts[tenant] = account
        return account

    def _count_rejection(self, code: str) -> None:
        """Tally one explicit refusal (caller holds the lock)."""
        self.rejections[code] = self.rejections.get(code, 0) + 1
        self._count("serve.rejected", code=code)

    def _count(self, name: str, **attrs) -> None:
        telemetry = current_telemetry()
        if telemetry.enabled:
            telemetry.count(name, **attrs)
