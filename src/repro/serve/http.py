"""The HTTP front door: asyncio + a handwritten HTTP/1.1 exchange.

Stdlib only, by design: ``asyncio.start_server`` moves bytes, ~100 lines
here parse one request and format one response, and every route is a thin
translation onto :class:`~repro.serve.core.ServeCore` — which is where
all behavior (admission, verdicts, drain) actually lives and is tested.

Routes::

    POST /v1/jobs       submit a job        → 202 {job_id} | 400/422/429/503
    GET  /v1/jobs       list jobs           → 200 [ ... ]
    GET  /v1/jobs/<id>  one job             → 200 {...} | 404
    GET  /v1/stats      service counters    → 200 {...}
    GET  /healthz       liveness/drain      → 200 {"status": ...}
    POST /v1/drain      begin graceful drain→ 200 {...}

Rejections with a ``retry_after_seconds`` hint carry a ``Retry-After``
header, so well-behaved clients back off without parsing the body.

Execution happens on a pool of worker *threads* (the pipeline is
synchronous CPU-bound Python); the asyncio loop never blocks on a job.
Graceful drain — ``POST /v1/drain`` or SIGTERM via the CLI — stops
admission (503 + Retry-After), lets each in-flight job reach its next
durable checkpoint, records it CHECKPOINTED (resumable), and only then
lets the process exit.  Queued jobs stay queued in the job table: fully
described by their requests, never silently dropped.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

from .core import ServeCore
from .runner import DrainRequested, JobRunner, WorkerKilled

_MAX_BODY_BYTES = 1 << 20  # 1 MiB: a spec pack, not a bulk upload
_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _response(status: int, body: dict, extra_headers: dict | None = None) -> bytes:
    payload = (json.dumps(body, sort_keys=True) + "\n").encode("utf-8")
    headers = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(payload)}",
        "Connection: close",
    ]
    for key, value in (extra_headers or {}).items():
        headers.append(f"{key}: {value}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode("ascii") + payload


class ServeServer:
    """One ServeCore behind an asyncio listener and a worker-thread pool."""

    def __init__(
        self,
        core: ServeCore,
        host: str = "127.0.0.1",
        port: int = 0,
        runner_factory=None,
        worker_poll_seconds: float = 0.02,
        request_timeout_seconds: float = 10.0,
    ):
        self.core = core
        self.host = host
        self.port = port
        self.worker_poll_seconds = worker_poll_seconds
        self.request_timeout_seconds = request_timeout_seconds
        self._runner_factory = runner_factory or self._default_runner
        self._server: asyncio.AbstractServer | None = None
        self._workers: list[threading.Thread] = []
        self._stop = threading.Event()
        self._drain_event = threading.Event()

    # -- worker pool -------------------------------------------------------------------

    def _default_runner(self, worker: str) -> JobRunner:
        return JobRunner(clock=self.core.clock, on_point=self._drain_point)

    def _drain_point(self, point: str) -> None:
        """Drain lands only at durable points: the save just hit disk."""
        if self._drain_event.is_set() and point.startswith("checkpoint_save:"):
            raise DrainRequested(f"drain at {point}")

    def _worker_loop(self, name: str) -> None:
        runner = self._runner_factory(name)
        while not self._stop.is_set():
            job = self.core.claim(name)
            if job is None:
                if self._drain_event.is_set():
                    return  # queue is quiet and no new work is admitted
                time.sleep(self.worker_poll_seconds)
                continue
            resume = job.resume
            max_tokens = self.core.effective_max_tokens(job)
            try:
                outcome = runner.run(job, resume=resume, max_tokens=max_tokens)
            except DrainRequested:
                self.core.checkpoint_for_drain(job)
                return
            except WorkerKilled:
                # Simulated worker death (chaos/CI): account the job back
                # to the queue, then die like the real thing would.
                self.core.requeue_after_crash(job)
                return
            self.core.finish(job, outcome.to_core())

    def _spawn_workers(self) -> None:
        for index in range(self.core.config.workers):
            name = f"worker-{index}"
            thread = threading.Thread(
                target=self._worker_loop, args=(name,), name=name, daemon=True
            )
            thread.start()
            self._workers.append(thread)

    # -- the protocol -------------------------------------------------------------------

    async def _read_request(self, reader) -> tuple[str, str, dict | None]:
        request_line = await reader.readline()
        if not request_line:
            raise ConnectionError("empty request")
        try:
            method, target, _version = (
                request_line.decode("ascii").strip().split(" ", 2)
            )
        except ValueError:
            raise ValueError("malformed request line") from None
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            key, _, value = line.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        body = None
        length = int(headers.get("content-length", 0) or 0)
        if length > _MAX_BODY_BYTES:
            raise OverflowError(f"body of {length} bytes exceeds limit")
        if length:
            raw = await reader.readexactly(length)
            body = json.loads(raw.decode("utf-8"))
        return method, target, body

    async def _handle(self, reader, writer) -> None:
        try:
            try:
                method, target, body = await asyncio.wait_for(
                    self._read_request(reader),
                    timeout=self.request_timeout_seconds,
                )
            except asyncio.TimeoutError:
                writer.write(_response(408, {"error": "request_timeout"}))
                return
            except OverflowError as error:
                writer.write(_response(413, {"error": str(error)}))
                return
            except (ValueError, json.JSONDecodeError, asyncio.IncompleteReadError):
                writer.write(
                    _response(400, {"error": "malformed HTTP request or body"})
                )
                return
            except ConnectionError:
                return
            writer.write(self._route(method, target, body))
        except Exception as error:  # the front door never stack-traces
            try:
                writer.write(
                    _response(500, {"error": f"{type(error).__name__}: {error}"})
                )
            except Exception:
                pass
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _route(self, method: str, target: str, body) -> bytes:
        target = target.split("?", 1)[0]
        if target == "/healthz" and method == "GET":
            return _response(
                200,
                {
                    "status": "draining" if self.core.draining else "ok",
                    "workers": self.core.config.workers,
                },
            )
        if target == "/v1/jobs" and method == "POST":
            status, payload = self.core.submit(body)
            headers = {}
            retry_after = payload.get("retry_after_seconds")
            if retry_after is not None:
                headers["Retry-After"] = f"{retry_after:g}"
            return _response(status, payload, headers)
        if target == "/v1/jobs" and method == "GET":
            return _response(200, {"jobs": self.core.jobs_snapshot()})
        if target.startswith("/v1/jobs/") and method == "GET":
            job = self.core.job(target.rsplit("/", 1)[1])
            if job is None:
                return _response(404, {"error": "no such job"})
            return _response(200, job.to_dict())
        if target == "/v1/stats" and method == "GET":
            return _response(200, self.core.stats())
        if target == "/v1/drain" and method == "POST":
            summary = self.begin_drain()
            return _response(200, summary)
        if target in ("/healthz", "/v1/jobs", "/v1/stats", "/v1/drain"):
            return _response(405, {"error": f"{method} not allowed here"})
        return _response(404, {"error": f"no route for {target}"})

    # -- lifecycle ---------------------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._spawn_workers()

    def begin_drain(self) -> dict:
        """Stop admission and ask in-flight jobs to checkpoint (non-blocking)."""
        summary = self.core.drain()
        self._drain_event.set()
        return summary

    async def drain_and_stop(self, timeout_seconds: float = 30.0) -> dict:
        """Graceful shutdown: drain, wait for workers, close the listener."""
        summary = self.begin_drain()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._join_workers, timeout_seconds)
        # Workers are quiet: every in-flight job reached CHECKPOINTED or a
        # terminal state.  Journal the terminal `drained` record so the
        # next lifetime knows this one ended cleanly, then let go of the
        # state dir so it can take over without staleness heuristics.
        self.core.mark_drained()
        await self.stop()
        self.core.close()
        summary["drained"] = self.core.drained
        return summary

    def _join_workers(self, timeout_seconds: float) -> None:
        deadline = time.monotonic() + timeout_seconds
        for thread in self._workers:
            thread.join(timeout=max(deadline - time.monotonic(), 0.0))

    async def stop(self) -> None:
        self._stop.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_until(self, stop_event: asyncio.Event) -> dict:
        """Run until *stop_event* fires (SIGTERM in the CLI), then drain."""
        await stop_event.wait()
        return await self.drain_and_stop()


class BackgroundServer:
    """A ServeServer on its own event-loop thread (tests, bench, CLI users).

    ``start()`` blocks until the listener is bound and returns the base
    URL; ``drain_and_stop()`` performs the full graceful shutdown from the
    calling thread.
    """

    def __init__(self, server: ServeServer):
        self.server = server
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def start(self, timeout_seconds: float = 10.0) -> str:
        started = threading.Event()

        def _run() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)
            loop.run_until_complete(self.server.start())
            started.set()
            loop.run_forever()
            loop.close()

        self._thread = threading.Thread(
            target=_run, name="serve-loop", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout_seconds):
            raise RuntimeError("serve loop failed to start in time")
        return self.url

    def drain_and_stop(self, timeout_seconds: float = 30.0) -> dict:
        assert self._loop is not None
        future = asyncio.run_coroutine_threadsafe(
            self.server.drain_and_stop(timeout_seconds), self._loop
        )
        summary = future.result(timeout=timeout_seconds + 5.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        assert self._thread is not None
        self._thread.join(timeout=5.0)
        return summary
