"""The serve layer's unit of work: a tenant's generation job.

A :class:`JobRequest` is the validated form of one ``POST /v1/jobs`` body
— tenant, priority, a spec pack, a cost distribution, and optional
deadline/budget limits.  Validation is *shallow on purpose*: it proves
the payload is well-typed and self-consistent, not that the pipeline will
like it.  A payload that validates but deterministically crashes the
pipeline (a "poisoned spec") is a runtime failure the serve core counts
toward spec quarantine — admission cannot afford to dry-run every job.

A :class:`Job` is one request's lifecycle inside the service.  States:

    QUEUED ──▶ RUNNING ──▶ COMPLETED
      │           │──────▶ FAILED        (pipeline raised; may quarantine)
      │           │──────▶ CHECKPOINTED  (drain: saved, resumable)
      │           │──────▶ QUEUED        (worker died: requeued for resume)
      └─────────▶ EXPIRED                (deadline lapsed while queued)

Every transition is explicit — a job is never silently dropped; the
chaos campaign's zero-lost-jobs invariant audits exactly this.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.workload import CostDistribution, TemplateSpec


class BadRequest(Exception):
    """A submission payload that fails shallow validation (HTTP 400)."""


class JobState:
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    EXPIRED = "expired"
    CHECKPOINTED = "checkpointed"

    #: States a job can never leave (CHECKPOINTED is terminal for *this*
    #: service lifetime — the checkpoint outlives the process).
    TERMINAL = frozenset({COMPLETED, FAILED, EXPIRED, CHECKPOINTED})


#: Priorities: 0 (batch) .. 9 (interactive).  Higher runs first.
MIN_PRIORITY, MAX_PRIORITY = 0, 9


@dataclass(frozen=True)
class JobRequest:
    """One validated generation request."""

    tenant: str
    priority: int = 4
    seed: int = 0
    specs: tuple = ()  # tuple of spec payload dicts
    queries: int = 16
    intervals: int = 4
    cost_min: float = 0.0
    cost_max: float = 200.0
    cost_type: str = "plan_cost"
    deadline_seconds: float | None = None
    max_tokens: int | None = None
    max_cost_dollars: float | None = None
    query_timeout_seconds: float | None = None

    @classmethod
    def from_payload(cls, payload) -> "JobRequest":
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        known = set(cls.__dataclass_fields__)
        unknown = set(payload) - known
        if unknown:
            raise BadRequest(f"unknown fields: {sorted(unknown)}")
        tenant = payload.get("tenant")
        if not isinstance(tenant, str) or not tenant:
            raise BadRequest("'tenant' must be a non-empty string")
        priority = payload.get("priority", 4)
        if not isinstance(priority, int) or not (
            MIN_PRIORITY <= priority <= MAX_PRIORITY
        ):
            raise BadRequest(
                f"'priority' must be an integer in "
                f"[{MIN_PRIORITY}, {MAX_PRIORITY}]"
            )
        specs = payload.get("specs") or ()
        if not isinstance(specs, (list, tuple)) or not all(
            isinstance(s, dict) for s in specs
        ):
            raise BadRequest("'specs' must be a list of spec objects")
        if not specs:
            raise BadRequest("'specs' must contain at least one spec")
        for check in ("queries", "intervals", "seed"):
            value = payload.get(check, getattr(cls, check, 0))
            if check in payload and (
                not isinstance(value, int) or isinstance(value, bool)
            ):
                raise BadRequest(f"'{check}' must be an integer")
        if payload.get("queries", 16) < 1 or payload.get("intervals", 4) < 1:
            raise BadRequest("'queries' and 'intervals' must be >= 1")
        for bound in (
            "deadline_seconds",
            "max_cost_dollars",
            "query_timeout_seconds",
        ):
            value = payload.get(bound)
            if value is not None and (
                not isinstance(value, (int, float)) or value <= 0
            ):
                raise BadRequest(f"'{bound}' must be a positive number")
        max_tokens = payload.get("max_tokens")
        if max_tokens is not None and (
            not isinstance(max_tokens, int) or max_tokens <= 0
        ):
            raise BadRequest("'max_tokens' must be a positive integer")
        # Deliberately NOT validated: cost_min < cost_max.  Distribution
        # construction happens in the worker; an inverted range is the
        # canonical "poisoned spec" that admission lets through and the
        # quarantine ledger catches.
        return cls(
            tenant=tenant,
            priority=priority,
            seed=int(payload.get("seed", 0)),
            specs=tuple(dict(s) for s in specs),
            queries=int(payload.get("queries", 16)),
            intervals=int(payload.get("intervals", 4)),
            cost_min=float(payload.get("cost_min", 0.0)),
            cost_max=float(payload.get("cost_max", 200.0)),
            cost_type=str(payload.get("cost_type", "plan_cost")),
            deadline_seconds=payload.get("deadline_seconds"),
            max_tokens=max_tokens,
            max_cost_dollars=payload.get("max_cost_dollars"),
            query_timeout_seconds=payload.get("query_timeout_seconds"),
        )

    def to_payload(self) -> dict:
        return {
            "tenant": self.tenant,
            "priority": self.priority,
            "seed": self.seed,
            "specs": [dict(s) for s in self.specs],
            "queries": self.queries,
            "intervals": self.intervals,
            "cost_min": self.cost_min,
            "cost_max": self.cost_max,
            "cost_type": self.cost_type,
            "deadline_seconds": self.deadline_seconds,
            "max_tokens": self.max_tokens,
            "max_cost_dollars": self.max_cost_dollars,
            "query_timeout_seconds": self.query_timeout_seconds,
        }

    def spec_key(self) -> str:
        """Content identity of the *work* (not the tenant/priority wrapper).

        The quarantine ledger keys on this: a spec pack that keeps
        crashing workers is quarantined for every tenant and priority.
        """
        body = {
            "specs": [dict(s) for s in self.specs],
            "seed": self.seed,
            "queries": self.queries,
            "intervals": self.intervals,
            "cost_min": self.cost_min,
            "cost_max": self.cost_max,
            "cost_type": self.cost_type,
        }
        blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def build_specs(self) -> list[TemplateSpec]:
        return [
            TemplateSpec.from_json(dict(payload), spec_id=f"{self.tenant}_{i}")
            for i, payload in enumerate(self.specs)
        ]

    def build_distribution(self) -> CostDistribution:
        if self.cost_min >= self.cost_max:
            raise ValueError(
                f"cost_min {self.cost_min} must be < cost_max {self.cost_max}"
            )
        return CostDistribution.uniform(
            self.cost_min,
            self.cost_max,
            self.queries,
            self.intervals,
            cost_type=self.cost_type,
        )


@dataclass
class Job:
    """One request's lifecycle in the service."""

    job_id: str
    request: JobRequest
    state: str = JobState.QUEUED
    submitted_at: float = 0.0  # core-clock time of admission
    started_at: float | None = None
    finished_at: float | None = None
    deadline_at: float | None = None  # absolute, core-clock
    attempts: int = 0
    worker: str | None = None
    checkpoint_dir: str | None = None
    resume: bool = False  # next execution resumes a checkpoint
    # Token ceiling frozen at first dispatch: min(request cap, tenant's
    # remaining budget *then*).  Frozen so a crash-resume executes under
    # the budget the original attempt had — a drifting ceiling would move
    # the abort point and break bit-identical resume.
    effective_max_tokens: int | None = None
    budget_frozen: bool = False
    result: dict | None = None
    error: str | None = None
    #: Heap tie-breaker from the most recent enqueue (submit or requeue)
    #: — journaled so recovery rebuilds the exact priority-FIFO order.
    heap_seq: int = 0
    events: list = field(default_factory=list)  # (state, clock-time) audit

    def transition(self, state: str, at: float, *, force: bool = False) -> None:
        """Move to *state*, recording the audit event.

        Terminal states are one-way for a live service; *force* is the
        recovery path's resurrection override — a CHECKPOINTED job is
        terminal only for the process lifetime that checkpointed it, and
        a restart legitimately moves it back to QUEUED.
        """
        if not force and self.state in JobState.TERMINAL:
            raise ValueError(
                f"job {self.job_id} is terminal ({self.state}); "
                f"cannot move to {state}"
            )
        self.state = state
        self.events.append((state, at))

    def to_state(self) -> dict:
        """The job's complete durable form (journal snapshots + replay).

        Unlike :meth:`to_dict` (the API view), this round-trips — the
        request payload, budget freeze, resume flag, and the full event
        audit all survive, so a recovered job is field-for-field the job
        that was lost.
        """
        return {
            "job_id": self.job_id,
            "payload": self.request.to_payload(),
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "deadline_at": self.deadline_at,
            "attempts": self.attempts,
            "worker": self.worker,
            "checkpoint_dir": self.checkpoint_dir,
            "resume": self.resume,
            "effective_max_tokens": self.effective_max_tokens,
            "budget_frozen": self.budget_frozen,
            "result": self.result,
            "error": self.error,
            "heap_seq": self.heap_seq,
            "events": [[state, at] for state, at in self.events],
        }

    @classmethod
    def from_state(cls, state: dict) -> "Job":
        job = cls(
            job_id=str(state["job_id"]),
            request=JobRequest.from_payload(state["payload"]),
            state=str(state["state"]),
            submitted_at=float(state["submitted_at"]),
            started_at=state.get("started_at"),
            finished_at=state.get("finished_at"),
            deadline_at=state.get("deadline_at"),
            attempts=int(state.get("attempts", 0)),
            worker=state.get("worker"),
            checkpoint_dir=state.get("checkpoint_dir"),
            resume=bool(state.get("resume", False)),
            effective_max_tokens=state.get("effective_max_tokens"),
            budget_frozen=bool(state.get("budget_frozen", False)),
            result=state.get("result"),
            error=state.get("error"),
            heap_seq=int(state.get("heap_seq", 0)),
        )
        job.events = [
            (str(name), float(at)) for name, at in state.get("events", [])
        ]
        return job

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "tenant": self.request.tenant,
            "priority": self.request.priority,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "deadline_at": self.deadline_at,
            "attempts": self.attempts,
            "worker": self.worker,
            "resume": self.resume,
            "result": self.result,
            "error": self.error,
        }
