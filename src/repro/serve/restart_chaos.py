"""Restart chaos: kill the whole service at every journaled transition.

The serve chaos scenario kills *workers*; this one kills the *process*.
A seeded campaign drives a durable :class:`~repro.serve.core.ServeCore`
(journaling every transition through a
:class:`~repro.serve.store.JobStore`) on a
:class:`~repro.resilience.clock.SimulatedClock`, while the store records
the exact on-disk journal size after every single append.  The sweep
then simulates SIGKILL at *every* one of those transition points by
materializing a copy of the state directory truncated to that point's
byte sizes — the precise bytes a dead process would have left — and
recovering a fresh core from it.  At every point:

* recovery never raises, and ``audit_lost_jobs()`` is empty;
* two independent recoveries of the same bytes produce **byte-identical**
  state snapshots (canonical JSON compared as strings);
* at selected points the recovered service is run to completion and
  every completed job's fingerprint must equal the uninterrupted
  baseline's (or, for jobs the baseline never finished — e.g. drain
  checkpoints — an uninterrupted twin run's);
* at the final point, recovering the *recovered* directory again must
  reproduce the same state (recovery is idempotent), and a campaign that
  ended in a graceful drain must be reported as a clean shutdown.

A second phase feeds each campaign's journal to the seeded
:class:`~repro.serve.store.StoreFaultModel` — torn tail, truncated
segment, bit flip — and asserts recovery still completes with the damage
quarantined into the machine-readable report, never a crash or a silent
drop.

Like every chaos campaign here, the report is a pure function of
``(seed, runs, intensity)``: no timestamps, no paths — byte-identical
JSON across invocations, which is what the CI smoke ``cmp``s.
"""

from __future__ import annotations

import json
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.obs import Telemetry, current as current_telemetry, use_telemetry
from repro.resilience.checkpoint import canonical_json
from repro.resilience.clock import SimulatedClock

from .admission import TenantQuota
from .chaos import _SPEC_SHAPES, _TENANTS
from .core import ServeConfig, ServeCore
from .jobs import Job, JobState
from .runner import DrainRequested, JobRunner, WorkerKilled
from .store import StoreFaultModel


@dataclass
class RestartChaosReport:
    """Deterministic summary of one restart chaos campaign."""

    seed: int
    runs: int
    intensity: float
    submitted: int = 0
    accepted: int = 0
    rejections: dict = field(default_factory=dict)  # code -> count
    sweep_points: int = 0
    recovery_pairs: int = 0
    pairs_identical: int = 0
    idempotent_recoveries: int = 0
    clean_shutdowns: int = 0
    completions_checked: int = 0
    fingerprints_identical: int = 0
    resumed_from_checkpoint: int = 0
    faults: dict = field(default_factory=dict)  # kind -> counts
    lost_jobs: list = field(default_factory=list)
    mismatches: list = field(default_factory=list)
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            not self.failures
            and not self.mismatches
            and not self.lost_jobs
            and self.sweep_points > 0
            and self.pairs_identical == self.recovery_pairs
            and self.fingerprints_identical == self.completions_checked
        )

    def to_dict(self) -> dict:
        return {
            "scenario": "restart",
            "seed": self.seed,
            "runs": self.runs,
            "intensity": self.intensity,
            "submitted": self.submitted,
            "accepted": self.accepted,
            "rejections": dict(sorted(self.rejections.items())),
            "sweep_points": self.sweep_points,
            "recovery_pairs": self.recovery_pairs,
            "pairs_identical": self.pairs_identical,
            "idempotent_recoveries": self.idempotent_recoveries,
            "clean_shutdowns": self.clean_shutdowns,
            "completions_checked": self.completions_checked,
            "fingerprints_identical": self.fingerprints_identical,
            "resumed_from_checkpoint": self.resumed_from_checkpoint,
            "faults": {
                kind: dict(sorted(counts.items()))
                for kind, counts in sorted(self.faults.items())
            },
            "lost_jobs": list(self.lost_jobs),
            "mismatches": list(self.mismatches),
            "failures": list(self.failures),
            "ok": self.ok,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


@dataclass(frozen=True)
class _JobPlan:
    tenant: str
    priority: int
    seed: int
    shape: int
    poison: bool
    kill_at_save: int | None
    service_seconds: float


@dataclass(frozen=True)
class _RunPlan:
    index: int
    max_queue_depth: int
    jobs: tuple
    storm_extra: int
    drain_after: int | None  # executions before a graceful drain, or None


class RestartChaosRunner:
    """Kill-the-whole-service sweep over a seeded durable campaign."""

    #: Run the recovered service to completion at every Nth sweep point
    #: (plus always the final one) — full re-execution at every point
    #: would re-run the pipeline hundreds of times for no extra coverage.
    FULL_RECOVERY_STRIDE = 9

    def __init__(self, seed: int = 0, runs: int = 3, intensity: float = 0.3):
        self.seed = seed
        self.runs = runs
        self.intensity = float(intensity)

    # -- planning ---------------------------------------------------------------------

    def _plan(self, index: int) -> _RunPlan:
        rng = np.random.default_rng([self.seed, 0xBE57A27, index])
        num_jobs = int(rng.integers(4, 8))
        drain_after = (
            int(rng.integers(1, max(num_jobs // 2, 2)))
            if rng.random() < 0.5
            else None
        )
        jobs = []
        for _ in range(num_jobs):
            poison = bool(rng.random() < 0.15 * (1 + self.intensity))
            kill = (
                int(rng.integers(1, 5))
                if (not poison and rng.random() < 0.3 * (1 + self.intensity))
                else None
            )
            jobs.append(
                _JobPlan(
                    tenant=_TENANTS[int(rng.integers(0, len(_TENANTS)))],
                    priority=int(rng.integers(0, 10)),
                    seed=int(rng.integers(1, 2**16)),
                    shape=int(rng.integers(0, len(_SPEC_SHAPES))),
                    poison=poison,
                    kill_at_save=kill,
                    service_seconds=float(rng.uniform(0.2, 1.0)),
                )
            )
        return _RunPlan(
            index=index,
            max_queue_depth=int(rng.integers(5, 9)),
            jobs=tuple(jobs),
            storm_extra=int(rng.integers(2, 5)),
            drain_after=drain_after,
        )

    @staticmethod
    def _payload(plan: _JobPlan) -> dict:
        payload = {
            "tenant": plan.tenant,
            "priority": plan.priority,
            "seed": plan.seed,
            "specs": [dict(_SPEC_SHAPES[plan.shape])],
            "queries": 8,
            "intervals": 2,
        }
        if plan.poison:
            payload["cost_min"] = 500.0
            payload["cost_max"] = 100.0
        return payload

    def _config(
        self, plan: _RunPlan, state_dir: str, checkpoint_root: str
    ) -> ServeConfig:
        return ServeConfig(
            workers=2,
            max_queue_depth=plan.max_queue_depth,
            default_quota=TenantQuota(
                max_concurrent_jobs=2, max_queued_jobs=32
            ),
            quotas={
                # One tenant runs rate-limited so the journal carries
                # rate_limited rejections and live bucket state — both
                # must survive recovery like everything else.
                _TENANTS[0]: TenantQuota(
                    max_concurrent_jobs=2,
                    max_queued_jobs=32,
                    requests_per_window=4,
                    window_seconds=30.0,
                ),
            },
            poison_quarantine_after=2,
            checkpoint_root=checkpoint_root,
            state_dir=state_dir,
            journal_fsync="off",  # same-process file reads; speed
            segment_max_records=6,  # force rotation + seals into the sweep
            compact_after_segments=0,  # keep every segment: the sweep
            # truncates them to reconstruct each transition point
        )

    # -- the baseline campaign ----------------------------------------------------------

    def _run_campaign(
        self, plan: _RunPlan, state_dir: str, checkpoint_root: str
    ) -> tuple[dict, list, bool]:
        """Drive the campaign to its natural end, journaling everything.

        Returns ``(baseline, append_log, drained)`` — per-job baseline
        fingerprints, the per-append byte-size log the sweep truncates
        to, and whether the run ended in a graceful drain.
        """
        clock = SimulatedClock()
        config = self._config(plan, state_dir, checkpoint_root)
        store = ServeCore.open_store(config, track_appends=True)
        core = ServeCore(config, clock=clock, store=store)
        baseline: dict = {"fingerprints": {}, "job_plans": {}}
        submitted = accepted = 0
        rejections: dict = {}
        payload_plans = list(plan.jobs) + [
            plan.jobs[extra % len(plan.jobs)]
            for extra in range(plan.storm_extra)
        ]
        for job_plan in payload_plans:
            submitted += 1
            status, body = core.submit(self._payload(job_plan))
            if status == 202:
                accepted += 1
                baseline["job_plans"][body["job_id"]] = job_plan
            else:
                code = body.get("code", body.get("error", "unknown"))
                rejections[code] = rejections.get(code, 0) + 1
        drained = False
        executions = 0
        while True:
            job = core.claim("restart-worker")
            if job is None:
                break
            job_plan = baseline["job_plans"].get(job.job_id)
            outcome = self._execute(core, job, job_plan)
            if outcome is not None:
                core.finish(job, outcome)
                if job.state == JobState.COMPLETED and job.result:
                    baseline["fingerprints"][job.job_id] = job.result[
                        "fingerprint"
                    ]
            executions += 1
            clock.advance(
                job_plan.service_seconds if job_plan is not None else 0.5
            )
            if plan.drain_after is not None and executions >= plan.drain_after:
                core.drain()
                submitted += 1
                status, body = core.submit(self._payload(plan.jobs[0]))
                code = body.get("code", "unknown")
                rejections[code] = rejections.get(code, 0) + 1
                self._drain_checkpoint_one(core)
                core.mark_drained()
                drained = True
                break
        core.close()
        baseline["submitted"] = submitted
        baseline["accepted"] = accepted
        baseline["rejections"] = rejections
        return baseline, list(store.append_log), drained

    def _execute(self, core, job: Job, job_plan) -> dict | None:
        """One inline attempt; None when it ended in a kill-requeue."""
        kill_at = (
            job_plan.kill_at_save
            if (
                job_plan is not None
                and job_plan.kill_at_save is not None
                and job.attempts == 1
            )
            else None
        )

        def on_point(point: str) -> None:
            if kill_at is not None and point == f"checkpoint_save:{kill_at}":
                raise WorkerKilled(f"restart chaos kill at {point}")

        runner = JobRunner(clock=core.clock, on_point=on_point)
        try:
            outcome = runner.run(
                job,
                resume=job.resume,
                max_tokens=core.effective_max_tokens(job),
            )
        except WorkerKilled:
            core.requeue_after_crash(job)
            return None
        return outcome.to_core()

    @staticmethod
    def _drain_checkpoint_one(core) -> None:
        """Mimic one worker checkpointing out under drain, so drained
        journals carry a CHECKPOINTED job for recovery to resume."""
        job = core.claim("restart-worker")
        if job is None:
            return

        def on_point(point: str) -> None:
            if point.startswith("checkpoint_save:"):
                raise DrainRequested(f"drain at {point}")

        runner = JobRunner(clock=core.clock, on_point=on_point)
        try:
            outcome = runner.run(
                job,
                resume=job.resume,
                max_tokens=core.effective_max_tokens(job),
            )
        except DrainRequested:
            core.checkpoint_for_drain(job)
        else:
            core.finish(job, outcome.to_core())

    # -- the sweep ----------------------------------------------------------------------

    @staticmethod
    def _materialize(source: Path, sizes: dict, dest: Path) -> None:
        """The exact on-disk bytes at one transition point: every segment
        that existed then, truncated to its recorded size."""
        dest.mkdir(parents=True, exist_ok=True)
        for name, size in sizes.items():
            data = (source / name).read_bytes()[:size]
            (dest / name).write_bytes(data)

    def _recover(self, plan: _RunPlan, state_dir: str, checkpoint_root: str):
        config = self._config(plan, str(state_dir), checkpoint_root)
        return ServeCore.recover(config, clock=SimulatedClock())

    def _sweep(
        self,
        plan: _RunPlan,
        state_dir: Path,
        checkpoint_root: str,
        baseline: dict,
        append_log: list,
        drained: bool,
        report: RestartChaosReport,
        scratch: Path,
    ) -> None:
        twins: dict = {}
        for point, sizes in enumerate(append_log):
            final = point == len(append_log) - 1
            full = final or point % self.FULL_RECOVERY_STRIDE == 0
            copies = [scratch / f"p{point}-a", scratch / f"p{point}-b"]
            for copy in copies:
                self._materialize(state_dir, sizes, copy)
            try:
                self._sweep_point(
                    plan,
                    copies,
                    checkpoint_root,
                    baseline,
                    report,
                    twins,
                    point=point,
                    full=full,
                    final=final,
                    drained=drained,
                )
            finally:
                for copy in copies:
                    shutil.rmtree(copy, ignore_errors=True)
            report.sweep_points += 1

    def _sweep_point(
        self,
        plan: _RunPlan,
        copies: list,
        checkpoint_root: str,
        baseline: dict,
        report: RestartChaosReport,
        twins: dict,
        *,
        point: int,
        full: bool,
        final: bool,
        drained: bool,
    ) -> None:
        where = f"run{plan.index}:point{point}"
        cores = [
            self._recover(plan, copy, checkpoint_root) for copy in copies
        ]
        try:
            lost = cores[0].audit_lost_jobs()
            if lost:
                report.lost_jobs.append({"where": where, "jobs": lost})
            snapshots = [
                canonical_json(core.state_snapshot()) for core in cores
            ]
            report.recovery_pairs += 1
            if snapshots[0] == snapshots[1]:
                report.pairs_identical += 1
            else:
                report.mismatches.append(
                    {"where": where, "what": "recovery pair differs"}
                )
            if final and drained:
                if cores[0].recovery.get("clean_shutdown"):
                    report.clean_shutdowns += 1
                else:
                    report.failures.append(
                        {
                            "where": where,
                            "error": "drained journal not seen as clean",
                        }
                    )
            if full:
                self._run_to_completion(
                    cores[0], baseline, report, twins, where
                )
            if final:
                cores[1].close()  # idempotent; frees the dir lock for re-entry
                self._check_idempotent(
                    plan, copies[1], checkpoint_root, snapshots[1],
                    report, where,
                )
        finally:
            for core in cores:
                core.close()

    def _run_to_completion(
        self, core, baseline, report, twins, where: str
    ) -> None:
        """Finish everything the recovered service still owes, then hold
        each completion's fingerprint against the uninterrupted truth."""
        while True:
            job = core.claim("recovered-worker")
            if job is None:
                break
            resumed = job.resume
            outcome = self._execute(
                core, job, baseline["job_plans"].get(job.job_id)
            )
            if outcome is None:
                continue  # planned kill replays identically post-recovery
            core.finish(job, outcome)
            if job.state != JobState.COMPLETED or not job.result:
                continue
            if resumed:
                report.resumed_from_checkpoint += 1
            report.completions_checked += 1
            expected = baseline["fingerprints"].get(
                job.job_id
            ) or self._twin_fingerprint(job, twins)
            if job.result["fingerprint"] == expected:
                report.fingerprints_identical += 1
            else:
                report.mismatches.append(
                    {
                        "where": where,
                        "what": f"{job.job_id} fingerprint diverged",
                    }
                )
        lost = core.audit_lost_jobs()
        if lost:
            report.lost_jobs.append({"where": f"{where}:done", "jobs": lost})

    @staticmethod
    def _twin_fingerprint(job: Job, twins: dict) -> str:
        """Uninterrupted-run fingerprint for a request the baseline never
        finished (cached per spec: payloads repeat across the storm)."""
        key = job.request.spec_key()
        if key not in twins:
            twin = Job(
                job_id=f"{job.job_id}-twin",
                request=job.request,
                checkpoint_dir=None,
            )
            outcome = JobRunner(clock=SimulatedClock()).run(twin)
            twins[key] = (
                outcome.result["fingerprint"]
                if outcome.result and not outcome.error
                else f"twin-failed: {outcome.error}"
            )
        return twins[key]

    def _check_idempotent(
        self,
        plan: _RunPlan,
        state_dir,
        checkpoint_root: str,
        first_snapshot: str,
        report: RestartChaosReport,
        where: str,
    ) -> None:
        """Recovering a recovered directory must change nothing: the fix-up
        records the first recovery journaled replay to the same state."""
        core = self._recover(plan, state_dir, checkpoint_root)
        try:
            if canonical_json(core.state_snapshot()) == first_snapshot:
                report.idempotent_recoveries += 1
            else:
                report.mismatches.append(
                    {"where": where, "what": "second recovery diverged"}
                )
        finally:
            core.close()

    # -- fault injection ----------------------------------------------------------------

    def _fault_phase(
        self,
        plan: _RunPlan,
        state_dir: Path,
        checkpoint_root: str,
        report: RestartChaosReport,
        scratch: Path,
    ) -> None:
        faults = StoreFaultModel(seed=self.seed * 1000 + plan.index)
        for kind in StoreFaultModel.KINDS:
            counts = report.faults.setdefault(
                kind, {"attempted": 0, "injected": 0, "quarantined": 0}
            )
            counts["attempted"] += 1
            copy = scratch / f"fault-{plan.index}-{kind}"
            shutil.copytree(
                state_dir,
                copy,
                ignore=shutil.ignore_patterns("lock.json"),
            )
            try:
                injected = getattr(faults, kind)(copy)
                if injected is None:
                    continue
                counts["injected"] += 1
                try:
                    core = self._recover(plan, copy, checkpoint_root)
                except Exception as error:
                    report.failures.append(
                        {
                            "where": f"run{plan.index}:fault:{kind}",
                            "error": (
                                f"recovery raised {type(error).__name__}: "
                                f"{error}"
                            ),
                        }
                    )
                    continue
                try:
                    if core.recovery and core.recovery.get("quarantined"):
                        counts["quarantined"] += 1
                    lost = core.audit_lost_jobs()
                    if lost:
                        report.lost_jobs.append(
                            {
                                "where": f"run{plan.index}:fault:{kind}",
                                "jobs": lost,
                            }
                        )
                finally:
                    core.close()
            finally:
                shutil.rmtree(copy, ignore_errors=True)

    # -- the campaign -------------------------------------------------------------------

    def run(self) -> RestartChaosReport:
        report = RestartChaosReport(
            seed=self.seed, runs=self.runs, intensity=self.intensity
        )
        telemetry = current_telemetry()
        with telemetry.span(
            "restart_chaos.run", seed=self.seed, runs=self.runs
        ):
            for index in range(self.runs):
                plan = self._plan(index)
                scratch = Path(
                    tempfile.mkdtemp(prefix="repro-restart-chaos-")
                )
                try:
                    state_dir = scratch / "state"
                    checkpoint_root = str(scratch / "checkpoints")
                    baseline, append_log, drained = self._run_campaign(
                        plan, str(state_dir), checkpoint_root
                    )
                    report.submitted += baseline["submitted"]
                    report.accepted += baseline["accepted"]
                    for code, count in baseline["rejections"].items():
                        report.rejections[code] = (
                            report.rejections.get(code, 0) + count
                        )
                    self._sweep(
                        plan,
                        state_dir,
                        checkpoint_root,
                        baseline,
                        append_log,
                        drained,
                        report,
                        scratch,
                    )
                    self._fault_phase(
                        plan, state_dir, checkpoint_root, report, scratch
                    )
                except Exception as error:  # the bar: never a stack trace
                    report.failures.append(
                        {
                            "run": index,
                            "error": f"{type(error).__name__}: {error}",
                        }
                    )
                    telemetry.count("restart_chaos.failures")
                finally:
                    shutil.rmtree(scratch, ignore_errors=True)
                telemetry.count("restart_chaos.runs")
        return report


def run_restart_chaos(
    seed: int = 0,
    runs: int = 3,
    intensity: float = 0.3,
    trace_path: str | None = None,
) -> RestartChaosReport:
    """CLI/CI entry point, mirroring ``run_serve_chaos``'s shape."""
    runner = RestartChaosRunner(seed=seed, runs=runs, intensity=intensity)
    sinks = []
    if trace_path is not None:
        from repro.obs import JsonlSink

        sinks.append(JsonlSink(trace_path))
    telemetry = Telemetry(sinks=sinks)
    try:
        with use_telemetry(telemetry):
            return runner.run()
    finally:
        telemetry.finish()
