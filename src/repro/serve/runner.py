"""Executing one job: SQLBarber behind a crash/drain/deadline boundary.

:class:`JobRunner` turns a claimed :class:`~repro.serve.jobs.Job` into a
:class:`JobOutcome`.  The contract with the core:

* **Checkpointing is always on** — every job runs with a per-job
  checkpoint directory (locked via the checkpoint layer's
  :class:`~repro.resilience.lock.DirectoryLock`) and
  ``checkpoint_every_templates=1``, so the most a crash can lose is one
  template's work.
* **Deadline propagation** — the request's deadline becomes an absolute
  time on the runner's clock, enforced at three layers: the LLM client
  refuses calls (and backoffs) past it, the pipeline's time budget is the
  remaining seconds, and the engine governor gets the request's per-query
  timeout (fixed at submission so the checkpoint run key is stable across
  resumes).
* **Crash semantics** — a :class:`WorkerKilled` escaping ``run`` models a
  worker dying mid-job (chaos and the drain sweep raise it from the
  checkpoint-save hook and from named kill points between pipeline
  phases).  It is a ``BaseException``: nothing in the runner may swallow
  it, exactly like a real SIGKILL.
* **Poison detection** — a job that fails *before the pipeline produces a
  result* (bad distribution, unbuildable specs) is flagged ``poison``;
  the core's quarantine ledger counts these per spec_key.

Budget exhaustion and deadline expiry inside the pipeline are *graceful*
outcomes (the pipeline returns an aborted-but-valid partial result); the
runner reports them as completed-with-abort rather than failures, exactly
like the one-shot CLI does.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable

from repro.core import BarberConfig, SQLBarber
from repro.llm import SimulatedLLM
from repro.obs import Telemetry
from repro.resilience import (
    CircuitBreakerPolicy,
    ResilientLLMClient,
    RetryPolicy,
)
from repro.resilience.clock import Clock, SystemClock

from .jobs import Job


class WorkerKilled(BaseException):
    """A worker died (simulated).  Not an Exception: may not be caught
    by anything between the kill point and the worker loop."""


class DrainRequested(BaseException):
    """Graceful drain: the in-flight job just checkpointed; stop here.

    Raised from the checkpoint-save hook *after* the save hit disk, so
    the job is resumable by construction."""


#: Named points where the drain sweep kills the runner, in execution
#: order.  Checkpoint saves add one dynamic point per save on top.
KILL_POINTS = (
    "claimed",
    "db_built",
    "client_built",
    "pipeline_done",
    "outcome_built",
)


@dataclass
class JobOutcome:
    """What one execution attempt produced."""

    error: str | None = None
    poison: bool = False
    tokens: int = 0
    dollars: float = 0.0
    result: dict | None = None

    def to_core(self) -> dict:
        return {
            "error": self.error,
            "poison": self.poison,
            "tokens": self.tokens,
            "dollars": self.dollars,
            "result": self.result,
        }


class JobRunner:
    """Run jobs through SQLBarber with serving-grade guard rails.

    *on_point* — ``f(point_name)`` called at every named kill point and
    ``f("checkpoint_save:<n>")`` after every durable checkpoint save; the
    chaos harness and the drain sweep raise :class:`WorkerKilled` /
    :class:`DrainRequested` from it.  *db_builder* defaults to a fresh
    fuzz database per job (workers are threads; sharing one engine
    instance across concurrent jobs is not worth proving safe).
    """

    def __init__(
        self,
        clock: Clock | None = None,
        on_point: Callable[[str], None] | None = None,
        db_builder: Callable[[int], object] | None = None,
        telemetry_factory: Callable[[], Telemetry] | None = None,
    ):
        self.clock = clock if clock is not None else SystemClock()
        self.on_point = on_point
        if db_builder is None:
            from repro.fuzz.runner import build_fuzz_database

            db_builder = build_fuzz_database
        self.db_builder = db_builder
        self.telemetry_factory = telemetry_factory

    def _point(self, name: str) -> None:
        if self.on_point is not None:
            self.on_point(name)

    def run(
        self,
        job: Job,
        *,
        resume: bool = False,
        max_tokens: int | None = None,
    ) -> JobOutcome:
        """Execute one attempt.  Never raises for *job* problems — those
        come back as a failed/poisoned outcome; only :class:`WorkerKilled`
        and :class:`DrainRequested` escape (plus genuine runner bugs)."""
        request = job.request
        self._point("claimed")
        try:
            specs = request.build_specs()
            distribution = request.build_distribution()
        except (ValueError, TypeError, KeyError) as error:
            # The canonical poisoned spec: validated shallowly at
            # admission, deterministic failure at execution.
            return JobOutcome(
                error=f"poisoned spec: {type(error).__name__}: {error}",
                poison=True,
            )
        db = self.db_builder(request.seed)
        self._point("db_built")

        client = ResilientLLMClient(
            SimulatedLLM(seed=request.seed),
            retry=RetryPolicy(max_attempts=4, base_delay_seconds=0.01),
            breaker=CircuitBreakerPolicy(failure_threshold=8),
            clock=self.clock,
            jitter_seed=request.seed + 1,
            deadline=job.deadline_at,
            max_tokens=max_tokens,
            max_cost_dollars=request.max_cost_dollars,
        )
        config = BarberConfig(
            seed=request.seed,
            checkpoint_every_templates=1,
            max_tokens=max_tokens,
            max_cost_dollars=request.max_cost_dollars,
            # Fixed at submission (part of the request, not of remaining
            # time), so the checkpoint run key survives a resume.
            query_timeout_seconds=request.query_timeout_seconds,
        )
        self._point("client_built")

        time_budget = None
        if job.deadline_at is not None:
            time_budget = max(job.deadline_at - self.clock.now(), 0.001)

        def on_save(manager, payload) -> None:
            self._point(f"checkpoint_save:{manager.saves}")

        barber = SQLBarber(db, llm=client, config=config)
        try:
            result = barber.generate_workload(
                specs,
                distribution,
                time_budget_seconds=time_budget,
                telemetry=(
                    self.telemetry_factory()
                    if self.telemetry_factory is not None
                    else None
                ),
                checkpoint_dir=job.checkpoint_dir,
                resume=resume,
                on_checkpoint_save=on_save,
            )
        except Exception as error:
            # The pipeline converts expected trouble (budget, deadline,
            # retry exhaustion) into aborted results; an escaping
            # exception is a spec the pipeline itself cannot survive.
            return JobOutcome(
                error=f"{type(error).__name__}: {error}",
                poison=True,
                tokens=int(client.usage.total_tokens),
                dollars=float(client.usage.cost_usd(client.pricing)),
            )
        self._point("pipeline_done")

        fingerprint = hashlib.sha256(
            result.fingerprint_json().encode("utf-8")
        ).hexdigest()
        outcome = JobOutcome(
            tokens=int(client.usage.total_tokens),
            dollars=float(client.usage.cost_usd(client.pricing)),
            result={
                "fingerprint": fingerprint,
                "queries": len(result.workload),
                "complete": result.complete,
                "aborted": result.aborted,
                "abort_reason": result.abort_reason,
                "quarantined_templates": len(result.quarantined),
            },
        )
        self._point("outcome_built")
        return outcome
