"""The durable job store: a write-ahead journal for the serve core.

Once the service ACKs a submission, that work is a durable contract — a
process death (crash, OOM kill, deploy) must never lose it.  This module
is the storage half of that contract; :meth:`ServeCore.recover
<repro.serve.core.ServeCore.recover>` is the replay half.

Layout of one state directory::

    state/
      lock.json                 one live service per directory
                                (:class:`~repro.resilience.lock.DirectoryLock`)
      journal-000001.jsonl      append-only record segments
      journal-000002.jsonl
      snapshot-<hash>.json      compacted state (content-hashed, atomic)

**Records.** Each journal line is one JSON object
``{"n", "t", "at", "d", "c"}`` — per-segment index, record type, core
clock time, payload, and a checksum over the canonical JSON of the other
fields.  The checksum turns bit rot and torn writes into *detected*
damage: recovery quarantines the record instead of replaying garbage.

**Segments.** Appends go to the newest segment via a single
``os.write`` on an ``O_APPEND`` descriptor.  After ``segment_max_records``
records the segment is *sealed* — a final ``_seal`` record carrying the
record count, then an fsync — and a fresh segment opens.  A sealed
segment whose seal is missing or whose count disagrees was truncated by
the filesystem; recovery reports it rather than trusting it silently.

**Fsync policy.** ``"always"`` fsyncs every append (survives OS/power
loss, pays a disk flush per submission); ``"rotate"`` (default) fsyncs at
seals, snapshots, and close — any *process* death still loses nothing
(the bytes are in the page cache), only a whole-machine crash can drop
the unsealed tail, and recovery handles exactly that; ``"off"`` never
fsyncs (benchmarks).

**Compaction.** When enough sealed segments pile up, the store asks the
core for a full state snapshot (``snapshot_provider``), writes it
atomically (temp + ``os.replace`` + fsync) under a content-hashed name
recording which segments it folds in, and only then deletes those
segments and older snapshots.  A crash at any point leaves either the
old snapshot + all segments or the new snapshot + newer segments — both
recover to the same state.

**Recovery** (:meth:`JobStore.recover`) never raises for damage: the
newest valid snapshot is loaded (corrupt candidates are quarantined),
newer segments are replayed in order, and every unreadable piece lands
in a machine-readable quarantine list — torn tails, mid-stream
corruption, truncated segments, corrupt snapshots.  Losing a *record* is
reported; losing the *service state* is not an outcome.

:class:`StoreFaultModel` is the seeded damage injector the restart chaos
scenario and the store tests share: torn tails (a partial final line,
what a torn write leaves), partial-fsync truncation (a sealed segment
losing its tail), and bit flips.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

import numpy as np

import hashlib

from repro.resilience.checkpoint import content_hash, to_jsonable
from repro.resilience.lock import DirectoryLock, LockHeld

STORE_FORMAT_VERSION = 1
FSYNC_POLICIES = ("always", "rotate", "off")

_SEGMENT_RE = re.compile(r"^journal-(\d{6})\.jsonl$")
_SNAPSHOT_RE = re.compile(r"^snapshot-([0-9a-f]{16})\.json$")
_SEAL_TYPE = "_seal"


def _record_body(n: int, rtype: str, at: float, data: dict) -> str:
    """Canonical JSON of the checksummed fields, serialized exactly once.

    Plain ``json.dumps`` (with a ``to_jsonable`` fallback for stray numpy
    scalars) instead of the checkpoint layer's eager deep conversion —
    this runs on every journaled transition, inside the core lock, so its
    cost is submission latency.
    """
    return json.dumps(
        {"n": n, "t": rtype, "at": at, "d": data},
        sort_keys=True,
        separators=(",", ":"),
        default=to_jsonable,
    )


def encode_record(n: int, rtype: str, at: float, data: dict) -> bytes:
    """One journal line: canonical body + spliced checksum + newline."""
    body = _record_body(n, rtype, at, data)
    checksum = hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]
    return (body[:-1] + ',"c":"' + checksum + '"}\n').encode("utf-8")


def decode_record(line: bytes) -> dict | None:
    """Parse and verify one journal line; None when damaged."""
    try:
        record = json.loads(line.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict):
        return None
    try:
        body = _record_body(
            record["n"], record["t"], record["at"], record["d"]
        )
    except (KeyError, TypeError):
        return None
    expected = hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]
    if record.get("c") != expected:
        return None
    return record


class JobStore:
    """Append-only journal + snapshots under one locked directory.

    Opening acquires the directory lock — one live service per state dir;
    a second opener gets :class:`~repro.resilience.lock.LockHeld` (unless
    *takeover* is set by a supervisor that knows the holder is dead, e.g.
    the in-process restart chaos harness — a genuinely dead holder is
    taken over through the lock's own staleness rules without it).

    Appends always go to a segment this process created: recovery state
    is read-only history, so a crash mid-append can only tear *our* tail.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        fsync_policy: str = "rotate",
        segment_max_records: int = 512,
        compact_after_segments: int = 4,
        owner: str = "serve",
        takeover: bool = False,
        on_append=None,
        track_appends: bool = False,
    ):
        if fsync_policy not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync_policy must be one of {FSYNC_POLICIES}, "
                f"not {fsync_policy!r}"
            )
        self.directory = Path(directory)
        self.fsync_policy = fsync_policy
        self.segment_max_records = int(segment_max_records)
        self.compact_after_segments = int(compact_after_segments)
        self.on_append = on_append
        #: Core hook: returns the full state dict folded into snapshots.
        self.snapshot_provider = None
        self.appends = 0
        #: With *track_appends*, one ``{segment_name: byte_size}`` map per
        #: append — the restart chaos sweep truncates segment files to
        #: these offsets to reconstruct the exact on-disk bytes at every
        #: journaled transition point.
        self.append_log: list[dict] = []
        self._track_appends = track_appends
        self._sizes: dict[str, int] = {}
        self.directory.mkdir(parents=True, exist_ok=True)
        self.lock = DirectoryLock(self.directory, owner=owner)
        try:
            self.lock.acquire()
        except LockHeld:
            if not takeover:
                raise
            self.lock.break_lock()
            self.lock.acquire()
        self._fd: int | None = None
        self._segment_index = self._max_segment_index()
        self._segment_records = 0
        self._open_next_segment()

    # -- paths ---------------------------------------------------------------------

    def _segment_path(self, index: int) -> Path:
        return self.directory / f"journal-{index:06d}.jsonl"

    def _segments_on_disk(self) -> list[tuple[int, Path]]:
        found = []
        for name in os.listdir(self.directory):
            match = _SEGMENT_RE.match(name)
            if match:
                found.append((int(match.group(1)), self.directory / name))
        return sorted(found)

    def _snapshots_on_disk(self) -> list[Path]:
        return sorted(
            self.directory / name
            for name in os.listdir(self.directory)
            if _SNAPSHOT_RE.match(name)
        )

    def _max_segment_index(self) -> int:
        segments = self._segments_on_disk()
        return segments[-1][0] if segments else 0

    # -- appending -----------------------------------------------------------------

    def _open_next_segment(self) -> None:
        self._segment_index += 1
        self._segment_records = 0
        path = self._segment_path(self._segment_index)
        self._fd = os.open(
            path, os.O_CREAT | os.O_EXCL | os.O_WRONLY | os.O_APPEND, 0o644
        )
        self._sizes[path.name] = 0

    def _write(self, line: bytes) -> None:
        assert self._fd is not None
        os.write(self._fd, line)
        name = self._segment_path(self._segment_index).name
        self._sizes[name] = self._sizes.get(name, 0) + len(line)

    def append(self, rtype: str, data: dict, at: float = 0.0) -> None:
        """Durably journal one lifecycle transition."""
        if self._fd is None:
            raise RuntimeError("store is closed")
        self._write(encode_record(self._segment_records, rtype, at, data))
        self._segment_records += 1
        self.appends += 1
        if self.fsync_policy == "always":
            os.fsync(self._fd)
        if self._segment_records >= self.segment_max_records:
            self._rotate()
        if self._track_appends:
            self.append_log.append(dict(self._sizes))
        if self.on_append is not None:
            self.on_append(rtype, self.appends)

    def _seal_and_advance(self) -> None:
        """Seal the current segment (fsync'd) and open the next one."""
        self._write(
            encode_record(
                self._segment_records, _SEAL_TYPE, 0.0,
                {"records": self._segment_records},
            )
        )
        if self.fsync_policy != "off":
            os.fsync(self._fd)
        os.close(self._fd)
        self._fd = None
        self._open_next_segment()

    def _rotate(self) -> None:
        self._seal_and_advance()
        sealed = [
            (index, path)
            for index, path in self._segments_on_disk()
            if index < self._segment_index
        ]
        if (
            self.compact_after_segments
            and len(sealed) >= self.compact_after_segments
            and self.snapshot_provider is not None
        ):
            self.compact(self.snapshot_provider())

    # -- compaction ----------------------------------------------------------------

    def compact(self, state: dict) -> Path:
        """Fold every *sealed* segment into a content-hashed snapshot.

        The snapshot is durable (atomic replace + fsync of file and
        directory) before any segment is deleted, so a crash anywhere in
        here recovers to the identical state from either generation.
        """
        if self._segment_records:
            # External call mid-segment: seal first, or the open segment's
            # records would be both inside the snapshot and replayed on
            # top of it (double-applying billing and strikes).
            self._seal_and_advance()
        sealed_through = self._segment_index - 1
        payload = {
            "format_version": STORE_FORMAT_VERSION,
            "sealed_through": sealed_through,
            "content_hash": content_hash(state),
            "state": state,
        }
        name = f"snapshot-{content_hash(payload)[:16]}.json"
        path = self.directory / name
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w") as handle:
            json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
            handle.flush()
            if self.fsync_policy != "off":
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        if self.fsync_policy != "off":
            dir_fd = os.open(self.directory, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        # The new snapshot is durable: drop what it supersedes.
        for index, segment in self._segments_on_disk():
            if index <= sealed_through:
                segment.unlink(missing_ok=True)
                self._sizes.pop(segment.name, None)
        for old in self._snapshots_on_disk():
            if old.name != name:
                old.unlink(missing_ok=True)
        return path

    # -- recovery ------------------------------------------------------------------

    def recover(self) -> tuple[dict | None, list[dict], list[dict]]:
        """Read everything a fresh core needs: ``(snapshot_state,
        records, quarantined)``.

        Never raises for damage — every unreadable piece becomes one
        quarantine entry ``{"kind", "where", "detail"}``:

        * ``torn_tail`` — a partial final line in the newest segment (a
          torn write at the moment of death); dropped.
        * ``corrupt_record`` — a mid-stream line failing its checksum or
          JSON parse (bit rot); dropped, replay continues.
        * ``truncated_segment`` — a non-final segment missing its seal,
          or a seal whose count disagrees with the lines present.
        * ``snapshot_corrupt`` — a snapshot failing its content hash;
          skipped in favor of an older valid one (or a full replay).
        """
        quarantined: list[dict] = []
        snapshot_state, sealed_through = self._load_best_snapshot(quarantined)
        records: list[dict] = []
        segments = [
            (index, path)
            for index, path in self._segments_on_disk()
            if index > sealed_through and index < self._segment_index
        ]
        for position, (index, path) in enumerate(segments):
            last_segment = position == len(segments) - 1
            self._read_segment(
                path, records, quarantined, last_segment=last_segment
            )
        return snapshot_state, records, quarantined

    def _load_best_snapshot(
        self, quarantined: list[dict]
    ) -> tuple[dict | None, int]:
        best_state, best_through = None, 0
        for path in self._snapshots_on_disk():
            try:
                payload = json.loads(path.read_text())
                state = payload["state"]
                through = int(payload["sealed_through"])
                ok = (
                    payload.get("format_version") == STORE_FORMAT_VERSION
                    and content_hash(state) == payload.get("content_hash")
                )
            except (OSError, json.JSONDecodeError, KeyError, TypeError,
                    ValueError):
                ok = False
            if not ok:
                quarantined.append(
                    {
                        "kind": "snapshot_corrupt",
                        "where": path.name,
                        "detail": "failed hash/format verification",
                    }
                )
                continue
            if through >= best_through:
                best_state = state
                best_through = through
        return best_state, best_through

    def _read_segment(
        self,
        path: Path,
        records: list[dict],
        quarantined: list[dict],
        *,
        last_segment: bool,
    ) -> None:
        raw = path.read_bytes()
        lines = raw.split(b"\n")
        torn = lines.pop() if lines and lines[-1] != b"" else None
        if lines and lines[-1] == b"":
            lines.pop()
        sealed_count: int | None = None
        seen = 0
        for position, line in enumerate(lines):
            if not line:
                continue
            record = decode_record(line)
            if record is None:
                quarantined.append(
                    {
                        "kind": "corrupt_record",
                        "where": f"{path.name}:{position}",
                        "detail": "checksum or parse failure",
                    }
                )
                continue
            if record["t"] == _SEAL_TYPE:
                sealed_count = int(record["d"].get("records", -1))
                continue
            seen += 1
            records.append(record)
        if torn is not None:
            record = decode_record(torn)
            if record is not None and record["t"] != _SEAL_TYPE:
                # A complete record that merely lost its newline — the
                # data survived, keep it.
                seen += 1
                records.append(record)
            else:
                quarantined.append(
                    {
                        "kind": "torn_tail",
                        "where": f"{path.name}:{len(lines)}",
                        "detail": f"partial final line ({len(torn)} bytes)",
                    }
                )
        if not last_segment:
            if sealed_count is None:
                quarantined.append(
                    {
                        "kind": "truncated_segment",
                        "where": path.name,
                        "detail": f"seal missing after {seen} record(s)",
                    }
                )
            elif sealed_count != seen:
                quarantined.append(
                    {
                        "kind": "truncated_segment",
                        "where": path.name,
                        "detail": (
                            f"seal says {sealed_count} record(s), "
                            f"{seen} readable"
                        ),
                    }
                )

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Flush, fsync (unless ``off``), and release the directory lock.
        Idempotent — a second close is a no-op."""
        if self._fd is None:
            return
        if self.fsync_policy != "off":
            os.fsync(self._fd)
        os.close(self._fd)
        self._fd = None
        self.lock.release()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class StoreFaultModel:
    """Seeded journal damage: what disks and power loss actually do.

    Operates on the *files* of a closed (or abandoned) state directory;
    the victim store must not be appending concurrently.  Each method
    returns a description of what it did (for chaos reports) or ``None``
    when the directory had nothing to damage.
    """

    KINDS = ("torn_tail", "truncated_segment", "bit_flip")

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = np.random.default_rng([seed, 0x57F])

    def _segments(self, directory: Path) -> list[Path]:
        return [
            directory / name
            for name in sorted(os.listdir(directory))
            if _SEGMENT_RE.match(name)
            and (directory / name).stat().st_size > 0
        ]

    def torn_tail(self, directory: str | os.PathLike) -> dict | None:
        """A torn write: the newest segment loses part of its last line."""
        segments = self._segments(Path(directory))
        if not segments:
            return None
        path = segments[-1]
        raw = path.read_bytes().rstrip(b"\n")
        last_line_start = raw.rfind(b"\n") + 1
        tail_len = len(raw) - last_line_start
        if tail_len < 2:
            return None
        cut = int(self._rng.integers(1, tail_len))
        path.write_bytes(raw[: last_line_start + cut])
        return {"kind": "torn_tail", "where": path.name, "cut_bytes": cut}

    def truncated_segment(self, directory: str | os.PathLike) -> dict | None:
        """A partial fsync: a segment loses whole records off its tail."""
        segments = self._segments(Path(directory))
        if not segments:
            return None
        path = segments[int(self._rng.integers(0, len(segments)))]
        lines = path.read_bytes().splitlines(keepends=True)
        if len(lines) < 2:
            return None
        dropped = int(self._rng.integers(1, len(lines)))
        path.write_bytes(b"".join(lines[: len(lines) - dropped]))
        return {
            "kind": "truncated_segment",
            "where": path.name,
            "dropped_lines": dropped,
        }

    def bit_flip(self, directory: str | os.PathLike) -> dict | None:
        """Bit rot: one flipped bit somewhere in one journal line."""
        segments = self._segments(Path(directory))
        if not segments:
            return None
        path = segments[int(self._rng.integers(0, len(segments)))]
        raw = bytearray(path.read_bytes())
        positions = [i for i, b in enumerate(raw) if b != 0x0A]
        if not positions:
            return None
        index = positions[int(self._rng.integers(0, len(positions)))]
        bit = int(self._rng.integers(0, 8))
        raw[index] ^= 1 << bit
        if raw[index] == 0x0A:  # never synthesize a line break
            raw[index] ^= 1 << bit
            return None
        path.write_bytes(bytes(raw))
        return {"kind": "bit_flip", "where": path.name, "offset": index}

    def inject(self, directory: str | os.PathLike) -> dict | None:
        """One random fault from :data:`KINDS`."""
        kind = self.KINDS[int(self._rng.integers(0, len(self.KINDS)))]
        return getattr(self, kind)(directory)
