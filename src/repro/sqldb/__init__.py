"""An embedded, pure-Python SQL engine (the reproduction's PostgreSQL stand-in).

Public surface::

    from repro.sqldb import Database, Table, Column, SqlType

    db = Database("demo")
    db.create_table(Table.from_dict("users", {...}, {...}), primary_key=["id"])
    db.explain("SELECT count(*) FROM users")   # estimates only
    db.execute("SELECT * FROM users LIMIT 5")  # actual rows
"""

from .ast_nodes import (
    DeleteStatement,
    InsertStatement,
    SelectStatement,
    UpdateStatement,
    find_placeholders,
    is_dml,
)
from .catalog import Catalog, ForeignKey, IndexMeta
from .database import Database, ExecutionResult
from .ddl import parse_ddl, run_script, split_statements
from .errors import (
    BindError,
    CatalogError,
    ConstraintError,
    ExecutionError,
    MemoryBudgetExceeded,
    QueryCancelled,
    QueryTimeout,
    ResourceExceeded,
    RowBudgetExceeded,
    SqlError,
    SqlSyntaxError,
    TransientStorageError,
    UnsupportedSqlError,
)
from .explain import ExplainResult
from .parser import parse_select, parse_sql
from .storage import Column, Table
from .types import ColumnType, SqlType, date_to_days, days_to_date

__all__ = [
    "BindError",
    "Catalog",
    "CatalogError",
    "Column",
    "ColumnType",
    "ConstraintError",
    "Database",
    "DeleteStatement",
    "ExecutionError",
    "ExecutionResult",
    "ExplainResult",
    "ForeignKey",
    "IndexMeta",
    "InsertStatement",
    "MemoryBudgetExceeded",
    "QueryCancelled",
    "QueryTimeout",
    "ResourceExceeded",
    "RowBudgetExceeded",
    "SelectStatement",
    "SqlError",
    "SqlSyntaxError",
    "SqlType",
    "Table",
    "TransientStorageError",
    "UnsupportedSqlError",
    "UpdateStatement",
    "date_to_days",
    "days_to_date",
    "find_placeholders",
    "is_dml",
    "parse_ddl",
    "parse_select",
    "parse_sql",
    "run_script",
    "split_statements",
]
