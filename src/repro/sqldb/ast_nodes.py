"""Parse-tree node definitions.

The nodes are plain dataclasses produced by :mod:`repro.sqldb.parser` and
consumed by the binder, the workload analyzer, and the template machinery.
Every expression node supports :meth:`Expression.walk` for generic traversal,
which the structural analyzer in :mod:`repro.workload.analyzer` relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterator, Optional, Union


class Node:
    """Base class for all AST nodes."""

    def walk(self) -> Iterator["Node"]:
        """Yield this node and, recursively, every child node."""
        yield self
        for child in self.children():
            yield from child.walk()

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes, discovered from dataclass fields."""
        for f in fields(self):  # type: ignore[arg-type]
            value = getattr(self, f.name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item


class Expression(Node):
    """Base class for scalar expressions."""


@dataclass
class Literal(Expression):
    """A constant: number, string, boolean, or NULL (value is None)."""

    value: Union[int, float, str, bool, None]


@dataclass
class Placeholder(Expression):
    """A template placeholder such as ``{p_1}``; never executable directly."""

    name: str


@dataclass
class ColumnRef(Expression):
    """A (possibly qualified) column reference.

    ``position`` is the character offset of the reference in the source text
    (None for synthesized nodes); it is excluded from equality so structural
    AST comparisons (render round-trips, template substitution) ignore it.
    """

    column: str
    table: Optional[str] = None
    position: Optional[int] = field(default=None, compare=False, repr=False)

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass
class Star(Expression):
    """``*`` or ``t.*`` in a select list or inside COUNT(*)."""

    table: Optional[str] = None


@dataclass
class BinaryOp(Expression):
    """A binary operator: arithmetic, comparison, AND/OR, ``||``."""

    op: str
    left: Expression
    right: Expression


@dataclass
class UnaryOp(Expression):
    """NOT or unary minus."""

    op: str
    operand: Expression


@dataclass
class IsNull(Expression):
    operand: Expression
    negated: bool = False


@dataclass
class Between(Expression):
    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass
class InList(Expression):
    operand: Expression
    items: list[Expression]
    negated: bool = False


@dataclass
class InSubquery(Expression):
    operand: Expression
    subquery: "SelectStatement"
    negated: bool = False


@dataclass
class Exists(Expression):
    subquery: "SelectStatement"
    negated: bool = False


@dataclass
class ScalarSubquery(Expression):
    subquery: "SelectStatement"


@dataclass
class Like(Expression):
    operand: Expression
    pattern: Expression
    negated: bool = False
    case_insensitive: bool = False


@dataclass
class FunctionCall(Expression):
    """A scalar or aggregate function call."""

    name: str
    args: list[Expression]
    distinct: bool = False
    position: Optional[int] = field(default=None, compare=False, repr=False)

    AGGREGATES = frozenset({"count", "sum", "avg", "min", "max"})

    @property
    def is_aggregate(self) -> bool:
        return self.name in self.AGGREGATES


@dataclass
class Cast(Expression):
    operand: Expression
    type_name: str


@dataclass
class CaseWhen(Expression):
    """``CASE WHEN cond THEN value ... ELSE default END``."""

    whens: list[tuple[Expression, Expression]]
    default: Optional[Expression] = None

    def children(self) -> Iterator[Node]:
        for cond, value in self.whens:
            yield cond
            yield value
        if self.default is not None:
            yield self.default


@dataclass
class SelectItem(Node):
    """One select-list entry: an expression with an optional alias."""

    expression: Expression
    alias: Optional[str] = None


class TableExpression(Node):
    """Base class for FROM-clause items."""


@dataclass
class TableRef(TableExpression):
    """A base table reference with an optional alias."""

    name: str
    alias: Optional[str] = None
    position: Optional[int] = field(default=None, compare=False, repr=False)

    @property
    def binding_name(self) -> str:
        return self.alias or self.name


@dataclass
class DerivedTable(TableExpression):
    """A subquery in the FROM clause; alias is mandatory in our dialect."""

    subquery: "SelectStatement"
    alias: str


@dataclass
class Join(TableExpression):
    """A join between two table expressions."""

    join_type: str  # 'inner' | 'left' | 'right' | 'full' | 'cross'
    left: TableExpression
    right: TableExpression
    condition: Optional[Expression] = None  # None only for CROSS JOIN


@dataclass
class OrderItem(Node):
    expression: Expression
    descending: bool = False


@dataclass
class SelectStatement(Node):
    """A full (possibly nested) SELECT statement."""

    select_items: list[SelectItem]
    from_clause: Optional[TableExpression] = None
    where: Optional[Expression] = None
    group_by: list[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False


@dataclass
class CompoundSelect(Node):
    """A UNION [ALL] chain of SELECT statements.

    ``ops[i]`` is the operator between ``selects[i]`` and ``selects[i+1]``
    ("union" deduplicates, "union all" keeps duplicates); a chain that mixes
    the two deduplicates per SQL semantics (any bare UNION dedupes the whole
    accumulated result up to that point — we conservatively dedupe the final
    result if any op is "union").
    """

    selects: list[SelectStatement] = field(default_factory=list)
    ops: list[str] = field(default_factory=list)

    @property
    def deduplicates(self) -> bool:
        return any(op == "union" for op in self.ops)


@dataclass
class Assignment(Node):
    """One ``column = expression`` pair in an UPDATE SET clause."""

    column: str
    value: Expression
    position: Optional[int] = field(default=None, compare=False, repr=False)


@dataclass
class InsertStatement(Node):
    """``INSERT INTO t [(cols)] VALUES (...), ...`` or ``INSERT INTO t
    [(cols)] SELECT ...``.

    Exactly one of ``rows`` (non-empty) and ``source`` (a SELECT) is set.
    """

    target: TableRef
    columns: Optional[list[str]] = None  # None = all columns, in table order
    rows: list[list[Expression]] = field(default_factory=list)
    source: Optional[Union[SelectStatement, CompoundSelect]] = None

    def children(self) -> Iterator[Node]:
        yield self.target
        for row in self.rows:
            for expression in row:
                yield expression
        if self.source is not None:
            yield self.source


@dataclass
class UpdateStatement(Node):
    """``UPDATE t SET col = expr [, ...] [WHERE ...]``."""

    target: TableRef
    assignments: list[Assignment] = field(default_factory=list)
    where: Optional[Expression] = None


@dataclass
class DeleteStatement(Node):
    """``DELETE FROM t [WHERE ...]``."""

    target: TableRef
    where: Optional[Expression] = None


#: The three data-modification statement types, as one isinstance target.
DML_STATEMENTS = (InsertStatement, UpdateStatement, DeleteStatement)


def is_dml(node: Node) -> bool:
    """True when *node* is an INSERT/UPDATE/DELETE statement."""
    return isinstance(node, DML_STATEMENTS)


def find_placeholders(node: Node) -> list[str]:
    """Return the names of all placeholders under *node*, in document order,
    without duplicates."""
    seen: list[str] = []
    for child in node.walk():
        if isinstance(child, Placeholder) and child.name not in seen:
            seen.append(child.name)
    return seen
