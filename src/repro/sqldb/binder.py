"""Name resolution and type checking.

The binder walks a parsed :class:`SelectStatement`, resolves every column
reference against the FROM-clause scope (qualifying unqualified names and
rejecting unknown or ambiguous ones), validates function names and aggregate
placement, and computes the statement's output schema.

Binding errors carry PostgreSQL-flavoured messages (``column "x" does not
exist``) because SQLBarber's check-and-rewrite loop feeds them back to the
LLM verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast_nodes as ast
from .catalog import Catalog
from .errors import BindError, UnsupportedSqlError
from .types import SqlType, common_numeric_type, parse_type_name

SCALAR_FUNCTIONS: dict[str, SqlType | None] = {
    # name -> fixed return type (None = depends on arguments)
    "abs": None,
    "round": None,
    "floor": SqlType.BIGINT,
    "ceil": SqlType.BIGINT,
    "mod": None,
    "power": SqlType.DOUBLE,
    "sqrt": SqlType.DOUBLE,
    "ln": SqlType.DOUBLE,
    "log": SqlType.DOUBLE,
    "exp": SqlType.DOUBLE,
    "length": SqlType.INTEGER,
    "upper": SqlType.TEXT,
    "lower": SqlType.TEXT,
    "substr": SqlType.TEXT,
    "substring": SqlType.TEXT,
    "concat": SqlType.TEXT,
    "coalesce": None,
    "extract": SqlType.INTEGER,
    "greatest": None,
    "least": None,
}


@dataclass
class RelationSchema:
    """The visible columns of one FROM-clause binding."""

    binding: str
    columns: dict[str, SqlType]

    def has(self, column: str) -> bool:
        return column in self.columns


@dataclass
class Scope:
    """All bindings visible to expressions of one SELECT."""

    relations: list[RelationSchema] = field(default_factory=list)

    def add(self, schema: RelationSchema) -> None:
        if any(r.binding == schema.binding for r in self.relations):
            raise BindError(f'table name "{schema.binding}" specified more than once')
        self.relations.append(schema)

    def resolve(self, ref: ast.ColumnRef) -> tuple[str, SqlType]:
        """Resolve *ref*, returning (binding, type)."""
        if ref.table is not None:
            for relation in self.relations:
                if relation.binding == ref.table:
                    if not relation.has(ref.column):
                        raise BindError(
                            f'column {ref.table}.{ref.column} does not exist',
                            position=ref.position,
                        )
                    return relation.binding, relation.columns[ref.column]
            raise BindError(
                f'missing FROM-clause entry for table "{ref.table}"',
                position=ref.position,
            )
        matches = [r for r in self.relations if r.has(ref.column)]
        if not matches:
            raise BindError(
                f'column "{ref.column}" does not exist', position=ref.position
            )
        if len(matches) > 1:
            raise BindError(
                f'column reference "{ref.column}" is ambiguous',
                position=ref.position,
            )
        return matches[0].binding, matches[0].columns[ref.column]

    @property
    def binding_names(self) -> list[str]:
        return [r.binding for r in self.relations]


@dataclass
class BoundQuery:
    """A bound statement: the AST plus its scope and output schema.

    DML statements (INSERT/UPDATE/DELETE) bind to a one-column
    ``rows_affected BIGINT`` output schema — executing them yields a single
    row carrying the affected-row count, PostgreSQL command-tag style.
    """

    statement: ast.SelectStatement | ast.CompoundSelect | ast.InsertStatement | ast.UpdateStatement | ast.DeleteStatement
    scope: Scope
    output_names: list[str]
    output_types: list[SqlType]


class Binder:
    """Binds statements against a :class:`~repro.sqldb.catalog.Catalog`.

    *placeholder_types* switches the binder into template mode: instead of
    rejecting ``{name}`` placeholders, each one binds to the declared type
    (the type its rendered literal will have once instantiated).  This is
    what lets :mod:`repro.fastpath` bind a template once and re-plan it per
    predicate binding without re-running name resolution.
    """

    def __init__(
        self,
        catalog: Catalog,
        placeholder_types: dict[str, SqlType] | None = None,
    ):
        self._catalog = catalog
        self._placeholder_types = placeholder_types

    def bind(
        self,
        statement: (
            ast.SelectStatement
            | ast.CompoundSelect
            | ast.InsertStatement
            | ast.UpdateStatement
            | ast.DeleteStatement
        ),
    ) -> BoundQuery:
        if isinstance(statement, ast.CompoundSelect):
            return self._bind_compound(statement)
        if isinstance(statement, ast.InsertStatement):
            return self._bind_insert(statement)
        if isinstance(statement, ast.UpdateStatement):
            return self._bind_update(statement)
        if isinstance(statement, ast.DeleteStatement):
            return self._bind_delete(statement)
        scope = self._build_scope(statement.from_clause)
        statement.select_items = self._expand_stars(statement.select_items, scope)
        for item in statement.select_items:
            self._bind_expression(item.expression, scope, allow_aggregates=True)
        if statement.where is not None:
            self._bind_expression(statement.where, scope, allow_aggregates=False)
        for expression in statement.group_by:
            self._bind_expression(expression, scope, allow_aggregates=False)
        if statement.having is not None:
            self._bind_expression(statement.having, scope, allow_aggregates=True)
        aliases = {item.alias for item in statement.select_items if item.alias}
        for order in statement.order_by:
            expression = order.expression
            if (
                isinstance(expression, ast.ColumnRef)
                and expression.table is None
                and expression.column in aliases
            ):
                continue  # ORDER BY <output alias>, resolved by the planner
            if isinstance(expression, ast.Literal) and isinstance(expression.value, int):
                if not 1 <= expression.value <= len(statement.select_items):
                    raise BindError(
                        f"ORDER BY position {expression.value} is not in select list"
                    )
                continue  # ORDER BY <position>
            self._bind_expression(expression, scope, allow_aggregates=True)
        self._check_aggregate_usage(statement, scope)
        names, types = self._output_schema(statement, scope)
        return BoundQuery(statement, scope, names, types)

    def _bind_compound(self, statement: ast.CompoundSelect) -> BoundQuery:
        """Bind every UNION branch and merge their output schemas."""
        branches = [self.bind(s) for s in statement.selects]
        first = branches[0]
        for branch in branches[1:]:
            if len(branch.output_types) != len(first.output_types):
                raise BindError(
                    "each UNION query must have the same number of columns"
                )
        types = list(first.output_types)
        for branch in branches[1:]:
            for index, branch_type in enumerate(branch.output_types):
                if types[index] is branch_type:
                    continue
                if types[index].is_numeric and branch_type.is_numeric:
                    types[index] = _merge_types(types[index], branch_type)
                else:
                    raise BindError(
                        f"UNION column {index + 1} has mismatched types "
                        f"{types[index].value} and {branch_type.value}"
                    )
        return BoundQuery(statement, Scope(), list(first.output_names), types)

    # -- DML binding ----------------------------------------------------------

    def _dml_result(self, statement, scope: Scope) -> BoundQuery:
        """Every DML statement binds to a ``rows_affected BIGINT`` schema."""
        return BoundQuery(statement, scope, ["rows_affected"], [SqlType.BIGINT])

    def _target_meta(self, ref: ast.TableRef):
        if not self._catalog.has_table(ref.name):
            raise BindError(
                f'relation "{ref.name}" does not exist', position=ref.position
            )
        return self._catalog.table(ref.name)

    def _bind_insert(self, statement: ast.InsertStatement) -> BoundQuery:
        meta = self._target_meta(statement.target)
        if statement.columns is None:
            targets = list(meta.columns)
        else:
            seen: set[str] = set()
            targets = []
            for name in statement.columns:
                if not meta.has_column(name):
                    raise BindError(
                        f'column "{name}" of relation "{meta.name}" '
                        "does not exist"
                    )
                if name in seen:
                    raise BindError(
                        f'column "{name}" specified more than once'
                    )
                seen.add(name)
                targets.append(meta.column(name))
        empty = Scope()
        if statement.source is not None:
            bound_source = self.bind(statement.source)
            if len(bound_source.output_types) != len(targets):
                raise BindError(
                    f"INSERT has {len(bound_source.output_types)} expressions "
                    f"but {len(targets)} target columns"
                )
            for target, source_type in zip(targets, bound_source.output_types):
                self._check_writable(None, source_type, target)
        else:
            for row in statement.rows:
                if len(row) != len(targets):
                    raise BindError(
                        f"INSERT has {len(row)} expressions but "
                        f"{len(targets)} target columns"
                    )
                for target, value in zip(targets, row):
                    value_type = self._bind_expression(
                        value, empty, allow_aggregates=False
                    )
                    self._check_writable(value, value_type, target)
        return self._dml_result(statement, empty)

    def _bind_update(self, statement: ast.UpdateStatement) -> BoundQuery:
        meta = self._target_meta(statement.target)
        scope = Scope()
        scope.add(
            RelationSchema(
                binding=statement.target.binding_name,
                columns={c.name: c.sql_type for c in meta.columns},
            )
        )
        assigned: set[str] = set()
        for assignment in statement.assignments:
            if not meta.has_column(assignment.column):
                raise BindError(
                    f'column "{assignment.column}" of relation '
                    f'"{meta.name}" does not exist',
                    position=assignment.position,
                )
            if assignment.column in assigned:
                raise BindError(
                    f'multiple assignments to same column "{assignment.column}"',
                    position=assignment.position,
                )
            assigned.add(assignment.column)
            value_type = self._bind_expression(
                assignment.value, scope, allow_aggregates=False
            )
            self._check_writable(
                assignment.value, value_type, meta.column(assignment.column)
            )
        if statement.where is not None:
            self._bind_expression(statement.where, scope, allow_aggregates=False)
        return self._dml_result(statement, scope)

    def _bind_delete(self, statement: ast.DeleteStatement) -> BoundQuery:
        meta = self._target_meta(statement.target)
        scope = Scope()
        scope.add(
            RelationSchema(
                binding=statement.target.binding_name,
                columns={c.name: c.sql_type for c in meta.columns},
            )
        )
        if statement.where is not None:
            self._bind_expression(statement.where, scope, allow_aggregates=False)
        return self._dml_result(statement, scope)

    def _check_writable(
        self,
        expression: ast.Expression | None,
        value_type: SqlType,
        target,
    ) -> None:
        """Reject writes whose static type cannot coerce into the column.

        An explicit NULL literal is always bindable — nullability is a
        *runtime* constraint (ConstraintError), not a binder one, matching
        how a real system reports ``null value violates not-null`` only on
        execution.
        """
        if isinstance(expression, ast.Literal) and expression.value is None:
            return
        column_type = target.sql_type
        if value_type is column_type:
            return
        if value_type.is_numeric and column_type.is_numeric:
            return
        # ISO date strings are writable into DATE columns (and dates render
        # back as TEXT), mirroring the comparison rule in _check_comparable.
        if {value_type, column_type} == {SqlType.TEXT, SqlType.DATE}:
            return
        raise BindError(
            f'column "{target.name}" is of type {column_type.value} '
            f"but expression is of type {value_type.value}"
        )

    # -- scope construction ---------------------------------------------------

    def _build_scope(self, from_clause: ast.TableExpression | None) -> Scope:
        scope = Scope()
        if from_clause is not None:
            self._collect_relations(from_clause, scope)
        return scope

    def _collect_relations(self, node: ast.TableExpression, scope: Scope) -> None:
        if isinstance(node, ast.TableRef):
            if not self._catalog.has_table(node.name):
                raise BindError(
                    f'relation "{node.name}" does not exist',
                    position=node.position,
                )
            meta = self._catalog.table(node.name)
            scope.add(
                RelationSchema(
                    binding=node.binding_name,
                    columns={c.name: c.sql_type for c in meta.columns},
                )
            )
        elif isinstance(node, ast.DerivedTable):
            bound = self.bind(node.subquery)
            scope.add(
                RelationSchema(
                    binding=node.alias,
                    columns=dict(zip(bound.output_names, bound.output_types)),
                )
            )
        elif isinstance(node, ast.Join):
            self._collect_relations(node.left, scope)
            self._collect_relations(node.right, scope)
            if node.condition is not None:
                self._bind_expression(node.condition, scope, allow_aggregates=False)
        else:  # pragma: no cover - parser cannot produce other types
            raise UnsupportedSqlError(f"unsupported FROM item: {type(node).__name__}")

    def _expand_stars(
        self, items: list[ast.SelectItem], scope: Scope
    ) -> list[ast.SelectItem]:
        """Rewrite ``*`` / ``t.*`` select items into explicit column refs."""
        expanded: list[ast.SelectItem] = []
        for item in items:
            star = item.expression
            if not isinstance(star, ast.Star):
                expanded.append(item)
                continue
            if star.table is not None and star.table not in scope.binding_names:
                raise BindError(
                    f'missing FROM-clause entry for table "{star.table}"'
                )
            if not scope.relations:
                raise BindError("SELECT * requires a FROM clause")
            relations = (
                [r for r in scope.relations if r.binding == star.table]
                if star.table
                else scope.relations
            )
            for relation in relations:
                for column in relation.columns:
                    expanded.append(
                        ast.SelectItem(
                            ast.ColumnRef(column=column, table=relation.binding)
                        )
                    )
        return expanded

    # -- expression binding -----------------------------------------------------

    def _bind_expression(
        self, expression: ast.Expression, scope: Scope, allow_aggregates: bool
    ) -> SqlType:
        """Resolve names under *expression* and return its inferred type."""
        if isinstance(expression, ast.Literal):
            return _literal_type(expression.value)
        if isinstance(expression, ast.Placeholder):
            if self._placeholder_types is not None:
                return self._placeholder_types.get(
                    expression.name, SqlType.INTEGER
                )
            raise BindError(
                f"template placeholder {{{expression.name}}} cannot be executed; "
                "instantiate the template first"
            )
        if isinstance(expression, ast.ColumnRef):
            binding, sql_type = scope.resolve(expression)
            expression.table = binding  # qualify in place
            return sql_type
        if isinstance(expression, ast.Star):
            raise BindError("'*' is only allowed in the select list or COUNT(*)")
        if isinstance(expression, ast.BinaryOp):
            return self._bind_binary(expression, scope, allow_aggregates)
        if isinstance(expression, ast.UnaryOp):
            inner = self._bind_expression(expression.operand, scope, allow_aggregates)
            if expression.op == "not":
                return SqlType.BOOLEAN
            if not inner.is_numeric:
                raise BindError(f"cannot negate type {inner.value}")
            return inner
        if isinstance(expression, ast.IsNull):
            self._bind_expression(expression.operand, scope, allow_aggregates)
            return SqlType.BOOLEAN
        if isinstance(expression, ast.Between):
            self._bind_expression(expression.operand, scope, allow_aggregates)
            self._bind_expression(expression.low, scope, allow_aggregates)
            self._bind_expression(expression.high, scope, allow_aggregates)
            return SqlType.BOOLEAN
        if isinstance(expression, ast.InList):
            self._bind_expression(expression.operand, scope, allow_aggregates)
            for item in expression.items:
                self._bind_expression(item, scope, allow_aggregates)
            return SqlType.BOOLEAN
        if isinstance(expression, ast.InSubquery):
            self._bind_expression(expression.operand, scope, allow_aggregates)
            self._bind_subquery(expression.subquery, expected_columns=1)
            return SqlType.BOOLEAN
        if isinstance(expression, ast.Exists):
            self._bind_subquery(expression.subquery, expected_columns=None)
            return SqlType.BOOLEAN
        if isinstance(expression, ast.ScalarSubquery):
            bound = self._bind_subquery(expression.subquery, expected_columns=1)
            return bound.output_types[0]
        if isinstance(expression, ast.Like):
            self._bind_expression(expression.operand, scope, allow_aggregates)
            self._bind_expression(expression.pattern, scope, allow_aggregates)
            return SqlType.BOOLEAN
        if isinstance(expression, ast.FunctionCall):
            return self._bind_function(expression, scope, allow_aggregates)
        if isinstance(expression, ast.Cast):
            self._bind_expression(expression.operand, scope, allow_aggregates)
            try:
                return parse_type_name(expression.type_name)
            except ValueError as exc:
                raise BindError(str(exc)) from None
        if isinstance(expression, ast.CaseWhen):
            result: SqlType | None = None
            for condition, value in expression.whens:
                self._bind_expression(condition, scope, allow_aggregates)
                value_type = self._bind_expression(value, scope, allow_aggregates)
                result = value_type if result is None else _merge_types(result, value_type)
            if expression.default is not None:
                default_type = self._bind_expression(
                    expression.default, scope, allow_aggregates
                )
                result = default_type if result is None else _merge_types(result, default_type)
            return result or SqlType.TEXT
        raise UnsupportedSqlError(f"unsupported expression: {type(expression).__name__}")

    def _bind_binary(
        self, expression: ast.BinaryOp, scope: Scope, allow_aggregates: bool
    ) -> SqlType:
        left = self._bind_expression(expression.left, scope, allow_aggregates)
        right = self._bind_expression(expression.right, scope, allow_aggregates)
        op = expression.op
        if op in ("and", "or"):
            return SqlType.BOOLEAN
        if op in ("=", "<>", "<", "<=", ">", ">="):
            _check_comparable(left, right)
            return SqlType.BOOLEAN
        if op == "||":
            return SqlType.TEXT
        if op in ("+", "-", "*", "/", "%"):
            if left is SqlType.DATE and right.is_numeric and op in ("+", "-"):
                return SqlType.DATE
            if left is SqlType.DATE and right is SqlType.DATE and op == "-":
                return SqlType.INTEGER
            if not (left.is_numeric and right.is_numeric):
                raise BindError(
                    f"operator {op} does not accept types "
                    f"{left.value} and {right.value}"
                )
            if op == "/":
                return SqlType.DOUBLE
            return common_numeric_type(left, right)
        raise UnsupportedSqlError(f"unsupported operator: {op}")

    def _bind_function(
        self, call: ast.FunctionCall, scope: Scope, allow_aggregates: bool
    ) -> SqlType:
        name = call.name
        if call.is_aggregate:
            if not allow_aggregates:
                raise BindError(
                    f"aggregate function {name.upper()} is not allowed here",
                    position=call.position,
                )
            if name == "count":
                if call.args and not isinstance(call.args[0], ast.Star):
                    self._bind_expression(call.args[0], scope, allow_aggregates=False)
                return SqlType.BIGINT
            if len(call.args) != 1:
                raise BindError(f"{name.upper()} takes exactly one argument")
            arg_type = self._bind_expression(call.args[0], scope, allow_aggregates=False)
            if name in ("sum", "avg") and not arg_type.is_numeric:
                raise BindError(f"{name.upper()} requires a numeric argument")
            if name == "avg":
                return SqlType.DOUBLE
            if name == "sum":
                return SqlType.DOUBLE if arg_type is SqlType.DOUBLE else SqlType.BIGINT
            return arg_type  # min/max
        if name not in SCALAR_FUNCTIONS:
            raise BindError(
                f"function {name}() does not exist", position=call.position
            )
        arg_types = [
            self._bind_expression(arg, scope, allow_aggregates) for arg in call.args
        ]
        fixed = SCALAR_FUNCTIONS[name]
        if fixed is not None:
            return fixed
        if not arg_types:
            raise BindError(f"function {name}() requires arguments")
        result = arg_types[0]
        for other in arg_types[1:]:
            result = _merge_types(result, other)
        return result

    def _bind_subquery(
        self, subquery: ast.SelectStatement, expected_columns: int | None
    ) -> BoundQuery:
        """Bind a (non-correlated) subquery in its own fresh scope."""
        try:
            bound = self.bind(subquery)
        except BindError as exc:
            # Unknown columns inside a subquery usually indicate correlation,
            # which the engine does not support — say so explicitly.
            raise BindError(
                f"{exc} (note: correlated subqueries are not supported)"
            ) from None
        if expected_columns is not None and len(bound.output_names) != expected_columns:
            raise BindError(
                f"subquery must return {expected_columns} column(s), "
                f"got {len(bound.output_names)}"
            )
        return bound

    # -- aggregate / output checks -------------------------------------------

    def _check_aggregate_usage(
        self, statement: ast.SelectStatement, scope: Scope
    ) -> None:
        has_aggregate = _contains_aggregate_in_outputs(statement)
        if not statement.group_by:
            if has_aggregate:
                # A global aggregate: every output must be aggregate-only.
                for item in statement.select_items:
                    _check_grouped(item.expression, [])
            return
        group_keys = [_expression_key(g) for g in statement.group_by]
        for item in statement.select_items:
            if isinstance(item.expression, ast.Star):
                raise BindError("SELECT * is not allowed with GROUP BY")
            _check_grouped(item.expression, group_keys)

    def _output_schema(
        self, statement: ast.SelectStatement, scope: Scope
    ) -> tuple[list[str], list[SqlType]]:
        names: list[str] = []
        types: list[SqlType] = []
        for index, item in enumerate(statement.select_items):
            expression = item.expression
            if isinstance(expression, ast.Star):
                relations = (
                    [r for r in scope.relations if r.binding == expression.table]
                    if expression.table
                    else scope.relations
                )
                for relation in relations:
                    for column, sql_type in relation.columns.items():
                        names.append(column)
                        types.append(sql_type)
                continue
            if item.alias:
                names.append(item.alias)
            elif isinstance(expression, ast.ColumnRef):
                names.append(expression.column)
            elif isinstance(expression, ast.FunctionCall):
                names.append(expression.name)
            else:
                names.append(f"column_{index + 1}")
            types.append(self._bind_expression(expression, scope, True))
        # SQL allows duplicate output names; downstream we deduplicate.
        deduped: list[str] = []
        seen: dict[str, int] = {}
        for name in names:
            if name in seen:
                seen[name] += 1
                deduped.append(f"{name}_{seen[name]}")
            else:
                seen[name] = 0
                deduped.append(name)
        return deduped, types


def _literal_type(value) -> SqlType:
    if value is None:
        return SqlType.TEXT  # untyped NULL; coerced on use
    if isinstance(value, bool):
        return SqlType.BOOLEAN
    if isinstance(value, int):
        return SqlType.BIGINT if abs(value) > 2**31 else SqlType.INTEGER
    if isinstance(value, float):
        return SqlType.DOUBLE
    return SqlType.TEXT


def _check_comparable(left: SqlType, right: SqlType) -> None:
    if left.is_numeric and right.is_numeric:
        return
    if left is right:
        return
    # TEXT literals compare against dates (ISO strings), matching PostgreSQL.
    if {left, right} == {SqlType.TEXT, SqlType.DATE}:
        return
    raise BindError(f"cannot compare {left.value} with {right.value}")


def _merge_types(a: SqlType, b: SqlType) -> SqlType:
    if a is b:
        return a
    if a.is_numeric and b.is_numeric:
        return common_numeric_type(a, b)
    return SqlType.TEXT


def _contains_aggregate_in_outputs(statement: ast.SelectStatement) -> bool:
    for item in statement.select_items:
        for node in item.expression.walk():
            if isinstance(node, ast.FunctionCall) and node.is_aggregate:
                return True
    return False


def _expression_key(expression: ast.Expression) -> str:
    """A stable structural key for GROUP BY matching."""
    parts: list[str] = []
    for node in expression.walk():
        if isinstance(node, ast.ColumnRef):
            parts.append(f"col:{node.table}.{node.column}")
        elif isinstance(node, ast.Literal):
            parts.append(f"lit:{node.value!r}")
        elif isinstance(node, ast.BinaryOp):
            parts.append(f"op:{node.op}")
        elif isinstance(node, ast.FunctionCall):
            parts.append(f"fn:{node.name}")
        else:
            parts.append(type(node).__name__)
    return "|".join(parts)


def _check_grouped(expression: ast.Expression, group_keys: list[str]) -> None:
    """Every output column must be grouped or inside an aggregate."""
    if _expression_key(expression) in group_keys:
        return
    if isinstance(expression, ast.FunctionCall) and expression.is_aggregate:
        return
    if isinstance(expression, (ast.Literal, ast.ScalarSubquery)):
        return
    if isinstance(expression, ast.ColumnRef):
        raise BindError(
            f'column "{expression}" must appear in the GROUP BY clause '
            "or be used in an aggregate function"
        )
    for child in expression.children():
        if isinstance(child, ast.Expression):
            _check_grouped(child, group_keys)
