"""System catalog: table schemas, constraints, indexes, and statistics.

The catalog is the metadata layer SQLBarber's schema-summary step reads
(Section 4, Step 1 of the paper): table names and row counts, column names,
types and distinct counts, primary/foreign keys, and index metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import CatalogError
from .stats import ColumnStats, analyze_column
from .storage import Table
from .types import ColumnType, SqlType

PAGE_SIZE_BYTES = 8192


@dataclass(frozen=True)
class ForeignKey:
    """A single-column foreign-key constraint."""

    table: str
    column: str
    ref_table: str
    ref_column: str

    def __str__(self) -> str:
        return (
            f"{self.table}.{self.column} -> {self.ref_table}.{self.ref_column}"
        )


@dataclass(frozen=True)
class IndexMeta:
    """Metadata for a (single-column) index."""

    name: str
    table: str
    column: str
    unique: bool = False


@dataclass
class ColumnMeta:
    """Schema + statistics for one column."""

    name: str
    column_type: ColumnType
    stats: ColumnStats | None = None

    @property
    def sql_type(self) -> SqlType:
        return self.column_type.sql_type

    @property
    def distinct_count(self) -> float:
        return self.stats.distinct_count if self.stats else 0.0


@dataclass
class TableMeta:
    """Schema + statistics for one table."""

    name: str
    columns: list[ColumnMeta]
    primary_key: list[str] = field(default_factory=list)
    row_count: int = 0
    row_width: int = 0

    def __post_init__(self) -> None:
        self._by_name = {c.name: c for c in self.columns}
        if len(self._by_name) != len(self.columns):
            raise CatalogError(f"duplicate column in table {self.name}")
        if not self.row_width:
            self.row_width = sum(c.sql_type.byte_width for c in self.columns) + 24

    def column(self, name: str) -> ColumnMeta:
        try:
            return self._by_name[name]
        except KeyError:
            raise CatalogError(f"no column {name!r} in {self.name!r}") from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def page_count(self) -> int:
        """Heap pages, as the cost model sees them."""
        if self.row_count == 0:
            return 1
        rows_per_page = max(PAGE_SIZE_BYTES // max(self.row_width, 1), 1)
        return max(-(-self.row_count // rows_per_page), 1)


class Catalog:
    """Registry of tables, foreign keys, and indexes for one database.

    Every mutation that can change plans or estimates — registering a table,
    adding an index or foreign key, re-analyzing statistics — bumps the
    :attr:`statistics_epoch`.  Plan and EXPLAIN caches key their entries to
    the epoch and drop everything when it moves, so a DDL or data load can
    never serve stale costs.
    """

    def __init__(self) -> None:
        self._tables: dict[str, TableMeta] = {}
        self._data: dict[str, Table] = {}
        self._foreign_keys: list[ForeignKey] = []
        self._indexes: dict[str, list[IndexMeta]] = {}
        self._statistics_epoch = 0

    @property
    def statistics_epoch(self) -> int:
        """Monotonic counter of schema/statistics changes."""
        return self._statistics_epoch

    def bump_statistics_epoch(self) -> None:
        """Invalidate every epoch-keyed cache derived from this catalog."""
        self._statistics_epoch += 1

    # -- registration --------------------------------------------------------

    def register_table(
        self,
        data: Table,
        column_types: dict[str, ColumnType] | None = None,
        primary_key: list[str] | None = None,
        analyze: bool = True,
    ) -> TableMeta:
        """Add *data* to the catalog and (by default) analyze its columns."""
        if data.name in self._tables:
            raise CatalogError(f"table {data.name!r} already exists")
        columns = []
        for col in data.columns:
            ctype = (
                column_types[col.name]
                if column_types and col.name in column_types
                else ColumnType(col.sql_type)
            )
            stats = analyze_column(col) if analyze else None
            columns.append(ColumnMeta(col.name, ctype, stats))
        meta = TableMeta(
            name=data.name,
            columns=columns,
            primary_key=list(primary_key or []),
            row_count=data.row_count,
        )
        self._tables[data.name] = meta
        self._data[data.name] = data
        self._indexes.setdefault(data.name, [])
        # Primary keys implicitly carry a unique index, like real systems.
        for pk_col in meta.primary_key:
            self.add_index(
                IndexMeta(f"{data.name}_pkey_{pk_col}", data.name, pk_col, True)
            )
        self.bump_statistics_epoch()
        return meta

    def add_foreign_key(self, fk: ForeignKey) -> None:
        self.table(fk.table).column(fk.column)  # validates both ends
        self.table(fk.ref_table).column(fk.ref_column)
        self._foreign_keys.append(fk)
        # FK columns get an index by default (join-friendly, like many DDLs).
        if not self.index_on(fk.table, fk.column):
            self.add_index(
                IndexMeta(f"{fk.table}_{fk.column}_idx", fk.table, fk.column)
            )
        self.bump_statistics_epoch()

    def add_index(self, index: IndexMeta) -> None:
        self.table(index.table).column(index.column)
        existing = self._indexes.setdefault(index.table, [])
        if any(i.name == index.name for i in existing):
            raise CatalogError(f"index {index.name!r} already exists")
        existing.append(index)
        self.bump_statistics_epoch()

    def reanalyze(self, name: str) -> TableMeta:
        """Recompute row count and column statistics of *name* from its data.

        The equivalent of PostgreSQL's ``ANALYZE <table>``: callers that
        mutate a registered table's column arrays in place run this to make
        the optimizer see the new value distribution.  Bumps the statistics
        epoch so cached estimates are invalidated.
        """
        meta = self.table(name)
        data = self.data(name)
        for column_meta in meta.columns:
            column_meta.stats = analyze_column(data.column(column_meta.name))
        meta.row_count = data.row_count
        self.bump_statistics_epoch()
        return meta

    # -- lookups ---------------------------------------------------------------

    def table(self, name: str) -> TableMeta:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f'relation "{name}" does not exist') from None

    def data(self, name: str) -> Table:
        self.table(name)
        return self._data[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> list[str]:
        return list(self._tables)

    @property
    def foreign_keys(self) -> list[ForeignKey]:
        return list(self._foreign_keys)

    def foreign_keys_of(self, table: str) -> list[ForeignKey]:
        return [fk for fk in self._foreign_keys if fk.table == table]

    def indexes_of(self, table: str) -> list[IndexMeta]:
        return list(self._indexes.get(table, []))

    def index_on(self, table: str, column: str) -> IndexMeta | None:
        for index in self._indexes.get(table, []):
            if index.column == column:
                return index
        return None

    def column_stats(self, table: str, column: str) -> ColumnStats | None:
        return self.table(table).column(column).stats
